//! Distributed sweep scaling: local vs 1-shard vs 2-shard, and
//! memo-affine vs round-robin chunk routing (the numbers
//! `BENCH_sweep.json` records).
//!
//! Every shard is a real `dvf serve` subprocess with its own memo
//! cache, talked to over loopback HTTP — the same path `dvf sweep
//! --shards` takes. The startup study runs each configuration once from
//! cold and reports wall time, points/s, and per-shard cache hit rates;
//! it asserts that memo-affine routing strictly out-hits round-robin on
//! the fit x n grid (equal-fingerprint points co-locate under affine,
//! scatter under RR) and prints `sweep_affinity assert: ok` for CI to
//! grep. The criterion rows then time the steady-state pieces: planning
//! (fingerprints + chunking) and warm local/distributed passes.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion};
use dvf::core::gridplan::{Assignment, ChunkPlan, GridSpec};
use dvf::core::workflow::DvfWorkflow;
use dvf::serve::coordinator::{self, CoordinatorConfig, DistReport, RowOutcome, SweepJob};
use std::hint::black_box;
use std::io::BufRead as _;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

/// FIT is a machine parameter: points differing only in `fit` share
/// every memo key, so affine routing has something to exploit.
const MODEL: &str = r#"
machine m {
  param fit = 5000
  cache { associativity = 4  sets = 64  line = 32 }
  memory { fit = fit }
  core { flops = 1e9  bandwidth = 4e9 }
}
model app {
  param n = 200
  data A { size = n * 8  element = 8 }
  data B { size = n * 8  element = 8 }
  kernel k {
    flops = 2 * n
    access A as streaming(stride = 4)
    access B as streaming()
  }
}
"#;

const CHUNK_POINTS: usize = 32;

/// `fit` slow, `n` fast: contiguous round-robin chunks split each n's
/// fit-variants across shards; affine reunites them.
fn grid() -> GridSpec {
    let smoke = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .is_some_and(|ms| ms < 100);
    // Keep n_values / CHUNK_POINTS odd: with an even chunks-per-fit-row
    // count, round-robin's chunk rotation happens to re-align identical
    // n-runs on the same shard and the A/B collapses.
    let n_values = if smoke { 96 } else { 480 };
    GridSpec::new(vec![
        ("fit".to_owned(), vec![1000.0, 2000.0, 5000.0, 10000.0]),
        (
            "n".to_owned(),
            (0..n_values).map(|i| 100.0 + i as f64).collect(),
        ),
    ])
    .expect("grid")
}

struct Shard {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Shard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_shard() -> Shard {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dvf"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dvf serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("startup banner");
    let addr: SocketAddr = line
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split("/v1/").next())
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .parse()
        .expect("shard addr");
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    Shard { child, addr }
}

fn job() -> SweepJob {
    SweepJob {
        source: MODEL.to_owned(),
        machine: None,
        model: None,
        overrides: Vec::new(),
    }
}

fn plan_for(grid: &GridSpec, shards: usize, assignment: Assignment) -> ChunkPlan {
    let wf = DvfWorkflow::parse(MODEL).expect("model parses");
    ChunkPlan::plan(grid, shards, CHUNK_POINTS, assignment, |idx| {
        let coords = grid.point(idx);
        let point: Vec<(&str, f64)> = grid
            .dims()
            .iter()
            .zip(&coords)
            .map(|((name, _), v)| (name.as_str(), *v))
            .collect();
        wf.point_fingerprint(&point).unwrap_or(0)
    })
}

fn local_rows(grid: &GridSpec) -> Vec<RowOutcome> {
    let wf = DvfWorkflow::parse(MODEL).expect("model parses");
    let indices: Vec<usize> = (0..grid.len()).collect();
    dvf::core::sweep::par_map(&indices, |&idx| {
        let coords = grid.point(idx);
        let point: Vec<(&str, f64)> = grid
            .dims()
            .iter()
            .zip(&coords)
            .map(|((name, _), v)| (name.as_str(), *v))
            .collect();
        match wf.evaluate(&point) {
            Ok(report) => RowOutcome::Ok {
                time_s: report.time_s,
                dvf_app: report.dvf_app(),
            },
            Err(e) => RowOutcome::Err(e.to_string()),
        }
    })
}

fn run_distributed(grid: &GridSpec, shards: &[SocketAddr], assignment: Assignment) -> DistReport {
    let plan = plan_for(grid, shards.len(), assignment);
    coordinator::run(
        &job(),
        grid,
        &plan,
        shards,
        &CoordinatorConfig::default(),
        |_| {},
    )
    .expect("distributed sweep")
}

fn describe_shards(report: &DistReport) -> (String, f64) {
    let mut parts = Vec::new();
    let (mut hits, mut total) = (0u64, 0u64);
    for s in &report.shards {
        let lookups = s.cache_hits + s.cache_misses;
        hits += s.cache_hits;
        total += lookups;
        parts.push(format!(
            "[{} chunks={} points={} hits={} misses={} rate={:.3}]",
            s.addr,
            s.chunks,
            s.points,
            s.cache_hits,
            s.cache_misses,
            if lookups == 0 {
                0.0
            } else {
                s.cache_hits as f64 / lookups as f64
            }
        ));
    }
    let rate = if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    };
    (parts.join(" "), rate)
}

/// The cold-cache scaling study: one pass per configuration against
/// fresh shard processes, printed for the BENCH_sweep.json record.
fn scaling_study() {
    let grid = grid();
    let points = grid.len();

    let t0 = Instant::now();
    let local = local_rows(&grid);
    let local_s = t0.elapsed().as_secs_f64();
    println!(
        "sweep_scaling/local points={points} wall={local_s:.3}s rate={:.0} pts/s",
        points as f64 / local_s
    );

    for (label, shard_count, assignment) in [
        ("1shard_affine", 1usize, Assignment::MemoAffine),
        ("2shard_affine", 2, Assignment::MemoAffine),
        ("2shard_roundrobin", 2, Assignment::RoundRobin),
    ] {
        let shards: Vec<Shard> = (0..shard_count).map(|_| spawn_shard()).collect();
        let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.addr).collect();
        let t0 = Instant::now();
        let report = run_distributed(&grid, &addrs, assignment);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(report.rows, local, "distributed rows must match local");
        let (per_shard, rate) = describe_shards(&report);
        println!(
            "sweep_scaling/{label} points={points} wall={wall:.3}s rate={:.0} pts/s \
             hit_rate={rate:.3} shards={per_shard}",
            points as f64 / wall
        );
        // Keep the two 2-shard hit rates for the affinity assertion.
        if label == "2shard_affine" {
            AFFINE_RATE.with(|c| c.set(rate));
        }
        if label == "2shard_roundrobin" {
            let affine = AFFINE_RATE.with(|c| c.get());
            assert!(
                affine > rate,
                "memo-affine hit rate {affine:.3} must beat round-robin {rate:.3}"
            );
            println!("sweep_affinity assert: ok (affine {affine:.3} > round-robin {rate:.3})");
        }
        drop(shards);
    }
}

thread_local! {
    static AFFINE_RATE: std::cell::Cell<f64> = const { std::cell::Cell::new(0.0) };
}

fn sweep_benches(c: &mut Criterion) {
    scaling_study();

    let grid = grid();
    let mut group = c.benchmark_group("sweep_dist");

    // Planning cost: per-point fingerprints + chunking, no evaluation.
    group.bench_function("plan_affine", |b| {
        b.iter(|| black_box(plan_for(&grid, 2, Assignment::MemoAffine)))
    });

    // Warm passes: every pattern evaluation is a memo hit, so these
    // time the sweep machinery itself (and, distributed, the RPC tax).
    group.bench_function("local_warm", |b| b.iter(|| black_box(local_rows(&grid))));

    let shards: Vec<Shard> = (0..2).map(|_| spawn_shard()).collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.addr).collect();
    run_distributed(&grid, &addrs, Assignment::MemoAffine); // warm the shards
    group.bench_function("2shard_warm", |b| {
        b.iter(|| black_box(run_distributed(&grid, &addrs, Assignment::MemoAffine)))
    });
    drop(shards);
    group.finish();
}

criterion_group!(benches, sweep_benches);
criterion_main!(benches);
