//! Abstract syntax of the resilience-extended Aspen language.
//!
//! The surface grammar (see the crate docs for a full example):
//!
//! ```text
//! document   := item*
//! item       := param | machine | model
//! param      := "param" IDENT "=" expr
//! machine    := "machine" IDENT "{" (param | section)* "}"
//! section    := ("cache" | "memory" | "core") "{" field* "}"
//! model      := "model" IDENT "{" (param | data | kernel)* "}"
//! data       := "data" IDENT "{" field* "}"
//! kernel     := "kernel" IDENT "{" (field | access | order)* "}"
//! access     := "access" IDENT "as" IDENT "(" namedargs ")"
//! order      := "order" "{" step* "}"
//! step       := IDENT | "(" IDENT+ ")"
//! field      := IDENT "=" expr
//! namedargs  := (IDENT "=" expr) ("," IDENT "=" expr)*
//! expr       := precedence-climbing over + - * / % ^, unary -, calls,
//!               parenthesized tuples
//! ```
//!
//! Keywords are contextual, so `model`, `data` etc. remain usable as
//! parameter names.

use crate::span::{Span, Spanned};

/// Binary operators, loosest to tightest: `+ -`, `* / %`, `^`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Mod,
    /// Power.
    Pow,
}

impl BinOp {
    /// Operator symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "^",
        }
    }
}

/// Expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// Parameter or builtin-constant reference.
    Ident(String),
    /// Unary negation.
    Neg(Box<Spanned<Expr>>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Spanned<Expr>>,
        /// Right operand.
        rhs: Box<Spanned<Expr>>,
    },
    /// Function or index call: `ceil(x)`, `R(2, 1, 1)`.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Spanned<Expr>>,
    },
    /// Parenthesized comma list: `(a, b, c)`. Scalar contexts reject it;
    /// `dims`, `starts`, `ends` and `refs` consume it.
    Tuple(Vec<Spanned<Expr>>),
}

/// `name = expr` field, used in sections, data blocks and kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: Spanned<String>,
    /// Field value.
    pub value: Spanned<Expr>,
}

/// `param name = expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDef {
    /// Parameter name.
    pub name: Spanned<String>,
    /// Default value (overridable at resolution time).
    pub value: Spanned<Expr>,
}

/// `machine name { ... }`.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineDef {
    /// Machine name.
    pub name: Spanned<String>,
    /// Machine-scoped parameters.
    pub params: Vec<ParamDef>,
    /// `cache { ... }`, `memory { ... }`, `core { ... }` sections in
    /// source order.
    pub sections: Vec<SectionDef>,
}

/// A named field block inside a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionDef {
    /// Section kind: `cache`, `memory` or `core`.
    pub kind: Spanned<String>,
    /// Fields.
    pub fields: Vec<Field>,
}

/// `data name { ... }`.
#[derive(Debug, Clone, PartialEq)]
pub struct DataDef {
    /// Data structure name.
    pub name: Spanned<String>,
    /// Fields (`size`, `element`, optional `dims`).
    pub fields: Vec<Field>,
}

/// `access DS as pattern(args)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessDef {
    /// Target data structure name.
    pub data: Spanned<String>,
    /// Pattern kind: `streaming` (`s`), `random` (`r`), `template` (`t`)
    /// or `reuse` (`d`).
    pub pattern: Spanned<String>,
    /// Named arguments.
    pub args: Vec<Field>,
}

/// One step of an access-order string; parenthesized groups are accessed
/// concurrently (paper CG example: `r (A p) p (x p) (A p) r (r p)`).
#[derive(Debug, Clone, PartialEq)]
pub enum OrderStep {
    /// A single structure accessed alone.
    Single(Spanned<String>),
    /// Structures accessed concurrently.
    Group(Vec<Spanned<String>>),
}

/// A statement in a kernel body: accesses plus Aspen's control-flow
/// constructs (`iterate [n] { … }` repetition and `call other_kernel`
/// composition — Spafford & Vetter, SC'12).
#[derive(Debug, Clone, PartialEq)]
pub enum KernelStmt {
    /// `access DS as pattern(args)`.
    Access(AccessDef),
    /// `iterate n { … }` — repeat the body `n` times.
    Iterate {
        /// Trip count expression.
        count: Spanned<Expr>,
        /// Repeated statements.
        body: Vec<KernelStmt>,
    },
    /// `call name` — inline another kernel of the same model.
    Call {
        /// Callee kernel name.
        name: Spanned<String>,
    },
}

/// `kernel name { ... }`.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDef {
    /// Kernel name.
    pub name: Spanned<String>,
    /// Scalar fields (`flops`, `time`, `iters`, `loads`, `stores`).
    pub fields: Vec<Field>,
    /// Body statements (accesses and control flow), in source order.
    pub body: Vec<KernelStmt>,
    /// Optional access order.
    pub order: Option<Vec<OrderStep>>,
}

impl KernelDef {
    /// All access statements, at any nesting depth (ignoring
    /// multiplicities — resolution applies those).
    pub fn accesses(&self) -> Vec<&AccessDef> {
        fn walk<'a>(stmts: &'a [KernelStmt], out: &mut Vec<&'a AccessDef>) {
            for s in stmts {
                match s {
                    KernelStmt::Access(a) => out.push(a),
                    KernelStmt::Iterate { body, .. } => walk(body, out),
                    KernelStmt::Call { .. } => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }
}

/// `model name { ... }`.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDef {
    /// Application name.
    pub name: Spanned<String>,
    /// Model-scoped parameters.
    pub params: Vec<ParamDef>,
    /// Data structures.
    pub datas: Vec<DataDef>,
    /// Kernels.
    pub kernels: Vec<KernelDef>,
}

/// Top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Global parameter.
    Param(ParamDef),
    /// Machine description.
    Machine(MachineDef),
    /// Application model.
    Model(ModelDef),
}

/// A parsed source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    /// Items in source order.
    pub items: Vec<Item>,
}

impl Document {
    /// All global parameters.
    pub fn params(&self) -> impl Iterator<Item = &ParamDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Param(p) => Some(p),
            _ => None,
        })
    }

    /// Every parameter name an override could meaningfully target:
    /// global `param`s plus machine- and model-scoped ones, in source
    /// order, deduplicated. Used to reject sweeps over parameters the
    /// document never declares.
    pub fn param_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        let all = self.items.iter().flat_map(|i| match i {
            Item::Param(p) => std::slice::from_ref(p).iter(),
            Item::Machine(m) => m.params.iter(),
            Item::Model(m) => m.params.iter(),
        });
        for p in all {
            let name = p.name.node.as_str();
            if !names.contains(&name) {
                names.push(name);
            }
        }
        names
    }

    /// Find a machine by name, or the only machine if `name` is `None`.
    pub fn machine(&self, name: Option<&str>) -> Option<&MachineDef> {
        let mut machines = self.items.iter().filter_map(|i| match i {
            Item::Machine(m) => Some(m),
            _ => None,
        });
        match name {
            Some(n) => machines.find(|m| m.name.node == n),
            None => {
                let first = machines.next();
                if machines.next().is_some() {
                    None // ambiguous
                } else {
                    first
                }
            }
        }
    }

    /// Find a model by name, or the only model if `name` is `None`.
    pub fn model(&self, name: Option<&str>) -> Option<&ModelDef> {
        let mut models = self.items.iter().filter_map(|i| match i {
            Item::Model(m) => Some(m),
            _ => None,
        });
        match name {
            Some(n) => models.find(|m| m.name.node == n),
            None => {
                let first = models.next();
                if models.next().is_some() {
                    None
                } else {
                    first
                }
            }
        }
    }
}

/// Helper: find a field by name.
pub fn find_field<'a>(fields: &'a [Field], name: &str) -> Option<&'a Field> {
    fields.iter().find(|f| f.name.node == name)
}

/// Helper: the span of a whole field list (for diagnostics about missing
/// fields).
pub fn fields_span(fields: &[Field], fallback: Span) -> Span {
    fields
        .iter()
        .map(|f| f.name.span.to(f.value.span))
        .reduce(Span::to)
        .unwrap_or(fallback)
}
