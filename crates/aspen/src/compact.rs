//! The paper's *compact* program syntax.
//!
//! The DVF paper presents its extended-Aspen inputs in a line-oriented
//! listing form (§III-D, Algorithms 1–4 sidebars):
//!
//! ```text
//! Data structure : {A}
//! Access Pattern : {s}
//! Parameters : {(8,200,4)}
//! ```
//!
//! with pattern codes `s`/`r`/`t`/`d`, optional `Template : {(starts) :
//! step : (ends)}` ranges, and — for composite kernels like CG — an
//! `Access order : {r(Ap)p(xp)(Ap)r(rp)}` aligned position-by-position
//! with a pattern string `{s(tt)s(ss)(tt)s(ss)}`.
//!
//! This module parses that form and lowers it to the block-structured AST
//! ([`ModelDef`]), so compact programs flow through the same resolution
//! and DVF workflow as full programs.

use crate::ast::{AccessDef, DataDef, Expr, Field, KernelDef, KernelStmt, ModelDef, OrderStep};
use crate::diag::Diagnostic;
use crate::parser::parse_expr;
use crate::span::{Span, Spanned};

/// Pattern code letter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternCode {
    /// Streaming.
    S,
    /// Random.
    R,
    /// Template-based.
    T,
    /// Data reuse.
    D,
}

impl PatternCode {
    fn from_char(c: char, span: Span) -> Result<Self, Diagnostic> {
        match c {
            's' => Ok(PatternCode::S),
            'r' => Ok(PatternCode::R),
            't' => Ok(PatternCode::T),
            'd' => Ok(PatternCode::D),
            other => Err(Diagnostic::new(
                format!("unknown pattern code `{other}` (expected s, r, t or d)"),
                span,
            )),
        }
    }

    /// Full pattern name as used by the block syntax.
    pub fn name(self) -> &'static str {
        match self {
            PatternCode::S => "streaming",
            PatternCode::R => "random",
            PatternCode::T => "template",
            PatternCode::D => "reuse",
        }
    }
}

/// One item of a pattern or order string: a lone element or a
/// parenthesized concurrent group.
#[derive(Debug, Clone, PartialEq)]
pub enum Grouping<T> {
    /// Single element.
    Single(T),
    /// Concurrent group.
    Group(Vec<T>),
}

impl<T> Grouping<T> {
    fn len(&self) -> usize {
        match self {
            Grouping::Single(_) => 1,
            Grouping::Group(g) => g.len(),
        }
    }
}

/// A `Template : {(starts) : step : (ends)}` range.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactTemplate {
    /// Start element expressions (may contain index calls `R(i,j,k)`).
    pub starts: Vec<Spanned<Expr>>,
    /// Advance per iteration.
    pub step: Spanned<Expr>,
    /// End element expressions.
    pub ends: Vec<Spanned<Expr>>,
}

/// A parsed compact program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompactProgram {
    /// Declared data structures, in order.
    pub structures: Vec<String>,
    /// Pattern string items (aligned with `order` if present, else with
    /// `structures`).
    pub patterns: Vec<Grouping<PatternCode>>,
    /// Parameter tuples, aligned with `structures` (trailing `...` in the
    /// listing truncates the list).
    pub parameters: Vec<Vec<Spanned<Expr>>>,
    /// Template range, if any.
    pub template: Option<CompactTemplate>,
    /// Access order, if any.
    pub order: Option<Vec<Grouping<String>>>,
}

/// Parse a compact program.
pub fn parse_compact(source: &str) -> Result<CompactProgram, Diagnostic> {
    let mut program = CompactProgram::default();
    let mut seen_any = false;

    let mut rest = source;
    let mut offset = 0usize;
    while let Some(colon) = rest.find(':') {
        let key_raw = &rest[..colon];
        let key = normalize_key(key_raw);
        let after_colon = colon + 1;
        let brace_rel = rest[after_colon..].find('{').ok_or_else(|| {
            Diagnostic::new(
                "expected `{` after `:`",
                Span::new(offset + after_colon, offset + after_colon + 1),
            )
        })?;
        let open = after_colon + brace_rel;
        let close = matching_brace(rest, open).ok_or_else(|| {
            Diagnostic::new("unclosed `{`", Span::new(offset + open, offset + open + 1))
        })?;
        let value = &rest[open + 1..close];
        let value_span = Span::new(offset + open + 1, offset + close);

        match key.as_str() {
            "data structure" | "data structures" => {
                program.structures = value
                    .split(|c: char| c.is_whitespace() || c == ',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
                if program.structures.is_empty() {
                    return Err(Diagnostic::new("empty data structure list", value_span));
                }
            }
            "access pattern" | "access patterns" => {
                program.patterns = parse_pattern_string(value, value_span)?;
            }
            "parameters" | "parameter" => {
                program.parameters = parse_parameter_tuples(value, value_span)?;
            }
            "template" => {
                program.template = Some(parse_template(value, value_span)?);
            }
            "access order" | "order" => {
                program.order = Some(parse_order_string(value, value_span, &program.structures)?);
            }
            other => {
                return Err(Diagnostic::new(
                    format!(
                        "unknown compact key `{other}` (expected Data structure, Access \
                         Pattern, Parameters, Template or Access order)"
                    ),
                    Span::new(offset, offset + colon),
                ))
            }
        }
        seen_any = true;
        offset += close + 1;
        rest = &source[offset..];
    }

    if !seen_any {
        return Err(Diagnostic::new(
            "no compact program keys found",
            Span::new(0, source.len().min(1)),
        ));
    }
    if program.structures.is_empty() {
        return Err(Diagnostic::new(
            "compact program is missing `Data structure : {…}`",
            Span::new(0, source.len().min(1)),
        ));
    }
    if program.patterns.is_empty() {
        return Err(Diagnostic::new(
            "compact program is missing `Access Pattern : {…}`",
            Span::new(0, source.len().min(1)),
        ));
    }
    Ok(program)
}

/// Lowercase a key and collapse internal whitespace.
fn normalize_key(raw: &str) -> String {
    raw.split_whitespace()
        .map(str::to_lowercase)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Find the `}` matching the `{` at byte `open`.
fn matching_brace(s: &str, open: usize) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parse `s(tt)s(ss)` style pattern strings.
fn parse_pattern_string(value: &str, span: Span) -> Result<Vec<Grouping<PatternCode>>, Diagnostic> {
    let mut items = Vec::new();
    let mut group: Option<Vec<PatternCode>> = None;
    for c in value.chars() {
        match c {
            '(' => {
                if group.is_some() {
                    return Err(Diagnostic::new("nested group in pattern string", span));
                }
                group = Some(Vec::new());
            }
            ')' => match group.take() {
                Some(g) if !g.is_empty() => items.push(Grouping::Group(g)),
                _ => {
                    return Err(Diagnostic::new(
                        "empty or unmatched `)` in pattern string",
                        span,
                    ))
                }
            },
            c if c.is_whitespace() || c == ',' => {}
            c => {
                let code = PatternCode::from_char(c, span)?;
                match &mut group {
                    Some(g) => g.push(code),
                    None => items.push(Grouping::Single(code)),
                }
            }
        }
    }
    if group.is_some() {
        return Err(Diagnostic::new("unclosed `(` in pattern string", span));
    }
    Ok(items)
}

/// Parse `r(Ap)p(xp)` style order strings. Multi-character structure
/// names must be whitespace-separated; runs of letters are split by
/// longest-match against the declared structure names.
fn parse_order_string(
    value: &str,
    span: Span,
    structures: &[String],
) -> Result<Vec<Grouping<String>>, Diagnostic> {
    if structures.is_empty() {
        return Err(Diagnostic::new(
            "`Access order` must come after `Data structure`",
            span,
        ));
    }
    let split_names = |word: &str| -> Result<Vec<String>, Diagnostic> {
        let mut out = Vec::new();
        let mut rest = word;
        while !rest.is_empty() {
            let hit = structures
                .iter()
                .filter(|s| rest.starts_with(s.as_str()))
                .max_by_key(|s| s.len());
            match hit {
                Some(name) => {
                    out.push(name.clone());
                    rest = &rest[name.len()..];
                }
                None => {
                    return Err(Diagnostic::new(
                        format!("order string mentions unknown structure in `{word}`"),
                        span,
                    ))
                }
            }
        }
        Ok(out)
    };

    let mut items = Vec::new();
    let mut group: Option<Vec<String>> = None;
    let mut word = String::new();
    let mut chars = value.chars().peekable();
    while let Some(c) = chars.next() {
        let flush = |word: &mut String,
                     group: &mut Option<Vec<String>>,
                     items: &mut Vec<Grouping<String>>|
         -> Result<(), Diagnostic> {
            if word.is_empty() {
                return Ok(());
            }
            let names = split_names(word)?;
            word.clear();
            match group {
                Some(g) => g.extend(names),
                None => items.extend(names.into_iter().map(Grouping::Single)),
            }
            Ok(())
        };
        match c {
            '(' => {
                flush(&mut word, &mut group, &mut items)?;
                if group.is_some() {
                    return Err(Diagnostic::new("nested group in order string", span));
                }
                group = Some(Vec::new());
            }
            ')' => {
                flush(&mut word, &mut group, &mut items)?;
                match group.take() {
                    Some(g) if !g.is_empty() => items.push(Grouping::Group(g)),
                    _ => {
                        return Err(Diagnostic::new(
                            "empty or unmatched `)` in order string",
                            span,
                        ))
                    }
                }
            }
            c if c.is_whitespace() || c == ',' => flush(&mut word, &mut group, &mut items)?,
            c => word.push(c),
        }
        if chars.peek().is_none() {
            flush(&mut word, &mut group, &mut items)?;
        }
    }
    if group.is_some() {
        return Err(Diagnostic::new("unclosed `(` in order string", span));
    }
    Ok(items)
}

/// Parse `(8,200,4)(1000,32,200,1000,1.0)...` — top-level parenthesized
/// tuples; a trailing `...` marks omitted tuples.
fn parse_parameter_tuples(value: &str, span: Span) -> Result<Vec<Vec<Spanned<Expr>>>, Diagnostic> {
    let mut tuples = Vec::new();
    let bytes = value.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] as char {
            '(' => {
                let mut depth = 0;
                let start = i;
                let mut end = None;
                for (j, &b) in bytes.iter().enumerate().skip(i) {
                    match b {
                        b'(' => depth += 1,
                        b')' => {
                            depth -= 1;
                            if depth == 0 {
                                end = Some(j);
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                let end = end.ok_or_else(|| Diagnostic::new("unclosed `(` in parameters", span))?;
                let tuple_src = &value[start..=end];
                let parsed = parse_expr(tuple_src).map_err(|e| {
                    Diagnostic::new(format!("bad parameter tuple: {}", e.message), span)
                })?;
                match parsed.node {
                    Expr::Tuple(items) => tuples.push(items),
                    single => tuples.push(vec![Spanned::new(single, parsed.span)]),
                }
                i = end + 1;
            }
            '.' | ',' => i += 1, // `...` and separators
            c if c.is_whitespace() => i += 1,
            c => {
                return Err(Diagnostic::new(
                    format!("unexpected `{c}` in parameters"),
                    span,
                ))
            }
        }
    }
    Ok(tuples)
}

/// Parse `(starts) : step : (ends)`.
fn parse_template(value: &str, span: Span) -> Result<CompactTemplate, Diagnostic> {
    // Split on top-level colons.
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut last = 0usize;
    for (i, c) in value.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ':' if depth == 0 => {
                parts.push(&value[last..i]);
                last = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&value[last..]);
    if parts.len() != 3 {
        return Err(Diagnostic::new(
            format!(
                "template must be `(starts) : step : (ends)`, found {} part(s)",
                parts.len()
            ),
            span,
        ));
    }
    let tuple_of = |src: &str| -> Result<Vec<Spanned<Expr>>, Diagnostic> {
        let parsed = parse_expr(src.trim())
            .map_err(|e| Diagnostic::new(format!("bad template tuple: {}", e.message), span))?;
        match parsed.node {
            Expr::Tuple(items) => Ok(items),
            single => Ok(vec![Spanned::new(single, parsed.span)]),
        }
    };
    let starts = tuple_of(parts[0])?;
    let step = parse_expr(parts[1].trim())
        .map_err(|e| Diagnostic::new(format!("bad template step: {}", e.message), span))?;
    let ends = tuple_of(parts[2])?;
    if starts.len() != ends.len() {
        return Err(Diagnostic::new(
            format!(
                "template has {} start lane(s) but {} end lane(s)",
                starts.len(),
                ends.len()
            ),
            span,
        ));
    }
    Ok(CompactTemplate { starts, step, ends })
}

// ---------------------------------------------------------------------
// Lowering to the block AST
// ---------------------------------------------------------------------

fn sp<T>(node: T) -> Spanned<T> {
    Spanned::new(node, Span::default())
}

fn field(name: &str, value: Expr) -> Field {
    Field {
        name: sp(name.to_owned()),
        value: sp(value),
    }
}

fn num(v: f64) -> Expr {
    Expr::Number(v)
}

impl CompactProgram {
    /// The `(structure, pattern)` assignments: from the order/pattern
    /// alignment in the composite form, or from the structure/pattern
    /// alignment in the simple form.
    pub fn assignments(&self) -> Result<Vec<(String, PatternCode)>, Diagnostic> {
        let mut out = Vec::new();
        match &self.order {
            Some(order) => {
                if order.len() != self.patterns.len()
                    || order
                        .iter()
                        .zip(&self.patterns)
                        .any(|(o, p)| o.len() != p.len())
                {
                    return Err(Diagnostic::new(
                        "access order and access pattern strings do not align",
                        Span::default(),
                    ));
                }
                for (o, p) in order.iter().zip(&self.patterns) {
                    match (o, p) {
                        (Grouping::Single(name), Grouping::Single(code)) => {
                            out.push((name.clone(), *code))
                        }
                        (Grouping::Group(names), Grouping::Group(codes)) => {
                            out.extend(names.iter().cloned().zip(codes.iter().copied()))
                        }
                        _ => {
                            return Err(Diagnostic::new(
                                "access order and access pattern grouping mismatch",
                                Span::default(),
                            ))
                        }
                    }
                }
            }
            None => {
                if self.patterns.len() != self.structures.len() {
                    return Err(Diagnostic::new(
                        format!(
                            "{} structures but {} pattern items",
                            self.structures.len(),
                            self.patterns.len()
                        ),
                        Span::default(),
                    ));
                }
                for (name, p) in self.structures.iter().zip(&self.patterns) {
                    match p {
                        Grouping::Single(code) => out.push((name.clone(), *code)),
                        Grouping::Group(_) => {
                            return Err(Diagnostic::new(
                                "pattern groups require an access order",
                                Span::default(),
                            ))
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Lower to a block-syntax model named `name`, resolvable by the
    /// ordinary [`crate::Resolver`].
    ///
    /// Conventions (matching the paper's listings):
    /// * `s` tuples are `(element, count, stride)`;
    /// * `r` tuples are `(N, element, k, iter, ratio)`;
    /// * `t` tuples are `(element)`, with the range taken from
    ///   `Template : {…}`; index calls `X(i,j,…)` of arity `k` imply
    ///   dims `(n_k, …, n_1)` — the parameters `n1…nk` must be bound at
    ///   resolution time;
    /// * `t` without a template falls back to a contiguous stream (the
    ///   paper omits large templates "due to the space limit");
    /// * `d` tuples are `(element, count, reuses)`.
    pub fn to_model(&self, name: &str) -> Result<ModelDef, Diagnostic> {
        let assignments = self.assignments()?;
        let mut datas: Vec<DataDef> = Vec::new();
        let mut accesses: Vec<AccessDef> = Vec::new();

        for (idx, structure) in self.structures.iter().enumerate() {
            let tuple = self.parameters.get(idx);
            // The structure's primary code: its first assignment.
            let code = assignments
                .iter()
                .find(|(n, _)| n == structure)
                .map(|(_, c)| *c)
                .ok_or_else(|| {
                    Diagnostic::new(
                        format!("structure `{structure}` never appears in the access pattern"),
                        Span::default(),
                    )
                })?;
            let (data, _) = self.lower_structure(structure, code, tuple)?;
            datas.push(data);
        }

        // Emit one access per assignment occurrence.
        for (structure, code) in &assignments {
            let idx = self
                .structures
                .iter()
                .position(|s| s == structure)
                .expect("assignment names validated");
            let tuple = self.parameters.get(idx);
            let (_, access) = self.lower_structure(structure, *code, tuple)?;
            accesses.push(access);
        }

        let order = self.order.as_ref().map(|steps| {
            steps
                .iter()
                .map(|s| match s {
                    Grouping::Single(n) => OrderStep::Single(sp(n.clone())),
                    Grouping::Group(g) => {
                        OrderStep::Group(g.iter().map(|n| sp(n.clone())).collect())
                    }
                })
                .collect::<Vec<_>>()
        });

        Ok(ModelDef {
            name: sp(name.to_owned()),
            params: Vec::new(),
            datas,
            kernels: vec![KernelDef {
                name: sp("main".to_owned()),
                fields: Vec::new(),
                body: accesses.into_iter().map(KernelStmt::Access).collect(),
                order,
            }],
        })
    }

    /// Lower one structure to its data declaration and one access.
    fn lower_structure(
        &self,
        name: &str,
        code: PatternCode,
        tuple: Option<&Vec<Spanned<Expr>>>,
    ) -> Result<(DataDef, AccessDef), Diagnostic> {
        let missing = |what: &str| {
            Diagnostic::new(
                format!("structure `{name}` ({}) needs {what}", code.name()),
                Span::default(),
            )
        };
        let expr_at = |t: &Vec<Spanned<Expr>>, i: usize, what: &str| {
            t.get(i)
                .map(|e| e.node.clone())
                .ok_or_else(|| missing(what))
        };

        let data_fields: Vec<Field>;
        let args: Vec<Field>;

        match code {
            PatternCode::S => {
                let t = tuple.ok_or_else(|| missing("a (element, count, stride) tuple"))?;
                let element = expr_at(t, 0, "an element size")?;
                let count = expr_at(t, 1, "an element count")?;
                let stride = t.get(2).map(|e| e.node.clone()).unwrap_or(num(1.0));
                data_fields = vec![
                    field(
                        "size",
                        Expr::Binary {
                            op: crate::ast::BinOp::Mul,
                            lhs: Box::new(sp(count.clone())),
                            rhs: Box::new(sp(element.clone())),
                        },
                    ),
                    field("element", element.clone()),
                ];
                args = vec![
                    field("element", element),
                    field("count", count),
                    field("stride", stride),
                ];
            }
            PatternCode::R => {
                let t = tuple.ok_or_else(|| missing("a (N, element, k, iter, ratio) tuple"))?;
                let n = expr_at(t, 0, "an element count N")?;
                let element = expr_at(t, 1, "an element size")?;
                let k = expr_at(t, 2, "a k (elements per iteration)")?;
                let iters = expr_at(t, 3, "an iteration count")?;
                let ratio = t.get(4).map(|e| e.node.clone()).unwrap_or(num(1.0));
                data_fields = vec![
                    field(
                        "size",
                        Expr::Binary {
                            op: crate::ast::BinOp::Mul,
                            lhs: Box::new(sp(n.clone())),
                            rhs: Box::new(sp(element.clone())),
                        },
                    ),
                    field("element", element.clone()),
                ];
                args = vec![
                    field("elements", n),
                    field("element", element),
                    field("k", k),
                    field("iters", iters),
                    field("ratio", ratio),
                ];
            }
            PatternCode::T => {
                let element = tuple
                    .and_then(|t| t.first())
                    .map(|e| e.node.clone())
                    .ok_or_else(|| missing("an (element) tuple"))?;
                match &self.template {
                    Some(template) => {
                        // Infer dims from the index-call arity: X(i,j,k)
                        // implies dims (n3, n2, n1) per the paper's
                        // flattening R(i,j,k) = i*n2*n1 + j*n1 + k.
                        let arity = template.starts.iter().chain(&template.ends).find_map(|e| {
                            match &e.node {
                                Expr::Call { name: cn, args } if cn == name => Some(args.len()),
                                _ => None,
                            }
                        });
                        data_fields = match arity {
                            Some(k) => {
                                let dims: Vec<Spanned<Expr>> = (0..k)
                                    .map(|d| sp(Expr::Ident(format!("n{}", k - d))))
                                    .collect();
                                // The paper's 1-based index formulas reach
                                // up to n_m in every coordinate, so the
                                // array carries one halo layer per dim:
                                // size = Π (n_m + 1) · element.
                                let plus_one = |d: usize| Expr::Binary {
                                    op: crate::ast::BinOp::Add,
                                    lhs: Box::new(sp(Expr::Ident(format!("n{d}")))),
                                    rhs: Box::new(sp(num(1.0))),
                                };
                                let mut size = plus_one(1);
                                for d in 2..=k {
                                    size = Expr::Binary {
                                        op: crate::ast::BinOp::Mul,
                                        lhs: Box::new(sp(size)),
                                        rhs: Box::new(sp(plus_one(d))),
                                    };
                                }
                                let size = Expr::Binary {
                                    op: crate::ast::BinOp::Mul,
                                    lhs: Box::new(sp(size)),
                                    rhs: Box::new(sp(element.clone())),
                                };
                                vec![
                                    field("size", size),
                                    field("element", element.clone()),
                                    field("dims", Expr::Tuple(dims)),
                                ]
                            }
                            None => {
                                // Plain scalar template indices: size from
                                // the max end + 1 is not expressible
                                // statically; require a count in the tuple.
                                let count = tuple
                                    .and_then(|t| t.get(1))
                                    .map(|e| e.node.clone())
                                    .ok_or_else(|| {
                                        missing("an (element, count) tuple for a scalar template")
                                    })?;
                                vec![
                                    field(
                                        "size",
                                        Expr::Binary {
                                            op: crate::ast::BinOp::Mul,
                                            lhs: Box::new(sp(count)),
                                            rhs: Box::new(sp(element.clone())),
                                        },
                                    ),
                                    field("element", element.clone()),
                                ]
                            }
                        };
                        args = vec![
                            field("element", element),
                            field("starts", Expr::Tuple(template.starts.clone())),
                            field("step", template.step.node.clone()),
                            field("ends", Expr::Tuple(template.ends.clone())),
                        ];
                    }
                    None => {
                        // Template omitted (as the paper does for CG "due
                        // to the space limit"): a sequential stream over
                        // the declared structure.
                        let t = tuple.ok_or_else(|| missing("an (element, count) tuple"))?;
                        let count = expr_at(t, 1, "an element count")?;
                        data_fields = vec![
                            field(
                                "size",
                                Expr::Binary {
                                    op: crate::ast::BinOp::Mul,
                                    lhs: Box::new(sp(count.clone())),
                                    rhs: Box::new(sp(element.clone())),
                                },
                            ),
                            field("element", element.clone()),
                        ];
                        args = vec![
                            field("element", element),
                            field("count", count),
                            field("stride", num(1.0)),
                        ];
                        return Ok((
                            DataDef {
                                name: sp(name.to_owned()),
                                fields: data_fields,
                            },
                            AccessDef {
                                data: sp(name.to_owned()),
                                pattern: sp("streaming".to_owned()),
                                args,
                            },
                        ));
                    }
                }
            }
            PatternCode::D => {
                let t = tuple.ok_or_else(|| missing("an (element, count, reuses) tuple"))?;
                let element = expr_at(t, 0, "an element size")?;
                let count = expr_at(t, 1, "an element count")?;
                let reuses = expr_at(t, 2, "a reuse count")?;
                data_fields = vec![
                    field(
                        "size",
                        Expr::Binary {
                            op: crate::ast::BinOp::Mul,
                            lhs: Box::new(sp(count)),
                            rhs: Box::new(sp(element.clone())),
                        },
                    ),
                    field("element", element),
                ];
                args = vec![field("reuses", reuses)];
            }
        }

        Ok((
            DataDef {
                name: sp(name.to_owned()),
                fields: data_fields,
            },
            AccessDef {
                data: sp(name.to_owned()),
                pattern: sp(code.name().to_owned()),
                args,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Document;
    use crate::expr::Env;
    use crate::machine::base_env;
    use crate::model::{resolve_model_def, PatternSpec};

    fn resolve(program: &CompactProgram, params: &[(&str, f64)]) -> crate::model::AppSpec {
        let model = program.to_model("app").expect("lowers");
        let doc = Document::default();
        let mut env: Env = base_env(&doc, &[]).unwrap();
        for (k, v) in params {
            env.set(k, *v);
        }
        resolve_model_def(&model, &env).expect("resolves")
    }

    #[test]
    fn paper_vm_listing() {
        // Verbatim from the paper's first §III-D example.
        let src = "Data structure : {A}\nAccess Pattern : {s}\nParameters : {(8,200,4)}";
        let p = parse_compact(src).unwrap();
        assert_eq!(p.structures, ["A"]);
        let app = resolve(&p, &[]);
        assert_eq!(app.datas[0].size_bytes, 1600);
        match &app.kernels[0].accesses[0].access.pattern {
            PatternSpec::Streaming {
                element_bytes,
                count,
                stride_elements,
            } => assert_eq!((*element_bytes, *count, *stride_elements), (8, 200, 4)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_nb_listing() {
        let src =
            "Data structure : {T}\nAccess Pattern : {r}\nParameters : {(1000,32,200,1000,1.0)}";
        let p = parse_compact(src).unwrap();
        let app = resolve(&p, &[]);
        match &app.kernels[0].accesses[0].access.pattern {
            PatternSpec::Random {
                elements,
                element_bytes,
                k,
                iters,
                ratio,
            } => {
                assert_eq!(
                    (*elements, *element_bytes, *k, *iters),
                    (1000, 32, 200, 1000)
                );
                assert_eq!(*ratio, 1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_mg_listing() {
        // The paper's MG template, on a small 8^3 grid so it resolves
        // fast. One correction to the listing: the fourth start element
        // must be R(3,2,1) — the `R(i+1,j,k)` stencil neighbor at
        // (i,j,k) = (2,2,1) — for the four lanes to advance evenly to the
        // paper's own end elements (the printed R(2,2,1) is a typo; it
        // repeats the center cell and would make lane 4 run 64 steps
        // longer than the others).
        let src = "Data structure : {R}\n\
                   Access Pattern : {t}\n\
                   Parameters : {(16)}\n\
                   Template : {(R(2,1,1), R(2,3,1), R(1,2,1), R(3,2,1)) : 1 : \
                   (R(n3-1,n2-2,n1), R(n3-1,n2,n1), R(n3-2,n2-1,n1), R(n3,n2-1,n1))}";
        let p = parse_compact(src).unwrap();
        assert!(p.template.is_some());
        let app = resolve(&p, &[("n1", 8.0), ("n2", 8.0), ("n3", 8.0)]);
        // One halo layer per dimension for the 1-based index formulas.
        assert_eq!(app.datas[0].size_bytes, 9 * 9 * 9 * 16);
        assert_eq!(app.datas[0].dims.as_deref(), Some(&[8, 8, 8][..]));
        match &app.kernels[0].accesses[0].access.pattern {
            PatternSpec::Template { refs, .. } => {
                assert!(!refs.is_empty());
                // First reference: R(2,1,1) = 2*64 + 8 + 1 = 137 at n=8.
                assert_eq!(refs[0], 137);
                // 4 lanes per iteration.
                assert_eq!(refs.len() % 4, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_cg_listing() {
        // The paper's CG composite listing, with all four tuples supplied
        // (the paper elides three with `...`).
        let src = "Data structure : {A r p x}\n\
                   Access order : {r(Ap)p(xp)(Ap)r(rp)}\n\
                   Access Pattern : {s(tt)s(ss)(tt)s(ss)}\n\
                   Parameters : {(8,40000,1)(8,200,1)(8,200,1)(8,200,1)}";
        let p = parse_compact(src).unwrap();
        let order = p.order.as_ref().unwrap();
        // r, (Ap), p, (xp), (Ap), r, (rp) — seven steps.
        assert_eq!(order.len(), 7);
        let assignments = p.assignments().unwrap();
        // r, A, p, p, x, p, A, p, r, r, p = 11 structure touches.
        assert_eq!(assignments.len(), 11);
        assert_eq!(assignments[0], ("r".to_owned(), PatternCode::S));
        assert_eq!(assignments[1], ("A".to_owned(), PatternCode::T));

        let app = resolve(&p, &[]);
        assert_eq!(app.datas.len(), 4);
        assert_eq!(app.kernels[0].accesses.len(), 11);
        // A is declared from its tuple: 40000 elements * 8 B.
        assert_eq!(app.data("A").unwrap().size_bytes, 320_000);
        // The order survives lowering (drives cache-sharing ratios).
        assert!(app.kernels[0].order.is_some());
    }

    #[test]
    fn simple_form_requires_alignment() {
        let src = "Data structure : {A B}\nAccess Pattern : {s}\nParameters : {(8,10,1)}";
        let p = parse_compact(src).unwrap();
        assert!(p.to_model("x").is_err());
    }

    #[test]
    fn order_pattern_mismatch_is_error() {
        let src = "Data structure : {A p}\n\
                   Access order : {(Ap)}\n\
                   Access Pattern : {s s}\n\
                   Parameters : {(8,10,1)(8,10,1)}";
        let p = parse_compact(src).unwrap();
        assert!(p.assignments().is_err());
    }

    #[test]
    fn unknown_key_rejected() {
        assert!(parse_compact("Banana : {x}").is_err());
    }

    #[test]
    fn unknown_pattern_code_rejected() {
        let err = parse_compact("Data structure : {A}\nAccess Pattern : {q}").unwrap_err();
        assert!(err.message.contains("unknown pattern code"));
    }

    #[test]
    fn unclosed_brace_rejected() {
        assert!(parse_compact("Data structure : {A").is_err());
    }

    #[test]
    fn multichar_names_in_order() {
        let src = "Data structure : {Grid Eng}\n\
                   Access order : {(Grid Eng)}\n\
                   Access Pattern : {(rr)}\n\
                   Parameters : {(1000,16,1,100,0.6)(500,16,1,100,0.4)}";
        let p = parse_compact(src).unwrap();
        match &p.order.as_ref().unwrap()[0] {
            Grouping::Group(g) => assert_eq!(g, &["Grid", "Eng"]),
            other => panic!("unexpected {other:?}"),
        }
        let app = resolve(&p, &[]);
        assert_eq!(app.datas.len(), 2);
    }

    #[test]
    fn juxtaposed_single_letter_names_split() {
        let src = "Data structure : {A p}\n\
                   Access order : {(Ap)}\n\
                   Access Pattern : {(ss)}\n\
                   Parameters : {(8,10,1)(8,10,1)}";
        let p = parse_compact(src).unwrap();
        match &p.order.as_ref().unwrap()[0] {
            Grouping::Group(g) => assert_eq!(g, &["A", "p"]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ellipsis_in_parameters_tolerated() {
        let src = "Data structure : {A r}\n\
                   Access Pattern : {s s}\n\
                   Parameters : {(8,10,1)...}";
        let p = parse_compact(src).unwrap();
        assert_eq!(p.parameters.len(), 1);
        // Lowering fails cleanly because r's tuple is missing.
        let err = p.to_model("x").unwrap_err();
        assert!(err.message.contains('r'));
    }

    #[test]
    fn reuse_code_lowers() {
        let src = "Data structure : {p}\nAccess Pattern : {d}\nParameters : {(8,500,100)}";
        let p = parse_compact(src).unwrap();
        let app = resolve(&p, &[]);
        match &app.kernels[0].accesses[0].access.pattern {
            PatternSpec::Reuse { reuses, .. } => assert_eq!(*reuses, 100),
            other => panic!("unexpected {other:?}"),
        }
    }
}
