//! Diagnostics with source context.

use crate::span::Span;
use dvf_obs::JsonWriter;
use std::fmt;

/// A parse/lex/resolution error anchored to a source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
    /// Stable machine-readable category (`lex`, `parse`, `eval`,
    /// `resolve`), when the producer assigned one.
    pub code: Option<&'static str>,
}

impl Diagnostic {
    /// Construct a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Self {
            message: message.into(),
            span,
            code: None,
        }
    }

    /// Attach a stable category code.
    pub fn with_code(mut self, code: &'static str) -> Self {
        self.code = Some(code);
        self
    }

    /// Render with the offending source line and a caret marker:
    ///
    /// ```text
    /// error: expected `=` after parameter name
    ///   --> line 3, column 11
    ///    |  param n 100
    ///    |          ^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        let line_text = source.lines().nth(line - 1).unwrap_or("");
        let caret_pad = " ".repeat(col.saturating_sub(1));
        let caret_len = self
            .span
            .text(source)
            .lines()
            .next()
            .map(str::len)
            .unwrap_or(1)
            .max(1);
        let carets = "^".repeat(caret_len);
        format!(
            "error: {}\n  --> line {line}, column {col}\n   |  {line_text}\n   |  {caret_pad}{carets}\n",
            self.message
        )
    }

    /// Write the structured form onto an open JSON writer, as one object
    /// value: `{"code":…,"message":…,"line":…,"col":…,"span":{"start":…,
    /// "end":…}}`. Shared by `dvf check --json` and the `dvf-serve`
    /// `/v1/parse` endpoint so both surfaces emit identical diagnostics.
    pub fn write_json(&self, source: &str, w: &mut JsonWriter) {
        let (line, col) = self.span.line_col(source);
        w.begin_object();
        match self.code {
            Some(code) => w.key("code").string(code),
            None => w.key("code").null(),
        };
        w.key("message").string(&self.message);
        w.key("line").u64(line as u64);
        w.key("col").u64(col as u64);
        w.key("span")
            .begin_object()
            .key("start")
            .u64(self.span.start as u64)
            .key("end")
            .u64(self.span.end as u64)
            .end_object();
        w.end_object();
    }

    /// The structured form as a standalone JSON document.
    pub fn render_json(&self, source: &str) -> String {
        let mut w = JsonWriter::new();
        self.write_json(source, &mut w);
        w.finish()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_problem() {
        let src = "param n = 100\nparam m 200\n";
        let d = Diagnostic::new("expected `=`", Span::new(22, 25));
        let out = d.render(src);
        assert!(out.contains("line 2"));
        assert!(out.contains("param m 200"));
        assert!(out.contains("^^^"));
    }

    #[test]
    fn render_survives_eof_span() {
        let src = "x";
        let d = Diagnostic::new("unexpected end", Span::new(1, 1));
        let out = d.render(src);
        assert!(out.contains("unexpected end"));
    }

    #[test]
    fn json_form_carries_code_span_and_position() {
        let src = "param n = 100\nparam m 200\n";
        let d = Diagnostic::new("expected `=`", Span::new(22, 25)).with_code("parse");
        let json = d.render_json(src);
        assert_eq!(
            json,
            r#"{"code":"parse","message":"expected `=`","line":2,"col":9,"span":{"start":22,"end":25}}"#
        );
    }

    #[test]
    fn json_form_without_code_is_null() {
        let d = Diagnostic::new("oops", Span::new(0, 1));
        assert!(d.render_json("x").starts_with(r#"{"code":null,"#));
    }
}
