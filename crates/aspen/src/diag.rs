//! Diagnostics with source context.

use crate::span::Span;
use std::fmt;

/// A parse/lex/resolution error anchored to a source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl Diagnostic {
    /// Construct a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Self {
            message: message.into(),
            span,
        }
    }

    /// Render with the offending source line and a caret marker:
    ///
    /// ```text
    /// error: expected `=` after parameter name
    ///   --> line 3, column 11
    ///    |  param n 100
    ///    |          ^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        let line_text = source.lines().nth(line - 1).unwrap_or("");
        let caret_pad = " ".repeat(col.saturating_sub(1));
        let caret_len = self
            .span
            .text(source)
            .lines()
            .next()
            .map(str::len)
            .unwrap_or(1)
            .max(1);
        let carets = "^".repeat(caret_len);
        format!(
            "error: {}\n  --> line {line}, column {col}\n   |  {line_text}\n   |  {caret_pad}{carets}\n",
            self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_problem() {
        let src = "param n = 100\nparam m 200\n";
        let d = Diagnostic::new("expected `=`", Span::new(22, 25));
        let out = d.render(src);
        assert!(out.contains("line 2"));
        assert!(out.contains("param m 200"));
        assert!(out.contains("^^^"));
    }

    #[test]
    fn render_survives_eof_span() {
        let src = "x";
        let d = Diagnostic::new("unexpected end", Span::new(1, 1));
        let out = d.render(src);
        assert!(out.contains("unexpected end"));
    }
}
