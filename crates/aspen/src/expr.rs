//! Expression evaluation.

use crate::ast::{BinOp, Expr};
use crate::diag::Diagnostic;
use crate::span::Spanned;
use std::collections::HashMap;

/// Evaluation environment: parameter bindings plus built-in constants.
#[derive(Debug, Clone, Default)]
pub struct Env {
    vars: HashMap<String, f64>,
}

impl Env {
    /// Environment preloaded with the built-in size constants `KiB`,
    /// `MiB`, `GiB`, `KB`, `MB`, `GB` and `PI`.
    pub fn with_builtins() -> Self {
        let mut env = Env::default();
        env.set("KiB", 1024.0);
        env.set("MiB", 1024.0 * 1024.0);
        env.set("GiB", 1024.0 * 1024.0 * 1024.0);
        env.set("KB", 1e3);
        env.set("MB", 1e6);
        env.set("GB", 1e9);
        env.set("PI", std::f64::consts::PI);
        env
    }

    /// Bind (or rebind) a variable.
    pub fn set(&mut self, name: &str, value: f64) {
        self.vars.insert(name.to_owned(), value);
    }

    /// Look up a variable.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.vars.get(name).copied()
    }

    /// Whether a variable is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }
}

/// Evaluate an expression to a scalar.
///
/// Tuples are rejected here — they are only legal in the specific fields
/// that consume them (`dims`, `starts`, `ends`, `refs`).
pub fn eval(expr: &Spanned<Expr>, env: &Env) -> Result<f64, Diagnostic> {
    match &expr.node {
        Expr::Number(n) => Ok(*n),
        Expr::Ident(name) => env
            .get(name)
            .ok_or_else(|| Diagnostic::new(format!("undefined parameter `{name}`"), expr.span)),
        Expr::Neg(inner) => Ok(-eval(inner, env)?),
        Expr::Binary { op, lhs, rhs } => {
            let l = eval(lhs, env)?;
            let r = eval(rhs, env)?;
            match op {
                BinOp::Add => Ok(l + r),
                BinOp::Sub => Ok(l - r),
                BinOp::Mul => Ok(l * r),
                BinOp::Div => {
                    if r == 0.0 {
                        Err(Diagnostic::new("division by zero", expr.span))
                    } else {
                        Ok(l / r)
                    }
                }
                BinOp::Mod => {
                    if r == 0.0 {
                        Err(Diagnostic::new("remainder by zero", expr.span))
                    } else {
                        Ok(l % r)
                    }
                }
                BinOp::Pow => Ok(l.powf(r)),
            }
        }
        Expr::Call { name, args } => {
            let arity = |n: usize| -> Result<(), Diagnostic> {
                if args.len() == n {
                    Ok(())
                } else {
                    Err(Diagnostic::new(
                        format!("`{name}` takes {n} argument(s), got {}", args.len()),
                        expr.span,
                    ))
                }
            };
            match name.as_str() {
                "ceil" => {
                    arity(1)?;
                    Ok(eval(&args[0], env)?.ceil())
                }
                "floor" => {
                    arity(1)?;
                    Ok(eval(&args[0], env)?.floor())
                }
                "round" => {
                    arity(1)?;
                    Ok(eval(&args[0], env)?.round())
                }
                "abs" => {
                    arity(1)?;
                    Ok(eval(&args[0], env)?.abs())
                }
                "sqrt" => {
                    arity(1)?;
                    Ok(eval(&args[0], env)?.sqrt())
                }
                "log2" => {
                    arity(1)?;
                    Ok(eval(&args[0], env)?.log2())
                }
                "min" => {
                    arity(2)?;
                    Ok(eval(&args[0], env)?.min(eval(&args[1], env)?))
                }
                "max" => {
                    arity(2)?;
                    Ok(eval(&args[0], env)?.max(eval(&args[1], env)?))
                }
                other => Err(Diagnostic::new(
                    format!(
                        "unknown function `{other}` (index calls like `R(i,j,k)` are only \
                         valid inside template arguments of a data structure with `dims`)"
                    ),
                    expr.span,
                )),
            }
        }
        Expr::Tuple(_) => Err(Diagnostic::new(
            "tuple is not valid in a scalar context",
            expr.span,
        )),
    }
}

/// Evaluate an expression expected to be a nonnegative integer (counts,
/// sizes, strides). Accepts values within `1e-6` of an integer.
pub fn eval_u64(expr: &Spanned<Expr>, env: &Env) -> Result<u64, Diagnostic> {
    let v = eval(expr, env)?;
    if v < 0.0 {
        return Err(Diagnostic::new(
            format!("expected a nonnegative integer, got {v}"),
            expr.span,
        ));
    }
    let rounded = v.round();
    if (v - rounded).abs() > 1e-6 {
        return Err(Diagnostic::new(
            format!("expected an integer, got {v}"),
            expr.span,
        ));
    }
    Ok(rounded as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn ev(src: &str) -> f64 {
        eval(&parse_expr(src).unwrap(), &Env::with_builtins()).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ev("1 + 2 * 3"), 7.0);
        assert_eq!(ev("(1 + 2) * 3"), 9.0);
        assert_eq!(ev("10 / 4"), 2.5);
        assert_eq!(ev("10 % 4"), 2.0);
        assert_eq!(ev("-3 + 5"), 2.0);
        assert_eq!(ev("2 ^ 10"), 1024.0);
        assert_eq!(ev("2 ^ 3 ^ 2"), 512.0); // right assoc
    }

    #[test]
    fn builtins() {
        assert_eq!(ev("8 * KiB"), 8192.0);
        assert_eq!(ev("4 * MiB"), 4.0 * 1024.0 * 1024.0);
        assert_eq!(ev("min(3, 7)"), 3.0);
        assert_eq!(ev("max(3, 7)"), 7.0);
        assert_eq!(ev("ceil(2.1)"), 3.0);
        assert_eq!(ev("floor(2.9)"), 2.0);
        assert_eq!(ev("sqrt(81)"), 9.0);
        assert_eq!(ev("log2(64)"), 6.0);
        assert_eq!(ev("abs(-4)"), 4.0);
        assert_eq!(ev("round(2.5)"), 3.0);
    }

    #[test]
    fn variables() {
        let mut env = Env::with_builtins();
        env.set("n", 800.0);
        let e = parse_expr("n * n * 8").unwrap();
        assert_eq!(eval(&e, &env).unwrap(), 5_120_000.0);
    }

    #[test]
    fn undefined_variable_is_spanned_error() {
        let e = parse_expr("zz + 1").unwrap();
        let err = eval(&e, &Env::default()).unwrap_err();
        assert!(err.message.contains("zz"));
        assert_eq!(err.span.start, 0);
    }

    #[test]
    fn division_by_zero() {
        let e = parse_expr("1 / (2 - 2)").unwrap();
        assert!(eval(&e, &Env::default()).is_err());
        let e = parse_expr("1 % 0").unwrap();
        assert!(eval(&e, &Env::default()).is_err());
    }

    #[test]
    fn wrong_arity() {
        let e = parse_expr("min(1)").unwrap();
        let err = eval(&e, &Env::default()).unwrap_err();
        assert!(err.message.contains("2 argument"));
    }

    #[test]
    fn unknown_function_mentions_templates() {
        let e = parse_expr("R(1,2,3)").unwrap();
        let err = eval(&e, &Env::default()).unwrap_err();
        assert!(err.message.contains("template"));
    }

    #[test]
    fn tuple_rejected_in_scalar_context() {
        let e = parse_expr("(1, 2)").unwrap();
        assert!(eval(&e, &Env::default()).is_err());
    }

    #[test]
    fn eval_u64_accepts_integers_rejects_fractions() {
        let env = Env::with_builtins();
        assert_eq!(eval_u64(&parse_expr("5").unwrap(), &env).unwrap(), 5);
        assert_eq!(eval_u64(&parse_expr("10 / 2").unwrap(), &env).unwrap(), 5);
        assert!(eval_u64(&parse_expr("5 / 2").unwrap(), &env).is_err());
        assert!(eval_u64(&parse_expr("0 - 3").unwrap(), &env).is_err());
    }
}
