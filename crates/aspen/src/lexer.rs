//! Hand-written lexer.
//!
//! Skips whitespace, `//` line comments and `/* */` block comments;
//! produces [`Token`]s with byte spans. Numbers accept integer, decimal
//! and scientific forms plus `_` digit separators.

use crate::diag::Diagnostic;
use crate::span::{Span, Spanned};
use crate::token::Token;

/// Tokenize `source` completely (including a trailing [`Token::Eof`]).
pub fn lex(source: &str) -> Result<Vec<Spanned<Token>>, Diagnostic> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let start = i;
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(Diagnostic::new(
                        "unterminated block comment",
                        Span::new(start, bytes.len()),
                    ));
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }

        let start = i;
        // Punctuation.
        let punct = match c {
            '{' => Some(Token::LBrace),
            '}' => Some(Token::RBrace),
            '(' => Some(Token::LParen),
            ')' => Some(Token::RParen),
            '=' => Some(Token::Eq),
            ',' => Some(Token::Comma),
            ':' => Some(Token::Colon),
            ';' => Some(Token::Semi),
            '+' => Some(Token::Plus),
            '-' => Some(Token::Minus),
            '*' => Some(Token::Star),
            '/' => Some(Token::Slash),
            '%' => Some(Token::Percent),
            '^' => Some(Token::Caret),
            _ => None,
        };
        if let Some(tok) = punct {
            i += 1;
            tokens.push(Spanned::new(tok, Span::new(start, i)));
            continue;
        }

        // String literal.
        if c == '"' {
            i += 1;
            let mut s = String::new();
            loop {
                match bytes.get(i) {
                    None => {
                        return Err(Diagnostic::new(
                            "unterminated string literal",
                            Span::new(start, bytes.len()),
                        ))
                    }
                    Some(b'"') => {
                        i += 1;
                        break;
                    }
                    Some(b'\\') => {
                        let escaped = bytes.get(i + 1).copied();
                        match escaped {
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            _ => {
                                return Err(Diagnostic::new(
                                    "unknown escape sequence",
                                    Span::new(i, i + 2),
                                ))
                            }
                        }
                        i += 2;
                    }
                    Some(&b) => {
                        s.push(b as char);
                        i += 1;
                    }
                }
            }
            tokens.push(Spanned::new(Token::Str(s), Span::new(start, i)));
            continue;
        }

        // Number.
        if c.is_ascii_digit()
            || (c == '.' && matches!(bytes.get(i + 1), Some(d) if d.is_ascii_digit()))
        {
            let mut j = i;
            let mut seen_dot = false;
            let mut seen_exp = false;
            while j < bytes.len() {
                let d = bytes[j] as char;
                if d.is_ascii_digit() || d == '_' {
                    j += 1;
                } else if d == '.' && !seen_dot && !seen_exp {
                    // Guard against `1..2` style ranges (not in grammar, but
                    // keeps errors sane): require digit after dot.
                    if matches!(bytes.get(j + 1), Some(n) if n.is_ascii_digit()) {
                        seen_dot = true;
                        j += 1;
                    } else {
                        break;
                    }
                } else if (d == 'e' || d == 'E') && !seen_exp {
                    // Exponent: e[+|-]digits
                    let mut k = j + 1;
                    if matches!(bytes.get(k), Some(b'+') | Some(b'-')) {
                        k += 1;
                    }
                    if matches!(bytes.get(k), Some(n) if n.is_ascii_digit()) {
                        seen_exp = true;
                        j = k;
                    } else {
                        break;
                    }
                } else {
                    break;
                }
            }
            let text: String = source[i..j].chars().filter(|&ch| ch != '_').collect();
            let value: f64 = text.parse().map_err(|_| {
                Diagnostic::new(format!("invalid number `{text}`"), Span::new(i, j))
            })?;
            tokens.push(Spanned::new(Token::Number(value), Span::new(i, j)));
            i = j;
            continue;
        }

        // Identifier.
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i;
            while j < bytes.len() {
                let d = bytes[j] as char;
                if d.is_ascii_alphanumeric() || d == '_' {
                    j += 1;
                } else {
                    break;
                }
            }
            tokens.push(Spanned::new(
                Token::Ident(source[i..j].to_owned()),
                Span::new(i, j),
            ));
            i = j;
            continue;
        }

        return Err(Diagnostic::new(
            format!("unexpected character `{c}`"),
            Span::new(i, i + 1),
        ));
    }

    tokens.push(Spanned::new(Token::Eof, Span::new(i, i)));
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.node).collect()
    }

    #[test]
    fn lexes_punctuation_and_idents() {
        let toks = kinds("model vm { param n = 8 }");
        assert_eq!(
            toks,
            vec![
                Token::Ident("model".into()),
                Token::Ident("vm".into()),
                Token::LBrace,
                Token::Ident("param".into()),
                Token::Ident("n".into()),
                Token::Eq,
                Token::Number(8.0),
                Token::RBrace,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("1 2.5 1e9 3.2e-4 1_000_000 .5"),
            vec![
                Token::Number(1.0),
                Token::Number(2.5),
                Token::Number(1e9),
                Token::Number(3.2e-4),
                Token::Number(1_000_000.0),
                Token::Number(0.5),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn number_followed_by_ident_splits() {
        // `16KiB` is not a single token; the grammar writes `16 * KiB`.
        let toks = kinds("16 KiB");
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn lexes_comments() {
        let toks = kinds("a // comment\n b /* multi\nline */ c");
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""hi\n\"there\"""#),
            vec![Token::Str("hi\n\"there\"".into()), Token::Eof]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains('@'));
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }

    #[test]
    fn exponent_requires_digits() {
        // `1e` followed by non-digit: number ends, `e` lexes as ident start.
        let toks = kinds("1eq");
        assert_eq!(
            toks,
            vec![Token::Number(1.0), Token::Ident("eq".into()), Token::Eof]
        );
    }
}
