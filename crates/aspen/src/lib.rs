//! # dvf-aspen
//!
//! A from-scratch implementation of an **Aspen-style domain specific
//! language**, extended with the resilience-modeling syntax introduced by
//! *Yu, Li, Mittal, Vetter — "Quantitatively Modeling Application Resilience
//! with the Data Vulnerability Factor", SC 2014* (§III-D).
//!
//! Aspen (Spafford & Vetter, SC 2012) is a DSL for structured analytical
//! modeling of applications and abstract machines. The DVF paper extends
//! its syntax and semantics so users can declare, per data structure, the
//! memory-access pattern (`streaming`/`random`/`template`/`reuse`), its
//! parameters, element templates, and access-order strings; the compiler
//! then computes the number of main-memory accesses and DVF.
//!
//! This crate is the language front-end: lexer → parser → AST →
//! resolution into plain-number specifications ([`MachineSpec`],
//! [`AppSpec`]). The CGPMAC math lives in `dvf-core`, which consumes these
//! specs (see `dvf_core::workflow`).
//!
//! ## Example
//!
//! ```
//! use dvf_aspen::{parse, Resolver};
//!
//! let source = r#"
//!     // Paper §III-D, first example: vector multiplication.
//!     machine small {
//!       cache { associativity = 4  sets = 64  line = 32 }
//!       memory { fit = 5000 }
//!     }
//!     model vm {
//!       param n = 200
//!       data A { size = n * 8  element = 8 }
//!       kernel main {
//!         flops = 2 * n
//!         access A as streaming(element = 8, count = n, stride = 4)
//!       }
//!     }
//! "#;
//!
//! let doc = parse(source).expect("parses");
//! let resolver = Resolver::new(&doc);
//! let machine = resolver.machine(None).expect("machine resolves");
//! let app = resolver.model(None).expect("model resolves");
//! assert_eq!(machine.cache.capacity(), 8192);
//! assert_eq!(app.datas[0].size_bytes, 1600);
//! ```

pub mod ast;
pub mod compact;
pub mod diag;
pub mod expr;
pub mod lexer;
pub mod machine;
pub mod model;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::Document;
pub use compact::{parse_compact, CompactProgram, PatternCode};
pub use diag::Diagnostic;
pub use machine::{CacheSpec, CoreSpec, EccKind, MachineSpec, MemorySpec};
pub use model::{
    AccessSpec, AppSpec, DataSpec, KernelSpec, OrderStepSpec, PatternSpec, ReuseScenario,
};
pub use parser::{parse, parse_expr};
pub use pretty::pretty;

use expr::Env;
use machine::{base_env, resolve_machine_def};
use model::resolve_model_def;

/// Resolves parsed documents into concrete specifications, with optional
/// parameter overrides (the "application/hardware configuration" inputs of
/// the paper's Fig. 3 workflow).
#[derive(Debug, Clone)]
pub struct Resolver<'d> {
    doc: &'d Document,
    overrides: Vec<(String, f64)>,
}

impl<'d> Resolver<'d> {
    /// Resolver with no overrides.
    pub fn new(doc: &'d Document) -> Self {
        Self {
            doc,
            overrides: Vec::new(),
        }
    }

    /// Override a parameter (beats any `param` default of the same name).
    pub fn set_param(mut self, name: &str, value: f64) -> Self {
        self.overrides.push((name.to_owned(), value));
        self
    }

    fn env(&self) -> Result<Env, Diagnostic> {
        base_env(self.doc, &self.overrides)
    }

    /// Resolve a machine by name (or the document's only machine).
    pub fn machine(&self, name: Option<&str>) -> Result<MachineSpec, Diagnostic> {
        let def = self.doc.machine(name).ok_or_else(|| {
            Diagnostic::new(
                match name {
                    Some(n) => format!("no machine named `{n}` (or name is ambiguous)"),
                    None => "expected exactly one machine in the document".to_owned(),
                },
                span::Span::default(),
            )
            .with_code("resolve")
        })?;
        resolve_machine_def(def, &self.env()?).map_err(tag_resolve)
    }

    /// Resolve a model by name (or the document's only model).
    pub fn model(&self, name: Option<&str>) -> Result<AppSpec, Diagnostic> {
        let def = self.doc.model(name).ok_or_else(|| {
            Diagnostic::new(
                match name {
                    Some(n) => format!("no model named `{n}` (or name is ambiguous)"),
                    None => "expected exactly one model in the document".to_owned(),
                },
                span::Span::default(),
            )
            .with_code("resolve")
        })?;
        resolve_model_def(def, &self.env()?).map_err(tag_resolve)
    }
}

/// Categorize a resolution-stage diagnostic unless it already has a code.
fn tag_resolve(d: Diagnostic) -> Diagnostic {
    match d.code {
        Some(_) => d,
        None => d.with_code("resolve"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolver_with_overrides() {
        let doc = parse(
            r#"
            model cg {
              param n = 100
              data A { size = n * n * 8  element = 8 }
            }
            "#,
        )
        .unwrap();
        let small = Resolver::new(&doc).model(None).unwrap();
        assert_eq!(small.datas[0].size_bytes, 100 * 100 * 8);
        let big = Resolver::new(&doc)
            .set_param("n", 800.0)
            .model(None)
            .unwrap();
        assert_eq!(big.datas[0].size_bytes, 800 * 800 * 8);
    }

    #[test]
    fn missing_machine_reports_cleanly() {
        let doc = parse("model m { }").unwrap();
        let err = Resolver::new(&doc).machine(None).unwrap_err();
        assert!(err.message.contains("exactly one machine"));
        let err = Resolver::new(&doc).machine(Some("zz")).unwrap_err();
        assert!(err.message.contains("zz"));
    }
}
