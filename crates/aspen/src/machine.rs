//! Machine-model resolution: `machine { ... }` AST → concrete numbers.

use crate::ast::{Document, Expr, MachineDef};
use crate::diag::Diagnostic;
use crate::expr::{eval, eval_u64, Env};
use crate::span::Span;

/// Resolved last-level-cache geometry (paper Table III symbols).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSpec {
    /// `CA`.
    pub associativity: u64,
    /// `NA`.
    pub sets: u64,
    /// `CL` in bytes.
    pub line_bytes: u64,
}

impl CacheSpec {
    /// Capacity `Cc` in bytes.
    pub fn capacity(&self) -> u64 {
        self.associativity * self.sets * self.line_bytes
    }
}

/// ECC scheme named in a machine model. The FIT consequences live in
/// `dvf-core::fit`; the DSL only records the choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EccKind {
    /// Unprotected.
    #[default]
    None,
    /// SECDED.
    Secded,
    /// Chipkill-correct.
    Chipkill,
}

/// Resolved main-memory description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySpec {
    /// Explicit failure rate in FIT/Mbit, if the model gave one. When
    /// absent, the consumer derives the rate from `ecc`.
    pub fit_per_mbit: Option<f64>,
    /// ECC scheme.
    pub ecc: EccKind,
}

/// Resolved compute rates for the Aspen-style time model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreSpec {
    /// Peak flop/s.
    pub flops_per_sec: f64,
    /// Main-memory bandwidth in bytes/s.
    pub mem_bytes_per_sec: f64,
}

impl Default for CoreSpec {
    fn default() -> Self {
        Self {
            flops_per_sec: 1e9,
            mem_bytes_per_sec: 4e9,
        }
    }
}

/// A fully resolved machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Machine name.
    pub name: String,
    /// Last-level cache.
    pub cache: CacheSpec,
    /// Main memory.
    pub memory: MemorySpec,
    /// Compute rates.
    pub core: CoreSpec,
}

/// Resolve one machine definition against an environment of parameter
/// bindings (already including global params and overrides).
pub fn resolve_machine_def(def: &MachineDef, env: &Env) -> Result<MachineSpec, Diagnostic> {
    let mut env = env.clone();
    for p in &def.params {
        if !env.contains(&p.name.node) {
            let v = eval(&p.value, &env)?;
            env.set(&p.name.node, v);
        }
    }

    let mut cache = None;
    let mut memory = MemorySpec {
        fit_per_mbit: None,
        ecc: EccKind::None,
    };
    let mut core = CoreSpec::default();

    for section in &def.sections {
        match section.kind.node.as_str() {
            "cache" => {
                let mut assoc = None;
                let mut sets = None;
                let mut line = None;
                for f in &section.fields {
                    match f.name.node.as_str() {
                        "associativity" => assoc = Some(eval_u64(&f.value, &env)?),
                        "sets" => sets = Some(eval_u64(&f.value, &env)?),
                        "line" => line = Some(eval_u64(&f.value, &env)?),
                        "capacity" => {
                            // Redundant but checkable.
                            let cap = eval_u64(&f.value, &env)?;
                            env.set("__declared_capacity", cap as f64);
                        }
                        other => {
                            return Err(Diagnostic::new(
                                format!("unknown cache field `{other}` (expected `associativity`, `sets`, `line` or `capacity`)"),
                                f.name.span,
                            ))
                        }
                    }
                }
                let require = |v: Option<u64>, what: &str, span: Span| {
                    v.ok_or_else(|| Diagnostic::new(format!("cache is missing `{what}`"), span))
                };
                let spec = CacheSpec {
                    associativity: require(assoc, "associativity", section.kind.span)?,
                    sets: require(sets, "sets", section.kind.span)?,
                    line_bytes: require(line, "line", section.kind.span)?,
                };
                if let Some(declared) = env.get("__declared_capacity") {
                    if declared as u64 != spec.capacity() {
                        return Err(Diagnostic::new(
                            format!(
                                "declared capacity {} does not match associativity*sets*line = {}",
                                declared as u64,
                                spec.capacity()
                            ),
                            section.kind.span,
                        ));
                    }
                }
                cache = Some(spec);
            }
            "memory" => {
                for f in &section.fields {
                    match f.name.node.as_str() {
                        "fit" => memory.fit_per_mbit = Some(eval(&f.value, &env)?),
                        "ecc" => {
                            memory.ecc = match &f.value.node {
                                Expr::Ident(s) => match s.as_str() {
                                    "none" => EccKind::None,
                                    "secded" => EccKind::Secded,
                                    "chipkill" => EccKind::Chipkill,
                                    other => {
                                        return Err(Diagnostic::new(
                                            format!("unknown ECC scheme `{other}` (expected `none`, `secded` or `chipkill`)"),
                                            f.value.span,
                                        ))
                                    }
                                },
                                _ => {
                                    return Err(Diagnostic::new(
                                        "`ecc` expects a scheme name (`none`, `secded`, `chipkill`)",
                                        f.value.span,
                                    ))
                                }
                            };
                        }
                        other => {
                            return Err(Diagnostic::new(
                                format!("unknown memory field `{other}` (expected `fit` or `ecc`)"),
                                f.name.span,
                            ))
                        }
                    }
                }
            }
            "core" => {
                for f in &section.fields {
                    match f.name.node.as_str() {
                        "flops" => core.flops_per_sec = eval(&f.value, &env)?,
                        "bandwidth" => core.mem_bytes_per_sec = eval(&f.value, &env)?,
                        other => {
                            return Err(Diagnostic::new(
                                format!(
                                "unknown core field `{other}` (expected `flops` or `bandwidth`)"
                            ),
                                f.name.span,
                            ))
                        }
                    }
                }
            }
            other => {
                return Err(Diagnostic::new(
                    format!("unknown machine section `{other}`"),
                    section.kind.span,
                ))
            }
        }
    }

    let cache = cache.ok_or_else(|| {
        Diagnostic::new(
            format!("machine `{}` has no `cache` section", def.name.node),
            def.name.span,
        )
    })?;
    if core.flops_per_sec <= 0.0 || core.mem_bytes_per_sec <= 0.0 {
        return Err(Diagnostic::new(
            "core rates must be positive",
            def.name.span,
        ));
    }

    Ok(MachineSpec {
        name: def.name.node.clone(),
        cache,
        memory,
        core,
    })
}

/// Build the base environment for a document: builtins plus global
/// parameters, with `overrides` taking precedence over declared defaults.
pub fn base_env(doc: &Document, overrides: &[(String, f64)]) -> Result<Env, Diagnostic> {
    let mut env = Env::with_builtins();
    for (k, v) in overrides {
        env.set(k, *v);
    }
    for p in doc.params() {
        if !env.contains(&p.name.node) {
            let v = eval(&p.value, &env)?;
            env.set(&p.name.node, v);
        }
    }
    Ok(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn resolve(src: &str) -> Result<MachineSpec, Diagnostic> {
        let doc = parse(src).unwrap();
        let env = base_env(&doc, &[]).unwrap();
        resolve_machine_def(doc.machine(None).expect("one machine"), &env)
    }

    #[test]
    fn resolves_full_machine() {
        let spec = resolve(
            r#"
            machine small {
              cache { associativity = 4  sets = 64  line = 32 }
              memory { fit = 5000  ecc = none }
              core { flops = 1e9  bandwidth = 4e9 }
            }
            "#,
        )
        .unwrap();
        assert_eq!(spec.cache.capacity(), 8192);
        assert_eq!(spec.memory.fit_per_mbit, Some(5000.0));
        assert_eq!(spec.memory.ecc, EccKind::None);
        assert_eq!(spec.core.flops_per_sec, 1e9);
    }

    #[test]
    fn machine_params_feed_fields() {
        let spec = resolve(
            r#"
            machine m {
              param ways = 8
              cache { associativity = ways  sets = 2 ^ 12  line = 32 }
            }
            "#,
        )
        .unwrap();
        assert_eq!(spec.cache.associativity, 8);
        assert_eq!(spec.cache.sets, 4096);
    }

    #[test]
    fn capacity_cross_check() {
        let ok = resolve(
            "machine m { cache { associativity = 4 sets = 64 line = 32 capacity = 8 * KiB } }",
        );
        assert!(ok.is_ok());
        let bad = resolve(
            "machine m { cache { associativity = 4 sets = 64 line = 32 capacity = 16 * KiB } }",
        );
        assert!(bad.unwrap_err().message.contains("does not match"));
    }

    #[test]
    fn ecc_parses_schemes() {
        let spec = resolve(
            "machine m { cache { associativity = 1 sets = 1 line = 8 } memory { ecc = chipkill } }",
        )
        .unwrap();
        assert_eq!(spec.memory.ecc, EccKind::Chipkill);
        let err = resolve(
            "machine m { cache { associativity = 1 sets = 1 line = 8 } memory { ecc = foo } }",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown ECC scheme"));
    }

    #[test]
    fn missing_cache_is_an_error() {
        let err = resolve("machine m { core { flops = 1 bandwidth = 1 } }").unwrap_err();
        assert!(err.message.contains("no `cache`"));
    }

    #[test]
    fn missing_cache_field_is_an_error() {
        let err = resolve("machine m { cache { associativity = 4 sets = 64 } }").unwrap_err();
        assert!(err.message.contains("missing `line`"));
    }

    #[test]
    fn unknown_field_is_an_error() {
        let err =
            resolve("machine m { cache { associativity = 4 sets = 64 line = 32 color = 1 } }")
                .unwrap_err();
        assert!(err.message.contains("unknown cache field"));
    }

    #[test]
    fn overrides_beat_declared_params() {
        let doc = parse(
            r#"
            param ways = 4
            machine m { cache { associativity = ways sets = 64 line = 32 } }
            "#,
        )
        .unwrap();
        let env = base_env(&doc, &[("ways".into(), 16.0)]).unwrap();
        let spec = resolve_machine_def(doc.machine(None).unwrap(), &env).unwrap();
        assert_eq!(spec.cache.associativity, 16);
    }
}
