//! Application-model resolution: `model { ... }` AST → concrete access
//! specifications ready for the CGPMAC models.

use crate::ast::{find_field, AccessDef, DataDef, Expr, ModelDef, OrderStep};
use crate::diag::Diagnostic;
use crate::expr::{eval, eval_u64, Env};
use crate::span::{Span, Spanned};

/// A resolved data structure.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSpec {
    /// Name.
    pub name: String,
    /// Footprint `S_d` in bytes.
    pub size_bytes: u64,
    /// Element size in bytes.
    pub element_bytes: u64,
    /// Row-major extents for index calls `Name(i, j, …)`, if declared.
    pub dims: Option<Vec<u64>>,
}

impl DataSpec {
    /// Number of elements (`size / element`).
    pub fn num_elements(&self) -> u64 {
        self.size_bytes / self.element_bytes
    }
}

/// Reuse-model interference scenario (mirrors `dvf-core`'s enum; kept
/// separate so the DSL crate stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReuseScenario {
    /// Target loaded exclusively, then interfered (paper Eq. 11).
    #[default]
    Exclusive,
    /// Target and interferers loaded concurrently (paper Eqs. 10/12).
    Concurrent,
}

/// A resolved access pattern with concrete numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternSpec {
    /// Streaming (`s`): paper tuple `(element, count, stride)`.
    Streaming {
        /// Element size in bytes.
        element_bytes: u64,
        /// Elements in the structure.
        count: u64,
        /// Stride in elements.
        stride_elements: u64,
    },
    /// Random (`r`): paper tuple `(N, E, k, iter, r)`.
    Random {
        /// Elements in the structure (`N`).
        elements: u64,
        /// Element size in bytes (`E`).
        element_bytes: u64,
        /// Distinct elements visited per iteration (`k`).
        k: u64,
        /// Iterations (`iter`).
        iters: u64,
        /// Cache-sharing ratio (`r`).
        ratio: f64,
    },
    /// Template-based (`t`): an expanded element-reference sequence,
    /// replayed `repeat` times.
    Template {
        /// Element size in bytes.
        element_bytes: u64,
        /// Element indices in reference order.
        refs: Vec<u64>,
        /// Whole-template repetitions.
        repeat: u64,
    },
    /// Data reuse (`d`): the structure is reloaded against interference.
    Reuse {
        /// Combined interfering footprint in bytes.
        interfering_bytes: u64,
        /// Reuse count after the initial load.
        reuses: u64,
        /// Scenario.
        scenario: ReuseScenario,
    },
}

impl PatternSpec {
    /// The paper's single-letter code for the pattern (`s`/`r`/`t`/`d`).
    pub fn code(&self) -> char {
        match self {
            PatternSpec::Streaming { .. } => 's',
            PatternSpec::Random { .. } => 'r',
            PatternSpec::Template { .. } => 't',
            PatternSpec::Reuse { .. } => 'd',
        }
    }
}

/// One resolved `access` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessSpec {
    /// Target data structure name.
    pub data: String,
    /// Resolved pattern.
    pub pattern: PatternSpec,
}

/// An access with its static execution count: the product of every
/// enclosing `iterate` trip count and `call`-site multiplicity. The
/// kernel-level `iters` field applies on top of this.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledAccess {
    /// The access.
    pub access: AccessSpec,
    /// Times the access executes per kernel invocation.
    pub times: u64,
}

/// One resolved order step.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderStepSpec {
    /// Structure accessed alone.
    Single(String),
    /// Structures accessed concurrently.
    Group(Vec<String>),
}

/// A resolved kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Name.
    pub name: String,
    /// Floating-point operations per kernel invocation.
    pub flops: f64,
    /// Explicit main-memory traffic per invocation in bytes (Aspen-style
    /// `loads`/`stores` resource statements, summed), if given. When
    /// absent, consumers derive traffic from the access-pattern models.
    pub traffic_bytes: Option<f64>,
    /// Explicit execution-time override in seconds, if given.
    pub time_s: Option<f64>,
    /// Invocation count (`iters` field, default 1): the kernel's accesses
    /// and flops all scale by it downstream.
    pub iters: u64,
    /// Accesses with their control-flow multiplicities, `call`s expanded
    /// inline.
    pub accesses: Vec<ScaledAccess>,
    /// Access order, if declared.
    pub order: Option<Vec<OrderStepSpec>>,
    /// Whether this kernel is an entry point (not `call`ed by any other
    /// kernel). Consumers evaluate root kernels only; callees are already
    /// folded into their callers.
    pub is_root: bool,
}

/// A fully resolved application model.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Application name.
    pub name: String,
    /// Data structures in declaration order.
    pub datas: Vec<DataSpec>,
    /// Kernels in declaration order.
    pub kernels: Vec<KernelSpec>,
}

impl AppSpec {
    /// Find a data structure by name.
    pub fn data(&self, name: &str) -> Option<&DataSpec> {
        self.datas.iter().find(|d| d.name == name)
    }

    /// Total working-set size in bytes.
    pub fn working_set_bytes(&self) -> u64 {
        self.datas.iter().map(|d| d.size_bytes).sum()
    }
}

/// Resolve a model definition against a base environment.
pub fn resolve_model_def(def: &ModelDef, env: &Env) -> Result<AppSpec, Diagnostic> {
    let mut env = env.clone();
    for p in &def.params {
        if !env.contains(&p.name.node) {
            let v = eval(&p.value, &env)?;
            env.set(&p.name.node, v);
        }
    }

    let mut datas = Vec::new();
    for d in &def.datas {
        datas.push(resolve_data(d, &env)?);
    }
    // Duplicate check.
    for (i, d) in datas.iter().enumerate() {
        if datas[..i].iter().any(|e| e.name == d.name) {
            return Err(Diagnostic::new(
                format!("duplicate data structure `{}`", d.name),
                def.name.span,
            ));
        }
    }

    // First pass: each kernel's own resources, body accesses with local
    // `iterate` multiplicities, and its direct call sites.
    struct Partial {
        flops: f64,
        traffic_bytes: Option<f64>,
        time_s: Option<f64>,
        iters: u64,
        accesses: Vec<ScaledAccess>,
        calls: Vec<(String, u64, Span)>,
        order: Option<Vec<OrderStepSpec>>,
    }
    let mut partials: Vec<Partial> = Vec::new();
    for k in &def.kernels {
        let mut flops = 0.0;
        let mut time_s = None;
        let mut iters = 1u64;
        let mut loads = None;
        let mut stores = None;
        for f in &k.fields {
            match f.name.node.as_str() {
                "flops" => flops = eval(&f.value, &env)?,
                "time" => time_s = Some(eval(&f.value, &env)?),
                "iters" => iters = eval_u64(&f.value, &env)?,
                "loads" => loads = Some(eval(&f.value, &env)?),
                "stores" => stores = Some(eval(&f.value, &env)?),
                other => {
                    return Err(Diagnostic::new(
                        format!(
                            "unknown kernel field `{other}` (expected `flops`, `time`, \
                             `iters`, `loads` or `stores`)"
                        ),
                        f.name.span,
                    ))
                }
            }
        }
        let traffic_bytes = match (loads, stores) {
            (None, None) => None,
            (l, s) => Some(l.unwrap_or(0.0) + s.unwrap_or(0.0)),
        };

        let mut accesses = Vec::new();
        let mut calls = Vec::new();
        walk_body(&k.body, 1, &datas, &env, &mut accesses, &mut calls)?;

        let order = match &k.order {
            None => None,
            Some(steps) => Some(resolve_order(steps, &datas)?),
        };

        partials.push(Partial {
            flops,
            traffic_bytes,
            time_s,
            iters,
            accesses,
            calls,
            order,
        });
    }

    // Validate call targets, detect roots.
    let kernel_index = |name: &str| def.kernels.iter().position(|k| k.name.node == name);
    let mut is_root = vec![true; partials.len()];
    for p in &partials {
        for (callee, _, span) in &p.calls {
            match kernel_index(callee) {
                Some(idx) => is_root[idx] = false,
                None => {
                    return Err(Diagnostic::new(
                        format!("call to unknown kernel `{callee}`"),
                        *span,
                    ))
                }
            }
        }
    }

    // Second pass: expand calls transitively (flops and accesses), with
    // cycle detection.
    fn expand(
        idx: usize,
        partials: &[Partial],
        kernel_index: &dyn Fn(&str) -> Option<usize>,
        stack: &mut Vec<usize>,
        names: &[&str],
    ) -> Result<(f64, Vec<ScaledAccess>), Diagnostic> {
        if stack.contains(&idx) {
            return Err(Diagnostic::new(
                format!("kernel call cycle through `{}`", names[idx]),
                Span::default(),
            ));
        }
        stack.push(idx);
        let p = &partials[idx];
        let mut flops = p.flops;
        let mut accesses = p.accesses.clone();
        for (callee, times, span) in &p.calls {
            let cidx = kernel_index(callee).expect("validated above");
            let (cflops, caccs) = expand(cidx, partials, kernel_index, stack, names)?;
            // The callee's own `iters` multiplies everything it does.
            let callee_iters = partials[cidx].iters;
            let mult = times
                .checked_mul(callee_iters)
                .ok_or_else(|| Diagnostic::new("call multiplicity overflow", *span))?;
            flops += cflops * mult as f64;
            for sa in caccs {
                let t = sa
                    .times
                    .checked_mul(mult)
                    .ok_or_else(|| Diagnostic::new("call multiplicity overflow", *span))?;
                accesses.push(ScaledAccess {
                    access: sa.access,
                    times: t,
                });
            }
        }
        stack.pop();
        Ok((flops, accesses))
    }

    let names: Vec<&str> = def.kernels.iter().map(|k| k.name.node.as_str()).collect();
    let mut kernels = Vec::new();
    for (i, k) in def.kernels.iter().enumerate() {
        let mut stack = Vec::new();
        let (flops, accesses) = expand(i, &partials, &kernel_index, &mut stack, &names)?;
        let p = &partials[i];
        kernels.push(KernelSpec {
            name: k.name.node.clone(),
            flops,
            traffic_bytes: p.traffic_bytes,
            time_s: p.time_s,
            iters: p.iters,
            accesses,
            order: p.order.clone(),
            is_root: is_root[i],
        });
    }

    Ok(AppSpec {
        name: def.name.node.clone(),
        datas,
        kernels,
    })
}

/// Walk a kernel body, accumulating accesses at their `iterate`
/// multiplicities and collecting call sites.
fn walk_body(
    stmts: &[crate::ast::KernelStmt],
    mult: u64,
    datas: &[DataSpec],
    env: &Env,
    accesses: &mut Vec<ScaledAccess>,
    calls: &mut Vec<(String, u64, Span)>,
) -> Result<(), Diagnostic> {
    use crate::ast::KernelStmt;
    for s in stmts {
        match s {
            KernelStmt::Access(a) => {
                accesses.push(ScaledAccess {
                    access: resolve_access(a, datas, env)?,
                    times: mult,
                });
            }
            KernelStmt::Call { name } => {
                calls.push((name.node.clone(), mult, name.span));
            }
            KernelStmt::Iterate { count, body } => {
                let n = eval_u64(count, env)?;
                let inner = mult
                    .checked_mul(n)
                    .ok_or_else(|| Diagnostic::new("iterate multiplicity overflow", count.span))?;
                if inner > 0 {
                    walk_body(body, inner, datas, env, accesses, calls)?;
                }
            }
        }
    }
    Ok(())
}

fn resolve_data(d: &DataDef, env: &Env) -> Result<DataSpec, Diagnostic> {
    let mut size = None;
    let mut element = None;
    let mut dims = None;
    for f in &d.fields {
        match f.name.node.as_str() {
            "size" => size = Some(eval_u64(&f.value, env)?),
            "element" => element = Some(eval_u64(&f.value, env)?),
            "dims" => {
                let items = expect_tuple(&f.value)?;
                let mut extents = Vec::with_capacity(items.len());
                for item in items {
                    extents.push(eval_u64(item, env)?);
                }
                if extents.contains(&0) {
                    return Err(Diagnostic::new(
                        "dims extents must be nonzero",
                        f.value.span,
                    ));
                }
                dims = Some(extents);
            }
            other => {
                return Err(Diagnostic::new(
                    format!("unknown data field `{other}` (expected `size`, `element` or `dims`)"),
                    f.name.span,
                ))
            }
        }
    }
    let size_bytes = size.ok_or_else(|| {
        Diagnostic::new(
            format!("data `{}` is missing `size`", d.name.node),
            d.name.span,
        )
    })?;
    let element_bytes = element.ok_or_else(|| {
        Diagnostic::new(
            format!("data `{}` is missing `element`", d.name.node),
            d.name.span,
        )
    })?;
    if element_bytes == 0 || size_bytes == 0 {
        return Err(Diagnostic::new(
            format!("data `{}` must have nonzero size and element", d.name.node),
            d.name.span,
        ));
    }
    if let Some(extents) = &dims {
        let product: u64 = extents.iter().product();
        let elements = size_bytes / element_bytes;
        // The array may be padded beyond the logical index space (halo
        // layers, 1-based index formulas), but never smaller than it.
        if product > elements {
            return Err(Diagnostic::new(
                format!(
                    "data `{}`: dims product {} exceeds element count {}",
                    d.name.node, product, elements
                ),
                d.name.span,
            ));
        }
    }
    Ok(DataSpec {
        name: d.name.node.clone(),
        size_bytes,
        element_bytes,
        dims,
    })
}

fn expect_tuple(value: &Spanned<Expr>) -> Result<&[Spanned<Expr>], Diagnostic> {
    match &value.node {
        Expr::Tuple(items) => Ok(items),
        _ => Err(Diagnostic::new(
            "expected a parenthesized tuple `(a, b, …)`",
            value.span,
        )),
    }
}

/// A tuple, or a single expression treated as a one-element lane list
/// (`starts = (0)` parses as a parenthesized scalar).
fn tuple_or_single(value: &Spanned<Expr>) -> Vec<Spanned<Expr>> {
    match &value.node {
        Expr::Tuple(items) => items.clone(),
        _ => vec![value.clone()],
    }
}

/// Evaluate a template element reference: either a scalar expression or an
/// index call `Name(i, j, …)` into a data structure with declared `dims`.
fn eval_element_ref(expr: &Spanned<Expr>, data: &DataSpec, env: &Env) -> Result<u64, Diagnostic> {
    if let Expr::Call { name, args } = &expr.node {
        if name == &data.name {
            let dims = data.dims.as_ref().ok_or_else(|| {
                Diagnostic::new(
                    format!(
                        "index call `{name}(…)` requires `dims` on data `{}`",
                        data.name
                    ),
                    expr.span,
                )
            })?;
            if args.len() != dims.len() {
                return Err(Diagnostic::new(
                    format!(
                        "index call has {} indices but `{}` has {} dims",
                        args.len(),
                        data.name,
                        dims.len()
                    ),
                    expr.span,
                ));
            }
            // Row-major flatten: idx = ((i0 * e1) + i1) * e2 + i2 …
            // Matches the paper's R(i,j,k) = i*n2*n1 + j*n1 + k with
            // dims = (n3, n2, n1).
            let mut idx: i64 = 0;
            for (arg, &extent) in args.iter().zip(dims) {
                let v = eval(arg, env)?;
                let vi = v.round() as i64;
                if (v - vi as f64).abs() > 1e-6 {
                    return Err(Diagnostic::new(
                        format!("index must be an integer, got {v}"),
                        arg.span,
                    ));
                }
                idx = idx * extent as i64 + vi;
            }
            if idx < 0 {
                return Err(Diagnostic::new(
                    format!("index call flattens to negative element {idx}"),
                    expr.span,
                ));
            }
            return Ok(idx as u64);
        }
    }
    eval_u64(expr, env)
}

fn resolve_access(a: &AccessDef, datas: &[DataSpec], env: &Env) -> Result<AccessSpec, Diagnostic> {
    let data = datas
        .iter()
        .find(|d| d.name == a.data.node)
        .ok_or_else(|| {
            Diagnostic::new(
                format!("access names unknown data structure `{}`", a.data.node),
                a.data.span,
            )
        })?;

    let args = &a.args;
    let scalar = |name: &str| -> Result<Option<f64>, Diagnostic> {
        match find_field(args, name) {
            Some(f) => Ok(Some(eval(&f.value, env)?)),
            None => Ok(None),
        }
    };
    let integer = |name: &str| -> Result<Option<u64>, Diagnostic> {
        match find_field(args, name) {
            Some(f) => Ok(Some(eval_u64(&f.value, env)?)),
            None => Ok(None),
        }
    };
    let require_integer = |name: &str| -> Result<u64, Diagnostic> {
        integer(name)?.ok_or_else(|| {
            Diagnostic::new(
                format!("pattern `{}` requires argument `{name}`", a.pattern.node),
                a.pattern.span,
            )
        })
    };
    let check_known = |allowed: &[&str]| -> Result<(), Diagnostic> {
        for f in args {
            if !allowed.contains(&f.name.node.as_str()) {
                return Err(Diagnostic::new(
                    format!(
                        "unknown argument `{}` for pattern `{}` (expected one of {})",
                        f.name.node,
                        a.pattern.node,
                        allowed.join(", ")
                    ),
                    f.name.span,
                ));
            }
        }
        Ok(())
    };

    let pattern = match a.pattern.node.as_str() {
        "streaming" | "s" => {
            check_known(&["element", "count", "stride"])?;
            let element_bytes = integer("element")?.unwrap_or(data.element_bytes);
            let count = integer("count")?.unwrap_or(data.size_bytes / element_bytes.max(1));
            let stride_elements = integer("stride")?.unwrap_or(1);
            if stride_elements == 0 {
                return Err(Diagnostic::new("stride must be nonzero", a.pattern.span));
            }
            PatternSpec::Streaming {
                element_bytes,
                count,
                stride_elements,
            }
        }
        "random" | "r" => {
            check_known(&["elements", "element", "k", "iters", "ratio"])?;
            let element_bytes = integer("element")?.unwrap_or(data.element_bytes);
            let elements = integer("elements")?.unwrap_or(data.size_bytes / element_bytes.max(1));
            let k = require_integer("k")?;
            let iters = require_integer("iters")?;
            let ratio = scalar("ratio")?.unwrap_or(1.0);
            if !(ratio > 0.0 && ratio <= 1.0) {
                return Err(Diagnostic::new(
                    format!("ratio must be in (0, 1], got {ratio}"),
                    a.pattern.span,
                ));
            }
            if k > elements {
                return Err(Diagnostic::new(
                    format!("k = {k} exceeds the element count {elements}"),
                    a.pattern.span,
                ));
            }
            PatternSpec::Random {
                elements,
                element_bytes,
                k,
                iters,
                ratio,
            }
        }
        "template" | "t" => {
            check_known(&["element", "refs", "starts", "step", "ends", "repeat"])?;
            let element_bytes = integer("element")?.unwrap_or(data.element_bytes);
            let repeat = integer("repeat")?.unwrap_or(1);
            let refs = resolve_template_refs(a, data, env)?;
            let num_elements = data.size_bytes / element_bytes.max(1);
            if let Some(&bad) = refs.iter().find(|&&r| r >= num_elements) {
                return Err(Diagnostic::new(
                    format!(
                        "template references element {bad}, but `{}` has only {num_elements} \
                         elements of {element_bytes} bytes",
                        data.name
                    ),
                    a.pattern.span,
                ));
            }
            PatternSpec::Template {
                element_bytes,
                refs,
                repeat,
            }
        }
        "reuse" | "d" => {
            check_known(&["interfering", "reuses", "scenario"])?;
            // Default interference: every *other* declared structure.
            let interfering_bytes = match integer("interfering")? {
                Some(v) => v,
                None => datas
                    .iter()
                    .filter(|d| d.name != data.name)
                    .map(|d| d.size_bytes)
                    .sum(),
            };
            let reuses = require_integer("reuses")?;
            let scenario = match find_field(args, "scenario") {
                None => ReuseScenario::Exclusive,
                Some(f) => match &f.value.node {
                    Expr::Ident(s) if s == "exclusive" => ReuseScenario::Exclusive,
                    Expr::Ident(s) if s == "concurrent" => ReuseScenario::Concurrent,
                    _ => {
                        return Err(Diagnostic::new(
                            "scenario must be `exclusive` or `concurrent`",
                            f.value.span,
                        ))
                    }
                },
            };
            PatternSpec::Reuse {
                interfering_bytes,
                reuses,
                scenario,
            }
        }
        other => {
            return Err(Diagnostic::new(
                format!(
                    "unknown access pattern `{other}` (expected `streaming`/`s`, `random`/`r`, \
                     `template`/`t` or `reuse`/`d`)"
                ),
                a.pattern.span,
            ))
        }
    };

    Ok(AccessSpec {
        data: data.name.clone(),
        pattern,
    })
}

/// Expand template arguments into the element-reference sequence: either an
/// explicit `refs = (…)` list, or the paper's Matlab-style range
/// `starts : step : ends` (Fig. 2 / MG example), where each start element
/// advances by `step` until its corresponding end element is reached.
fn resolve_template_refs(
    a: &AccessDef,
    data: &DataSpec,
    env: &Env,
) -> Result<Vec<u64>, Diagnostic> {
    let args = &a.args;
    if let Some(f) = find_field(args, "refs") {
        let items = tuple_or_single(&f.value);
        let mut refs = Vec::with_capacity(items.len());
        for item in &items {
            refs.push(eval_element_ref(item, data, env)?);
        }
        if refs.is_empty() {
            return Err(Diagnostic::new("template `refs` is empty", f.value.span));
        }
        if find_field(args, "starts").is_some() || find_field(args, "ends").is_some() {
            return Err(Diagnostic::new(
                "give either `refs` or `starts`/`ends`, not both",
                f.name.span,
            ));
        }
        return Ok(refs);
    }

    let starts_f = find_field(args, "starts").ok_or_else(|| {
        Diagnostic::new(
            "template requires either `refs = (…)` or `starts`/`step`/`ends`",
            a.pattern.span,
        )
    })?;
    let ends_f = find_field(args, "ends").ok_or_else(|| {
        Diagnostic::new(
            "template with `starts` also requires `ends`",
            a.pattern.span,
        )
    })?;
    let step = match find_field(args, "step") {
        Some(f) => {
            let s = eval_u64(&f.value, env)?;
            if s == 0 {
                return Err(Diagnostic::new(
                    "template step must be nonzero",
                    f.value.span,
                ));
            }
            s
        }
        None => 1,
    };

    let start_items = tuple_or_single(&starts_f.value);
    let end_items = tuple_or_single(&ends_f.value);
    let (start_items, end_items) = (&start_items[..], &end_items[..]);
    if start_items.len() != end_items.len() {
        return Err(Diagnostic::new(
            format!(
                "`starts` has {} lanes but `ends` has {}",
                start_items.len(),
                end_items.len()
            ),
            ends_f.value.span,
        ));
    }
    let mut starts = Vec::with_capacity(start_items.len());
    let mut iterations: Option<u64> = None;
    for (s_expr, e_expr) in start_items.iter().zip(end_items) {
        let s = eval_element_ref(s_expr, data, env)?;
        let e = eval_element_ref(e_expr, data, env)?;
        if e < s {
            return Err(Diagnostic::new(
                format!("template lane runs backwards: start {s} > end {e}"),
                e_expr.span,
            ));
        }
        let iters = (e - s) / step;
        match iterations {
            None => iterations = Some(iters),
            Some(prev) if prev != iters => {
                return Err(Diagnostic::new(
                    format!(
                        "template lanes advance unevenly: {prev} vs {iters} steps \
                         (all lanes must cover the same number of steps)"
                    ),
                    e_expr.span,
                ))
            }
            Some(_) => {}
        }
        starts.push(s);
    }
    let iterations = iterations.unwrap_or(0);

    let span_guard: Span = a.pattern.span;
    let total = (iterations + 1)
        .checked_mul(starts.len() as u64)
        .filter(|&t| t <= 100_000_000)
        .ok_or_else(|| Diagnostic::new("template expansion exceeds 10^8 references", span_guard))?;

    let mut refs = Vec::with_capacity(total as usize);
    for t in 0..=iterations {
        for &s in &starts {
            refs.push(s + t * step);
        }
    }
    Ok(refs)
}

fn resolve_order(
    steps: &[OrderStep],
    datas: &[DataSpec],
) -> Result<Vec<OrderStepSpec>, Diagnostic> {
    let check = |name: &Spanned<String>| -> Result<String, Diagnostic> {
        if datas.iter().any(|d| d.name == name.node) {
            Ok(name.node.clone())
        } else {
            Err(Diagnostic::new(
                format!("order references unknown data structure `{}`", name.node),
                name.span,
            ))
        }
    };
    steps
        .iter()
        .map(|s| match s {
            OrderStep::Single(n) => Ok(OrderStepSpec::Single(check(n)?)),
            OrderStep::Group(g) => Ok(OrderStepSpec::Group(
                g.iter().map(&check).collect::<Result<_, _>>()?,
            )),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::base_env;
    use crate::parser::parse;

    fn resolve(src: &str) -> Result<AppSpec, Diagnostic> {
        let doc = parse(src)?;
        let env = base_env(&doc, &[])?;
        resolve_model_def(doc.model(None).expect("one model"), &env)
    }

    #[test]
    fn resolves_vm_model() {
        let app = resolve(
            r#"
            model vm {
              param n = 200
              data A { size = n * 8  element = 8 }
              data B { size = n * 8  element = 8 }
              kernel main {
                flops = 2 * n
                access A as streaming(stride = 4)
                access B as streaming()
              }
            }
            "#,
        )
        .unwrap();
        assert_eq!(app.name, "vm");
        assert_eq!(app.working_set_bytes(), 2 * 200 * 8);
        let k = &app.kernels[0];
        assert_eq!(k.flops, 400.0);
        match &k.accesses[0].access.pattern {
            PatternSpec::Streaming {
                element_bytes,
                count,
                stride_elements,
            } => {
                assert_eq!(*element_bytes, 8);
                assert_eq!(*count, 200);
                assert_eq!(*stride_elements, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults fill in: B streams contiguously.
        assert!(matches!(
            &k.accesses[1].access.pattern,
            PatternSpec::Streaming {
                stride_elements: 1,
                ..
            }
        ));
    }

    #[test]
    fn resolves_random_pattern_paper_tuple() {
        let app = resolve(
            r#"
            model nb {
              data T { size = 1000 * 32  element = 32 }
              kernel force {
                access T as random(k = 200, iters = 1000, ratio = 1.0)
              }
            }
            "#,
        )
        .unwrap();
        match &app.kernels[0].accesses[0].access.pattern {
            PatternSpec::Random {
                elements,
                element_bytes,
                k,
                iters,
                ratio,
            } => {
                assert_eq!(
                    (*elements, *element_bytes, *k, *iters),
                    (1000, 32, 200, 1000)
                );
                assert_eq!(*ratio, 1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn template_range_expansion_matches_paper_mg() {
        // 4 lanes advancing by 1. Use small dims for the test.
        let app = resolve(
            r#"
            model mg {
              param n1 = 4  param n2 = 4  param n3 = 4
              data R { size = n1*n2*n3*16  element = 16  dims = (n3, n2, n1) }
              kernel smooth {
                access R as template(
                  starts = (R(2,1,1), R(2,3,1), R(1,2,1), R(2,2,1)),
                  step = 1,
                  ends = (R(2,1,3), R(2,3,3), R(1,2,3), R(2,2,3))
                )
              }
            }
            "#,
        )
        .unwrap();
        match &app.kernels[0].accesses[0].access.pattern {
            PatternSpec::Template { refs, repeat, .. } => {
                // 3 iterations (k from 1 to 3) x 4 lanes.
                assert_eq!(refs.len(), 3 * 4);
                assert_eq!(*repeat, 1);
                // First tuple: R(2,1,1) = 2*16 + 1*4 + 1 = 37 with dims (4,4,4).
                assert_eq!(refs[0], 37);
                // Second iteration advances every lane by 1.
                assert_eq!(refs[4], 38);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn template_explicit_refs() {
        let app = resolve(
            r#"
            model ft {
              data X { size = 64 * 8  element = 8 }
              kernel fft {
                access X as template(refs = (0, 4, 2, 6, 1, 5, 3, 7), repeat = 3)
              }
            }
            "#,
        )
        .unwrap();
        match &app.kernels[0].accesses[0].access.pattern {
            PatternSpec::Template { refs, repeat, .. } => {
                assert_eq!(refs, &[0, 4, 2, 6, 1, 5, 3, 7]);
                assert_eq!(*repeat, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn template_out_of_bounds_rejected() {
        let err = resolve(
            r#"
            model m {
              data X { size = 8 * 8  element = 8 }
              kernel k { access X as template(refs = (0, 9)) }
            }
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("only 8 elements"), "{}", err.message);
    }

    #[test]
    fn template_uneven_lanes_rejected() {
        let err = resolve(
            r#"
            model m {
              data X { size = 100 * 8  element = 8 }
              kernel k {
                access X as template(starts = (0, 10), step = 1, ends = (5, 20))
              }
            }
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("unevenly"));
    }

    #[test]
    fn reuse_defaults_interference_to_other_structures() {
        let app = resolve(
            r#"
            model cg {
              data A { size = 1000  element = 8 }
              data p { size = 100  element = 8 }
              data r { size = 100  element = 8 }
              kernel iter {
                access p as reuse(reuses = 50)
              }
            }
            "#,
        )
        .unwrap();
        match &app.kernels[0].accesses[0].access.pattern {
            PatternSpec::Reuse {
                interfering_bytes,
                reuses,
                scenario,
            } => {
                assert_eq!(*interfering_bytes, 1100);
                assert_eq!(*reuses, 50);
                assert_eq!(*scenario, ReuseScenario::Exclusive);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reuse_concurrent_scenario() {
        let app = resolve(
            r#"
            model m {
              data p { size = 100  element = 8 }
              kernel k { access p as reuse(interfering = 4096, reuses = 2, scenario = concurrent) }
            }
            "#,
        )
        .unwrap();
        assert!(matches!(
            &app.kernels[0].accesses[0].access.pattern,
            PatternSpec::Reuse {
                scenario: ReuseScenario::Concurrent,
                ..
            }
        ));
    }

    #[test]
    fn order_resolves_and_validates() {
        let app = resolve(
            r#"
            model cg {
              data A { size = 100 element = 4 }
              data p { size = 100 element = 4 }
              kernel k {
                access A as streaming()
                order { p (A p) p }
              }
            }
            "#,
        )
        .unwrap();
        let order = app.kernels[0].order.as_ref().unwrap();
        assert_eq!(order.len(), 3);
        assert!(matches!(&order[1], OrderStepSpec::Group(g) if g.len() == 2));

        let err = resolve(
            r#"
            model m {
              data A { size = 100 element = 4 }
              kernel k { order { zz } }
            }
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("unknown data structure `zz`"));
    }

    #[test]
    fn unknown_data_in_access_rejected() {
        let err = resolve(
            "model m { data A { size = 8 element = 8 } kernel k { access Q as streaming() } }",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown data structure `Q`"));
    }

    #[test]
    fn unknown_pattern_rejected() {
        let err = resolve(
            "model m { data A { size = 8 element = 8 } kernel k { access A as zigzag() } }",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown access pattern"));
    }

    #[test]
    fn unknown_argument_rejected() {
        let err = resolve(
            "model m { data A { size = 8 element = 8 } kernel k { access A as streaming(colour = 1) } }",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown argument `colour`"));
    }

    #[test]
    fn dims_product_must_match_elements() {
        let err =
            resolve("model m { data A { size = 64 element = 8 dims = (2, 5) } }").unwrap_err();
        assert!(err.message.contains("dims product"));
    }

    #[test]
    fn duplicate_data_rejected() {
        let err =
            resolve("model m { data A { size = 8 element = 8 } data A { size = 8 element = 8 } }")
                .unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn pattern_codes() {
        let s = PatternSpec::Streaming {
            element_bytes: 8,
            count: 1,
            stride_elements: 1,
        };
        assert_eq!(s.code(), 's');
    }

    #[test]
    fn iterate_multiplies_accesses() {
        let app = resolve(
            r#"
            model m {
              param n = 10
              data A { size = 800 element = 8 }
              kernel k {
                iterate n {
                  access A as streaming()
                  iterate 3 { access A as streaming(stride = 2) }
                }
              }
            }
            "#,
        )
        .unwrap();
        let k = &app.kernels[0];
        assert_eq!(k.accesses.len(), 2);
        assert_eq!(k.accesses[0].times, 10);
        assert_eq!(k.accesses[1].times, 30);
        assert!(k.is_root);
    }

    #[test]
    fn call_expands_callee_into_caller() {
        let app = resolve(
            r#"
            model m {
              data A { size = 800 element = 8 }
              kernel smooth {
                flops = 100
                access A as streaming()
              }
              kernel vcycle {
                flops = 5
                iterate 4 { call smooth }
              }
            }
            "#,
        )
        .unwrap();
        let smooth = app.kernels.iter().find(|k| k.name == "smooth").unwrap();
        let vcycle = app.kernels.iter().find(|k| k.name == "vcycle").unwrap();
        assert!(!smooth.is_root, "smooth is called, not an entry point");
        assert!(vcycle.is_root);
        // vcycle inherits smooth's access 4x and its flops.
        assert_eq!(vcycle.accesses.len(), 1);
        assert_eq!(vcycle.accesses[0].times, 4);
        assert_eq!(vcycle.flops, 5.0 + 4.0 * 100.0);
    }

    #[test]
    fn callee_iters_multiply_through_call() {
        let app = resolve(
            r#"
            model m {
              data A { size = 800 element = 8 }
              kernel inner { iters = 5  flops = 2  access A as streaming() }
              kernel outer { call inner }
            }
            "#,
        )
        .unwrap();
        let outer = app.kernels.iter().find(|k| k.name == "outer").unwrap();
        assert_eq!(outer.accesses[0].times, 5);
        assert_eq!(outer.flops, 10.0);
    }

    #[test]
    fn call_cycle_is_rejected() {
        let err = resolve(
            r#"
            model m {
              data A { size = 8 element = 8 }
              kernel a { call b }
              kernel b { call a }
            }
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("cycle"), "{}", err.message);
    }

    #[test]
    fn call_to_unknown_kernel_rejected() {
        let err = resolve("model m { data A { size = 8 element = 8 } kernel k { call ghost } }")
            .unwrap_err();
        assert!(err.message.contains("unknown kernel `ghost`"));
    }

    #[test]
    fn zero_trip_iterate_drops_body() {
        let app = resolve(
            r#"
            model m {
              data A { size = 800 element = 8 }
              kernel k { iterate 0 { access A as streaming() } }
            }
            "#,
        )
        .unwrap();
        assert!(app.kernels[0].accesses.is_empty());
    }

    #[test]
    fn short_pattern_names_work() {
        let app = resolve(
            r#"
            model m {
              data A { size = 80 element = 8 }
              kernel k {
                access A as s(stride = 2)
              }
            }
            "#,
        )
        .unwrap();
        assert!(matches!(
            &app.kernels[0].accesses[0].access.pattern,
            PatternSpec::Streaming { .. }
        ));
    }

    #[test]
    fn kernel_iters_and_time() {
        let app = resolve(
            r#"
            model m {
              data A { size = 80 element = 8 }
              kernel k { iters = 25  time = 0.5  flops = 100 }
            }
            "#,
        )
        .unwrap();
        let k = &app.kernels[0];
        assert_eq!(k.iters, 25);
        assert_eq!(k.time_s, Some(0.5));
        assert_eq!(k.flops, 100.0);
        assert_eq!(k.traffic_bytes, None);
    }

    #[test]
    fn kernel_loads_and_stores_sum_into_traffic() {
        let app = resolve(
            r#"
            model m {
              param n = 100
              data A { size = 800 element = 8 }
              kernel k { loads = 16 * n  stores = 8 * n }
            }
            "#,
        )
        .unwrap();
        assert_eq!(app.kernels[0].traffic_bytes, Some(2400.0));

        let app = resolve(
            r#"
            model m {
              data A { size = 800 element = 8 }
              kernel k { loads = 640 }
            }
            "#,
        )
        .unwrap();
        assert_eq!(app.kernels[0].traffic_bytes, Some(640.0));
    }
}
