//! Recursive-descent parser.

use crate::ast::*;
use crate::diag::Diagnostic;
use crate::lexer::lex;
use crate::span::{Span, Spanned};
use crate::token::Token;

/// Parse a complete source file.
///
/// Diagnostics come back categorized: lexer errors carry code `lex`,
/// everything else from this front-end `parse`.
pub fn parse(source: &str) -> Result<Document, Diagnostic> {
    let tokens = lex(source).map_err(|d| d.with_code("lex"))?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    p.document().map_err(|d| match d.code {
        Some(_) => d,
        None => d.with_code("parse"),
    })
}

/// Parse a standalone expression (used by tests and by parameter override
/// strings on the command line).
pub fn parse_expr(source: &str) -> Result<Spanned<Expr>, Diagnostic> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Deepest combined expression / `iterate` nesting accepted. Aspen source
/// is untrusted input; without a bound, a few kilobytes of `(((((…` or
/// `-----…` drives the recursive-descent parser into a stack overflow —
/// an abort, not a reportable error. Real models nest single digits deep;
/// the bound is sized so that even the deepest production chain (one
/// parenthesized level costs ~8 debug-build frames) fits the 2 MiB stacks
/// the test harness gives its threads.
const MAX_NESTING_DEPTH: usize = 96;

struct Parser {
    tokens: Vec<Spanned<Token>>,
    pos: usize,
    /// Current recursion depth across the self-recursive productions.
    depth: usize,
}

impl Parser {
    /// Run one self-recursive production with the nesting bound enforced.
    fn descend<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, Diagnostic>,
    ) -> Result<T, Diagnostic> {
        if self.depth >= MAX_NESTING_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        let r = f(self);
        self.depth -= 1;
        r
    }

    fn peek(&self) -> &Spanned<Token> {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Spanned<Token> {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(msg, self.peek().span)
    }

    fn expect(&mut self, tok: &Token) -> Result<Span, Diagnostic> {
        if &self.peek().node == tok {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                tok.describe(),
                self.peek().node.describe()
            )))
        }
    }

    fn expect_eof(&self) -> Result<(), Diagnostic> {
        if self.peek().node == Token::Eof {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected end of input, found {}",
                self.peek().node.describe()
            )))
        }
    }

    fn ident(&mut self, what: &str) -> Result<Spanned<String>, Diagnostic> {
        match &self.peek().node {
            Token::Ident(s) => {
                let s = s.clone();
                let span = self.bump().span;
                Ok(Spanned::new(s, span))
            }
            other => Err(self.err(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<Span, Diagnostic> {
        if self.peek().node.is_ident(word) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!(
                "expected keyword `{word}`, found {}",
                self.peek().node.describe()
            )))
        }
    }

    // ---- items ----------------------------------------------------------

    fn document(&mut self) -> Result<Document, Diagnostic> {
        let mut items = Vec::new();
        loop {
            match &self.peek().node {
                Token::Eof => break,
                Token::Ident(w) if w == "param" => items.push(Item::Param(self.param()?)),
                Token::Ident(w) if w == "machine" => items.push(Item::Machine(self.machine()?)),
                Token::Ident(w) if w == "model" => items.push(Item::Model(self.model()?)),
                other => {
                    return Err(self.err(format!(
                        "expected `param`, `machine` or `model`, found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(Document { items })
    }

    fn param(&mut self) -> Result<ParamDef, Diagnostic> {
        self.expect_keyword("param")?;
        let name = self.ident("parameter name")?;
        self.expect(&Token::Eq)?;
        let value = self.expr()?;
        self.eat_semi();
        Ok(ParamDef { name, value })
    }

    fn eat_semi(&mut self) {
        while self.peek().node == Token::Semi {
            self.bump();
        }
    }

    fn machine(&mut self) -> Result<MachineDef, Diagnostic> {
        self.expect_keyword("machine")?;
        let name = self.ident("machine name")?;
        self.expect(&Token::LBrace)?;
        let mut params = Vec::new();
        let mut sections = Vec::new();
        loop {
            match &self.peek().node {
                Token::RBrace => {
                    self.bump();
                    break;
                }
                Token::Ident(w) if w == "param" => params.push(self.param()?),
                Token::Ident(w) if w == "cache" || w == "memory" || w == "core" => {
                    let kind = self.ident("section kind")?;
                    self.expect(&Token::LBrace)?;
                    let fields = self.fields_until_rbrace()?;
                    sections.push(SectionDef { kind, fields });
                }
                other => {
                    return Err(self.err(format!(
                        "expected `param`, `cache`, `memory`, `core` or `}}`, found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(MachineDef {
            name,
            params,
            sections,
        })
    }

    fn fields_until_rbrace(&mut self) -> Result<Vec<Field>, Diagnostic> {
        let mut fields = Vec::new();
        loop {
            match &self.peek().node {
                Token::RBrace => {
                    self.bump();
                    break;
                }
                Token::Ident(_) => {
                    let name = self.ident("field name")?;
                    self.expect(&Token::Eq)?;
                    let value = self.expr()?;
                    self.eat_semi();
                    fields.push(Field { name, value });
                }
                other => {
                    return Err(self.err(format!(
                        "expected a field or `}}`, found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(fields)
    }

    fn model(&mut self) -> Result<ModelDef, Diagnostic> {
        self.expect_keyword("model")?;
        let name = self.ident("model name")?;
        self.expect(&Token::LBrace)?;
        let mut params = Vec::new();
        let mut datas = Vec::new();
        let mut kernels = Vec::new();
        loop {
            match &self.peek().node {
                Token::RBrace => {
                    self.bump();
                    break;
                }
                Token::Ident(w) if w == "param" => params.push(self.param()?),
                Token::Ident(w) if w == "data" => {
                    self.bump();
                    let name = self.ident("data structure name")?;
                    self.expect(&Token::LBrace)?;
                    let fields = self.fields_until_rbrace()?;
                    datas.push(DataDef { name, fields });
                }
                Token::Ident(w) if w == "kernel" => kernels.push(self.kernel()?),
                other => {
                    return Err(self.err(format!(
                        "expected `param`, `data`, `kernel` or `}}`, found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(ModelDef {
            name,
            params,
            datas,
            kernels,
        })
    }

    fn kernel(&mut self) -> Result<KernelDef, Diagnostic> {
        self.expect_keyword("kernel")?;
        let name = self.ident("kernel name")?;
        self.expect(&Token::LBrace)?;
        let mut fields = Vec::new();
        let mut body = Vec::new();
        let mut order = None;
        loop {
            match &self.peek().node {
                Token::RBrace => {
                    self.bump();
                    break;
                }
                Token::Ident(w) if w == "access" || w == "iterate" || w == "call" => {
                    body.push(self.kernel_stmt()?);
                }
                Token::Ident(w) if w == "order" => {
                    let kw_span = self.bump().span;
                    if order.is_some() {
                        return Err(Diagnostic::new("duplicate `order` block", kw_span));
                    }
                    order = Some(self.order_steps()?);
                }
                Token::Ident(_) => {
                    let fname = self.ident("field name")?;
                    self.expect(&Token::Eq)?;
                    let value = self.expr()?;
                    self.eat_semi();
                    fields.push(Field { name: fname, value });
                }
                other => {
                    return Err(self.err(format!(
                        "expected `access`, `iterate`, `call`, `order`, a field or `}}`, \
                         found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(KernelDef {
            name,
            fields,
            body,
            order,
        })
    }

    /// One body statement: `access …`, `iterate n { … }` or `call name`.
    fn kernel_stmt(&mut self) -> Result<KernelStmt, Diagnostic> {
        match &self.peek().node {
            Token::Ident(w) if w == "access" => Ok(KernelStmt::Access(self.access()?)),
            Token::Ident(w) if w == "call" => {
                self.bump();
                let name = self.ident("kernel name")?;
                self.eat_semi();
                Ok(KernelStmt::Call { name })
            }
            Token::Ident(w) if w == "iterate" => {
                self.bump();
                let count = self.expr()?;
                self.expect(&Token::LBrace)?;
                let mut body = Vec::new();
                loop {
                    match &self.peek().node {
                        Token::RBrace => {
                            self.bump();
                            break;
                        }
                        Token::Ident(w) if w == "access" || w == "iterate" || w == "call" => {
                            let stmt = self.descend(|p| p.kernel_stmt())?;
                            body.push(stmt);
                        }
                        other => {
                            return Err(self.err(format!(
                                "expected `access`, `iterate`, `call` or `}}` inside \
                                 iterate, found {}",
                                other.describe()
                            )))
                        }
                    }
                }
                Ok(KernelStmt::Iterate { count, body })
            }
            other => Err(self.err(format!(
                "expected a kernel statement, found {}",
                other.describe()
            ))),
        }
    }

    fn access(&mut self) -> Result<AccessDef, Diagnostic> {
        self.expect_keyword("access")?;
        let data = self.ident("data structure name")?;
        self.expect_keyword("as")?;
        let pattern = self.ident("pattern kind")?;
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if self.peek().node != Token::RParen {
            loop {
                let name = self.ident("argument name")?;
                self.expect(&Token::Eq)?;
                let value = self.expr()?;
                args.push(Field { name, value });
                if self.peek().node == Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        self.eat_semi();
        Ok(AccessDef {
            data,
            pattern,
            args,
        })
    }

    fn order_steps(&mut self) -> Result<Vec<OrderStep>, Diagnostic> {
        self.expect(&Token::LBrace)?;
        let mut steps = Vec::new();
        loop {
            match &self.peek().node {
                Token::RBrace => {
                    self.bump();
                    break;
                }
                Token::Ident(_) => {
                    steps.push(OrderStep::Single(self.ident("data structure name")?));
                }
                Token::LParen => {
                    self.bump();
                    let mut group = Vec::new();
                    while matches!(self.peek().node, Token::Ident(_)) {
                        group.push(self.ident("data structure name")?);
                        if self.peek().node == Token::Comma {
                            self.bump();
                        }
                    }
                    self.expect(&Token::RParen)?;
                    if group.is_empty() {
                        return Err(self.err("empty concurrent group in order"));
                    }
                    steps.push(OrderStep::Group(group));
                }
                other => {
                    return Err(self.err(format!(
                        "expected a data structure name, `(` or `}}`, found {}",
                        other.describe()
                    )))
                }
            }
            if self.peek().node == Token::Comma {
                self.bump();
            }
        }
        Ok(steps)
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Spanned<Expr>, Diagnostic> {
        self.descend(|p| p.additive())
    }

    fn additive(&mut self) -> Result<Spanned<Expr>, Diagnostic> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek().node {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            let span = lhs.span.to(rhs.span);
            lhs = Spanned::new(
                Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Spanned<Expr>, Diagnostic> {
        let mut lhs = self.power()?;
        loop {
            let op = match self.peek().node {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.power()?;
            let span = lhs.span.to(rhs.span);
            lhs = Spanned::new(
                Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn power(&mut self) -> Result<Spanned<Expr>, Diagnostic> {
        let base = self.unary()?;
        if self.peek().node == Token::Caret {
            self.bump();
            // Right associative.
            let exp = self.descend(|p| p.power())?;
            let span = base.span.to(exp.span);
            return Ok(Spanned::new(
                Expr::Binary {
                    op: BinOp::Pow,
                    lhs: Box::new(base),
                    rhs: Box::new(exp),
                },
                span,
            ));
        }
        Ok(base)
    }

    fn unary(&mut self) -> Result<Spanned<Expr>, Diagnostic> {
        if self.peek().node == Token::Minus {
            let start = self.bump().span;
            let operand = self.descend(|p| p.unary())?;
            let span = start.to(operand.span);
            return Ok(Spanned::new(Expr::Neg(Box::new(operand)), span));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Spanned<Expr>, Diagnostic> {
        match self.peek().node.clone() {
            Token::Number(n) => {
                let span = self.bump().span;
                Ok(Spanned::new(Expr::Number(n), span))
            }
            Token::Ident(name) => {
                let span = self.bump().span;
                if self.peek().node == Token::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek().node != Token::RParen {
                        loop {
                            args.push(self.expr()?);
                            if self.peek().node == Token::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    let end = self.expect(&Token::RParen)?;
                    Ok(Spanned::new(Expr::Call { name, args }, span.to(end)))
                } else {
                    Ok(Spanned::new(Expr::Ident(name), span))
                }
            }
            Token::LParen => {
                let start = self.bump().span;
                let first = self.expr()?;
                if self.peek().node == Token::Comma {
                    let mut items = vec![first];
                    while self.peek().node == Token::Comma {
                        self.bump();
                        if self.peek().node == Token::RParen {
                            break; // allow trailing comma
                        }
                        items.push(self.expr()?);
                    }
                    let end = self.expect(&Token::RParen)?;
                    Ok(Spanned::new(Expr::Tuple(items), start.to(end)))
                } else {
                    let end = self.expect(&Token::RParen)?;
                    Ok(Spanned::new(first.node, start.to(end)))
                }
            }
            other => Err(self.err(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_global_param() {
        let doc = parse("param n = 100").unwrap();
        assert_eq!(doc.items.len(), 1);
        let p = doc.params().next().unwrap();
        assert_eq!(p.name.node, "n");
    }

    #[test]
    fn parses_machine_with_sections() {
        let src = r#"
            machine small {
              param x = 1
              cache { associativity = 4  sets = 64  line = 32 }
              memory { fit = 5000 }
              core { flops = 1e9  bandwidth = 4e9 }
            }
        "#;
        let doc = parse(src).unwrap();
        let m = doc.machine(Some("small")).unwrap();
        assert_eq!(m.sections.len(), 3);
        assert_eq!(m.sections[0].kind.node, "cache");
        assert_eq!(m.sections[0].fields.len(), 3);
        assert_eq!(m.params.len(), 1);
    }

    #[test]
    fn parses_model_with_data_and_kernel() {
        let src = r#"
            model vm {
              param n = 200
              data A { size = n * 8  element = 8 }
              kernel main {
                flops = 2 * n
                access A as streaming(element = 8, count = n, stride = 4)
              }
            }
        "#;
        let doc = parse(src).unwrap();
        let m = doc.model(Some("vm")).unwrap();
        assert_eq!(m.datas.len(), 1);
        assert_eq!(m.kernels.len(), 1);
        let k = &m.kernels[0];
        assert_eq!(k.accesses().len(), 1);
        assert_eq!(k.accesses()[0].pattern.node, "streaming");
        assert_eq!(k.accesses()[0].args.len(), 3);
    }

    #[test]
    fn parses_order_with_groups() {
        let src = r#"
            model cg {
              data A { size = 1 element = 1 }
              kernel iter {
                order { r (A p) p (x p) (A p) r (r p) }
              }
            }
        "#;
        let doc = parse(src).unwrap();
        let k = &doc.model(None).unwrap().kernels[0];
        let order = k.order.as_ref().unwrap();
        assert_eq!(order.len(), 7);
        assert!(matches!(&order[0], OrderStep::Single(s) if s.node == "r"));
        assert!(matches!(&order[1], OrderStep::Group(g) if g.len() == 2));
    }

    #[test]
    fn parses_template_access_with_index_calls() {
        let src = r#"
            model mg {
              param n1 = 8  param n2 = 8  param n3 = 8
              data R { size = n1*n2*n3*16  element = 16  dims = (n3, n2, n1) }
              kernel smooth {
                access R as template(
                  element = 8,
                  starts = (R(2,1,1), R(2,3,1), R(1,2,1), R(2,2,1)),
                  step = 1,
                  ends = (R(n3-1,n2-2,n1), R(n3-1,n2,n1), R(n3-2,n2-1,n1), R(n3,n2-1,n1))
                )
              }
            }
        "#;
        let doc = parse(src).unwrap();
        let k = &doc.model(None).unwrap().kernels[0];
        let acc = k.accesses()[0];
        assert_eq!(acc.pattern.node, "template");
        let starts = acc.args.iter().find(|f| f.name.node == "starts").unwrap();
        match &starts.value.node {
            Expr::Tuple(items) => assert_eq!(items.len(), 4),
            other => panic!("expected tuple, got {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.node {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(rhs.node, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn power_is_right_associative_and_tight() {
        let e = parse_expr("2 * 3 ^ 2 ^ 2").unwrap();
        // = 2 * (3 ^ (2 ^ 2))
        match e.node {
            Expr::Binary {
                op: BinOp::Mul,
                rhs,
                ..
            } => match rhs.node {
                Expr::Binary {
                    op: BinOp::Pow,
                    rhs,
                    ..
                } => {
                    assert!(matches!(rhs.node, Expr::Binary { op: BinOp::Pow, .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_minus_binds_tighter_than_mul() {
        let e = parse_expr("-2 * 3").unwrap();
        assert!(matches!(e.node, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parenthesized_single_is_not_tuple() {
        let e = parse_expr("(1 + 2)").unwrap();
        assert!(matches!(e.node, Expr::Binary { .. }));
    }

    #[test]
    fn tuple_with_trailing_comma() {
        let e = parse_expr("(1, 2, 3,)").unwrap();
        match e.node {
            Expr::Tuple(items) => assert_eq!(items.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_messages_are_spanned() {
        let err = parse("model vm { data A }").unwrap_err();
        assert!(err.message.contains("expected"));
        let rendered = err.render("model vm { data A }");
        assert!(rendered.contains("line 1"));
    }

    #[test]
    fn rejects_duplicate_order() {
        let src = "model m { kernel k { order { a } order { b } } }";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn rejects_empty_group() {
        let src = "model m { kernel k { order { ( ) } } }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn keywords_are_contextual() {
        // `model` used as a parameter name inside a machine.
        let src = "machine m { param model = 3 }";
        let doc = parse(src).unwrap();
        assert_eq!(doc.machine(None).unwrap().params[0].name.node, "model");
    }

    #[test]
    fn ambiguous_default_lookup_returns_none() {
        let doc = parse("model a {} model b {}").unwrap();
        assert!(doc.model(None).is_none());
        assert!(doc.model(Some("a")).is_some());
    }
}
