//! Canonical pretty-printer: AST → source text.
//!
//! Useful for normalizing models, producing test fixtures, and verifying
//! the parser via round-trips (`parse(pretty(parse(src))) == parse(src)`).

use crate::ast::*;
use crate::span::Spanned;
use std::fmt::Write;

/// Render a document in canonical form.
pub fn pretty(doc: &Document) -> String {
    let mut out = String::new();
    for (i, item) in doc.items.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        match item {
            Item::Param(p) => {
                let _ = writeln!(out, "param {} = {}", p.name.node, pretty_expr(&p.value));
            }
            Item::Machine(m) => pretty_machine(&mut out, m),
            Item::Model(m) => pretty_model(&mut out, m),
        }
    }
    out
}

fn pretty_machine(out: &mut String, m: &MachineDef) {
    let _ = writeln!(out, "machine {} {{", m.name.node);
    for p in &m.params {
        let _ = writeln!(out, "  param {} = {}", p.name.node, pretty_expr(&p.value));
    }
    for s in &m.sections {
        let _ = writeln!(out, "  {} {{", s.kind.node);
        for f in &s.fields {
            let _ = writeln!(out, "    {} = {}", f.name.node, pretty_expr(&f.value));
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
}

fn pretty_model(out: &mut String, m: &ModelDef) {
    let _ = writeln!(out, "model {} {{", m.name.node);
    for p in &m.params {
        let _ = writeln!(out, "  param {} = {}", p.name.node, pretty_expr(&p.value));
    }
    for d in &m.datas {
        let _ = writeln!(out, "  data {} {{", d.name.node);
        for f in &d.fields {
            let _ = writeln!(out, "    {} = {}", f.name.node, pretty_expr(&f.value));
        }
        let _ = writeln!(out, "  }}");
    }
    for k in &m.kernels {
        let _ = writeln!(out, "  kernel {} {{", k.name.node);
        for f in &k.fields {
            let _ = writeln!(out, "    {} = {}", f.name.node, pretty_expr(&f.value));
        }
        for stmt in &k.body {
            pretty_stmt(out, stmt, 2);
        }
        if let Some(order) = &k.order {
            let steps: Vec<String> = order
                .iter()
                .map(|s| match s {
                    OrderStep::Single(n) => n.node.clone(),
                    OrderStep::Group(g) => format!(
                        "({})",
                        g.iter()
                            .map(|n| n.node.as_str())
                            .collect::<Vec<_>>()
                            .join(" ")
                    ),
                })
                .collect();
            let _ = writeln!(out, "    order {{ {} }}", steps.join(" "));
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
}

fn pretty_stmt(out: &mut String, stmt: &KernelStmt, depth: usize) {
    let pad = "  ".repeat(depth);
    match stmt {
        KernelStmt::Access(a) => {
            let args: Vec<String> = a
                .args
                .iter()
                .map(|f| format!("{} = {}", f.name.node, pretty_expr(&f.value)))
                .collect();
            let _ = writeln!(
                out,
                "{pad}access {} as {}({})",
                a.data.node,
                a.pattern.node,
                args.join(", ")
            );
        }
        KernelStmt::Call { name } => {
            let _ = writeln!(out, "{pad}call {}", name.node);
        }
        KernelStmt::Iterate { count, body } => {
            let _ = writeln!(out, "{pad}iterate {} {{", pretty_expr(count));
            for s in body {
                pretty_stmt(out, s, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

/// Render an expression with minimal but unambiguous parenthesization
/// (children of tighter-binding parents get parens when needed; we simply
/// parenthesize every binary child, which is always safe and canonical).
pub fn pretty_expr(e: &Spanned<Expr>) -> String {
    match &e.node {
        Expr::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Expr::Ident(s) => s.clone(),
        Expr::Neg(inner) => format!("-{}", pretty_atom(inner)),
        Expr::Binary { op, lhs, rhs } => {
            format!("{} {} {}", pretty_atom(lhs), op.symbol(), pretty_atom(rhs))
        }
        Expr::Call { name, args } => {
            let args: Vec<String> = args.iter().map(pretty_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Tuple(items) => {
            let items: Vec<String> = items.iter().map(pretty_expr).collect();
            format!("({})", items.join(", "))
        }
    }
}

fn pretty_atom(e: &Spanned<Expr>) -> String {
    match &e.node {
        Expr::Binary { .. } => format!("({})", pretty_expr(e)),
        _ => pretty_expr(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    #[test]
    fn roundtrip_model() {
        let src = r#"
            param g = 2
            machine m {
              cache { associativity = 4  sets = 64  line = 32 }
              memory { fit = 5000 }
            }
            model vm {
              param n = 100
              data A { size = n * 8  element = 8 }
              kernel main {
                flops = 2 * n
                access A as streaming(stride = 4)
                order { A (A A) }
              }
            }
        "#;
        let doc = parse(src).unwrap();
        let printed = pretty(&doc);
        let doc2 = parse(&printed).unwrap();
        // Compare shapes, not spans: pretty-print both again.
        assert_eq!(pretty(&doc2), printed);
        assert_eq!(doc2.items.len(), doc.items.len());
    }

    #[test]
    fn roundtrip_control_flow() {
        let src = r#"
            model m {
              data A { size = 800 element = 8 }
              kernel smooth { access A as streaming() }
              kernel vcycle {
                flops = 5
                iterate 4 {
                  call smooth
                  iterate 2 { access A as streaming(stride = 2) }
                }
              }
            }
        "#;
        let doc = parse(src).unwrap();
        let printed = pretty(&doc);
        assert!(printed.contains("iterate 4 {"));
        assert!(printed.contains("call smooth"));
        let doc2 = parse(&printed).unwrap();
        assert_eq!(pretty(&doc2), printed);
    }

    #[test]
    fn expr_rendering() {
        let cases = [
            ("1+2*3", "1 + (2 * 3)"),
            ("-n", "-n"),
            ("ceil(n / 2)", "ceil(n / 2)"),
            ("(1, 2)", "(1, 2)"),
            ("2 ^ 8", "2 ^ 8"),
        ];
        for (src, expected) in cases {
            assert_eq!(pretty_expr(&parse_expr(src).unwrap()), expected);
        }
    }

    #[test]
    fn expr_roundtrip_preserves_value() {
        use crate::expr::{eval, Env};
        let env = Env::with_builtins();
        for src in [
            "1 + 2 * 3 - 4 / 8",
            "-(3 + 4) * 2",
            "2 ^ 3 ^ 2",
            "min(3, max(1, 2))",
        ] {
            let e1 = parse_expr(src).unwrap();
            let printed = pretty_expr(&e1);
            let e2 = parse_expr(&printed).unwrap();
            assert_eq!(
                eval(&e1, &env).unwrap(),
                eval(&e2, &env).unwrap(),
                "{src} -> {printed}"
            );
        }
    }
}
