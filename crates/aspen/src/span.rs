//! Source positions for diagnostics.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// First byte of the spanned region.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Construct a span.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// The smallest span covering both.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Slice the source text this span covers.
    ///
    /// Spans are byte ranges produced by the byte-oriented lexer, so on
    /// non-ASCII source an endpoint can land inside a multi-byte UTF-8
    /// sequence; endpoints are clamped to the source length and snapped
    /// down to character boundaries rather than panicking.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        let floor = |mut i: usize| {
            i = i.min(source.len());
            while !source.is_char_boundary(i) {
                i -= 1;
            }
            i
        };
        &source[floor(self.start)..floor(self.end.max(self.start))]
    }

    /// 1-based `(line, column)` of the span start.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, c) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A value with its source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Spanned<T> {
    /// The value.
    pub node: T,
    /// Where it came from.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Attach a span.
    pub fn new(node: T, span: Span) -> Self {
        Self { node, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(6, 7).line_col(src), (3, 1));
    }

    #[test]
    fn join_spans() {
        let a = Span::new(3, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(3, 9));
        assert_eq!(b.to(a), Span::new(3, 9));
    }

    #[test]
    fn text_slices() {
        let src = "hello world";
        assert_eq!(Span::new(6, 11).text(src), "world");
        // Out-of-range spans clamp instead of panicking.
        assert_eq!(Span::new(6, 99).text(src), "world");
    }

    #[test]
    fn text_snaps_to_char_boundaries() {
        // "a" (1 byte), "é" (bytes 1..3), "漢" (bytes 3..6).
        let src = "aé漢";
        // Endpoints inside a multi-byte character snap down, never panic.
        assert_eq!(Span::new(1, 2).text(src), "");
        assert_eq!(Span::new(1, 3).text(src), "é");
        assert_eq!(Span::new(4, 99).text(src), "漢");
        assert_eq!(Span::new(0, 4).text(src), "aé");
        // Inverted spans degrade to empty rather than slicing backwards.
        assert_eq!(Span::new(5, 2).text(src), "");
    }
}
