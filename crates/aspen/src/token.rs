//! Token kinds of the resilience-extended Aspen language.

use std::fmt;

/// Lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (`machine`, `model`, `A`, `streaming`, …).
    /// Keywords are contextual: the parser decides, the lexer does not.
    Ident(String),
    /// Numeric literal, always carried as `f64` (integers are exact up to
    /// 2^53, far beyond any model parameter).
    Number(f64),
    /// String literal (used for documentation fields).
    Str(String),

    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^`
    Caret,

    /// End of input.
    Eof,
}

impl Token {
    /// Short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier `{s}`"),
            Token::Number(n) => format!("number `{n}`"),
            Token::Str(s) => format!("string {s:?}"),
            Token::LBrace => "`{`".into(),
            Token::RBrace => "`}`".into(),
            Token::LParen => "`(`".into(),
            Token::RParen => "`)`".into(),
            Token::Eq => "`=`".into(),
            Token::Comma => "`,`".into(),
            Token::Colon => "`:`".into(),
            Token::Semi => "`;`".into(),
            Token::Plus => "`+`".into(),
            Token::Minus => "`-`".into(),
            Token::Star => "`*`".into(),
            Token::Slash => "`/`".into(),
            Token::Percent => "`%`".into(),
            Token::Caret => "`^`".into(),
            Token::Eof => "end of input".into(),
        }
    }

    /// Whether this token is a specific identifier (contextual keyword).
    pub fn is_ident(&self, word: &str) -> bool {
        matches!(self, Token::Ident(s) if s == word)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}
