//! Byte-level fuzzing of the Aspen front-end.
//!
//! The lexer/parser consume untrusted model source. These properties
//! drive byte-mutation corpora (flips, inserts, deletes, truncations,
//! splices of known-good sources) and raw byte soup through the full
//! `parse` + `Diagnostic::render` path: arbitrary input may *error* but
//! must never panic, overflow the stack, or hang.

use dvf_aspen::{parse, parse_expr};
use proptest::prelude::*;

/// Known-good sources covering every grammar production: machine
/// sections, model data/kernel/params, order groups, template accesses
/// with index calls, and nested `iterate` bodies.
const CORPUS: &[&str] = &[
    r#"
machine small {
  param x = 1
  cache { associativity = 4  sets = 64  line = 32 }
  memory { fit = 5000 }
  core { flops = 1e9  bandwidth = 4e9 }
}
"#,
    r#"
model vm {
  param n = 200
  data A { size = n * 8  element = 8 }
  kernel main {
    flops = 2 * n
    access A as streaming(element = 8, count = n, stride = 4)
  }
}
"#,
    r#"
model cg {
  data A { size = 1 element = 1 }
  kernel iter {
    order { r (A p) p (x p) (A p) r (r p) }
  }
}
"#,
    r#"
model mg {
  param n1 = 8  param n2 = 8
  data R { size = n1*n2*16  element = 16  dims = (n2, n1) }
  kernel smooth {
    access R as template(
      element = 8,
      starts = (R(2,1), R(1,2)),
      step = 1,
      ends = (R(n1-1,n2-2), R(n1,n2-1))
    )
  }
}
"#,
    r#"
model loops {
  param n = 4
  data A { size = n * 8  element = 8 }
  kernel main {
    iterate n {
      iterate n - 1 {
        access A as random(element = 8, count = n, k = 2, iterations = n^2)
      }
      call main
    }
  }
}
"#,
];

/// Apply a mutation script to `base` and re-validate as (lossy) UTF-8,
/// so multi-byte sequences get corrupted into replacement characters —
/// exactly the hostile shapes a byte-oriented lexer mishandles.
fn mutate(base: &[u8], ops: &[(u8, u16, u8)]) -> String {
    let mut bytes = base.to_vec();
    for &(kind, pos, byte) in ops {
        if bytes.is_empty() {
            bytes.push(byte);
            continue;
        }
        let i = pos as usize % bytes.len();
        match kind {
            0 => bytes[i] = byte,
            1 => bytes.insert(i, byte),
            2 => {
                bytes.remove(i);
            }
            3 => bytes.truncate(i),
            _ => {
                // Duplicate a short slice in place (structure-aware-ish:
                // repeats delimiters, keywords, operators).
                let j = (i + 1 + byte as usize % 16).min(bytes.len());
                let slice: Vec<u8> = bytes[i..j].to_vec();
                for (k, b) in slice.into_iter().enumerate() {
                    bytes.insert(i + k, b);
                }
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Parse and, on error, render the diagnostic against the same source —
/// rendering slices the source with the error span, which is where the
/// byte-offset/char-boundary bugs live.
fn parse_and_render(src: &str) {
    match parse(src) {
        Ok(_) => {}
        Err(d) => {
            let _ = d.render(src);
        }
    }
}

proptest! {
    /// Mutated corpus: near-valid input with localized damage.
    #[test]
    fn parser_never_panics_on_mutated_corpus(
        base in prop::sample::select(CORPUS.to_vec()),
        ops in prop::collection::vec((0u8..5, 0u16..2048, 0u8..=255u8), 1..24),
    ) {
        let src = mutate(base.as_bytes(), &ops);
        parse_and_render(&src);
    }

    /// Raw byte soup, including invalid UTF-8 turned into replacement
    /// characters and interior NULs.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255u8, 0..512),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        parse_and_render(&src);
    }

    /// Splices of two corpus entries at arbitrary byte offsets.
    #[test]
    fn parser_never_panics_on_corpus_splices(
        a in prop::sample::select(CORPUS.to_vec()),
        b in prop::sample::select(CORPUS.to_vec()),
        cut_a in 0u16..2048,
        cut_b in 0u16..2048,
    ) {
        let abytes = a.as_bytes();
        let bbytes = b.as_bytes();
        let i = cut_a as usize % (abytes.len() + 1);
        let j = cut_b as usize % (bbytes.len() + 1);
        let mut spliced = abytes[..i].to_vec();
        spliced.extend_from_slice(&bbytes[j..]);
        let src = String::from_utf8_lossy(&spliced).into_owned();
        parse_and_render(&src);
    }
}

#[test]
fn multibyte_error_spans_render_without_panicking() {
    // The lexer flags the first byte of a multi-byte character with a
    // one-byte span; rendering used to slice the source mid-character.
    for src in ["é", "model é {}", "漢字", "a = \u{00A0}1", "\u{1F980}"] {
        let err = parse(src).unwrap_err();
        let _ = err.render(src);
    }
}

#[test]
fn deep_nesting_errors_instead_of_overflowing() {
    // 100k-deep recursion would abort with a stack overflow if the
    // parser had no depth bound; it must surface a diagnostic instead.
    let deep_parens = format!("{}1{}", "(".repeat(100_000), ")".repeat(100_000));
    let err = parse_expr(&deep_parens).unwrap_err();
    assert!(err.message.contains("nesting too deep"), "{}", err.message);

    let deep_minus = format!("{}1", "-".repeat(100_000));
    let err = parse_expr(&deep_minus).unwrap_err();
    assert!(err.message.contains("nesting too deep"), "{}", err.message);

    let deep_pow = format!("1{}", "^2".repeat(100_000));
    let err = parse_expr(&deep_pow).unwrap_err();
    assert!(err.message.contains("nesting too deep"), "{}", err.message);

    let mut deep_iterate = String::from("model m { data A { size = 1 element = 1 } kernel k {");
    deep_iterate.push_str(&"iterate 1 {".repeat(100_000));
    deep_iterate.push_str("access A as streaming(element = 1, count = 1, stride = 1)");
    deep_iterate.push_str(&"}".repeat(100_000));
    deep_iterate.push_str("}}");
    let err = parse(&deep_iterate).unwrap_err();
    assert!(err.message.contains("nesting too deep"), "{}", err.message);
}

#[test]
fn shallow_nesting_still_parses() {
    // The depth bound must not reject realistic expressions.
    let nested = format!("{}1{}", "(".repeat(48), ")".repeat(48));
    assert!(parse_expr(&nested).is_ok());
    assert!(parse_expr("-(-(-(1)))").is_ok());
    assert!(parse_expr("2^2^2^2^2").is_ok());
}
