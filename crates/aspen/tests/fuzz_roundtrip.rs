//! Property tests for the Aspen front-end: the lexer/parser never panic
//! on arbitrary input, and pretty-printing round-trips generated models.

use dvf_aspen::{parse, pretty, Resolver};
use proptest::prelude::*;

/// Generator for a well-formed model source built from random pieces.
fn arb_model_source() -> impl Strategy<Value = String> {
    let ident = "[a-z][a-z0-9_]{0,6}";
    (
        ident,
        prop::collection::vec(("[a-z][a-z0-9]{0,4}", 1u64..10_000), 1..5),
        1u64..64,
        1u64..1000,
        1u64..8,
    )
        .prop_map(|(model, params, elem, count, stride)| {
            let mut src = String::new();
            src.push_str(&format!("model {model} {{\n"));
            for (i, (name, value)) in params.iter().enumerate() {
                // Avoid duplicate param names by suffixing the index.
                src.push_str(&format!("  param {name}_{i} = {value}\n"));
            }
            src.push_str(&format!(
                "  data D0 {{ size = {} element = {elem} }}\n",
                elem * count
            ));
            src.push_str("  kernel main {\n");
            src.push_str(&format!(
                "    access D0 as streaming(element = {elem}, count = {count}, stride = {stride})\n"
            ));
            src.push_str("  }\n}\n");
            src
        })
}

proptest! {
    /// The lexer+parser must reject or accept arbitrary input without
    /// panicking.
    #[test]
    fn parser_never_panics(input in "\\PC{0,400}") {
        let _ = parse(&input);
    }

    /// Same for inputs built from the language's own token vocabulary,
    /// which reach much deeper into the parser.
    #[test]
    fn parser_never_panics_on_tokeny_input(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "model", "machine", "param", "data", "kernel", "access",
                "order", "as", "streaming", "{", "}", "(", ")", "=", ",",
                "+", "-", "*", "/", "^", "n", "x", "1", "2.5", "1e9",
            ]),
            0..60,
        )
    ) {
        let input = words.join(" ");
        let _ = parse(&input);
    }

    /// Generated models parse, resolve, pretty-print, and re-parse to an
    /// equivalent document.
    #[test]
    fn generated_models_roundtrip(src in arb_model_source()) {
        let doc = parse(&src).expect("generated source parses");
        let app1 = Resolver::new(&doc).model(None).expect("resolves");

        let printed = pretty(&doc);
        let doc2 = parse(&printed).expect("pretty output parses");
        let app2 = Resolver::new(&doc2).model(None).expect("re-resolves");

        prop_assert_eq!(app1, app2);
    }

    /// Parameter overrides apply identically before and after a
    /// round-trip.
    #[test]
    fn overrides_survive_roundtrip(count in 1u64..500, scale in 1.0f64..16.0) {
        let src = format!(
            "model m {{ param n = {count}\n data A {{ size = n * 8 element = 8 }} }}"
        );
        let doc = parse(&src).unwrap();
        let doc2 = parse(&pretty(&doc)).unwrap();
        let a = Resolver::new(&doc)
            .set_param("n", count as f64 * scale.floor())
            .model(None)
            .unwrap();
        let b = Resolver::new(&doc2)
            .set_param("n", count as f64 * scale.floor())
            .model(None)
            .unwrap();
        prop_assert_eq!(a.datas[0].size_bytes, b.datas[0].size_bytes);
    }
}
