//! Cache-simulator throughput (references per second) across replacement
//! policies and geometries.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dvf_cachesim::{
    config::table4, simulate_with_policy, AccessKind, CacheConfig, MemRef, PolicyKind, Trace,
};
use std::hint::black_box;

fn synthetic_trace(refs: usize) -> Trace {
    let mut t = Trace::new();
    let a = t.registry.register("A");
    let b = t.registry.register("B");
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    for i in 0..refs {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let ds = if i % 3 == 0 { b } else { a };
        let kind = if state.is_multiple_of(4) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        t.push(MemRef::new(ds, state % (1 << 22), kind));
    }
    t
}

fn simulator_throughput(c: &mut Criterion) {
    let trace = synthetic_trace(100_000);
    let mut group = c.benchmark_group("cachesim");
    group.throughput(Throughput::Elements(trace.len() as u64));

    for policy in PolicyKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("policy", policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    black_box(simulate_with_policy(
                        black_box(&trace),
                        table4::LARGE_VERIFICATION,
                        policy,
                    ))
                })
            },
        );
    }

    for (label, config) in [
        ("8KB", table4::SMALL_VERIFICATION),
        ("4MB", table4::LARGE_VERIFICATION),
        (
            "32MB",
            CacheConfig {
                associativity: 16,
                num_sets: 32768,
                line_bytes: 64,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("geometry", label), &config, |b, &cfg| {
            b.iter(|| {
                black_box(simulate_with_policy(
                    black_box(&trace),
                    cfg,
                    PolicyKind::Lru,
                ))
            })
        });
    }

    group.finish();
}

criterion_group!(benches, simulator_throughput);
criterion_main!(benches);
