//! Evaluation-cost comparison (paper §I / §II claim).
//!
//! Estimating a kernel's main-memory accesses via the CGPMAC analytical
//! models versus tracing the kernel and replaying it through the cache
//! simulator. The model side should win by 3–6 orders of magnitude — the
//! reason DVF exploration is interactive where simulation is a batch job.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion};
use dvf_cachesim::{config::table4, simulate};
use dvf_kernels::{barnes_hut, mc, vm, Recorder};
use dvf_repro::models;
use std::hint::black_box;

fn model_vs_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_cost");

    // --- VM ---
    let vm_params = vm::VmParams::verification();
    group.bench_function("vm/model", |b| {
        b.iter(|| {
            black_box(models::vm_model(
                black_box(vm_params),
                table4::SMALL_VERIFICATION,
            ))
        })
    });
    group.bench_function("vm/trace+simulate", |b| {
        b.iter(|| {
            let rec = Recorder::new();
            vm::run_traced(vm_params, &rec);
            let trace = rec.into_trace();
            black_box(simulate(&trace, table4::SMALL_VERIFICATION).total())
        })
    });

    // --- NB ---
    let nb_params = barnes_hut::NbParams::verification();
    let nb_out = barnes_hut::run_plain(nb_params);
    group.bench_function("nb/model", |b| {
        b.iter(|| {
            black_box(models::nb_model(
                black_box(&nb_out),
                table4::SMALL_VERIFICATION,
            ))
        })
    });
    group.bench_function("nb/trace+simulate", |b| {
        b.iter(|| {
            let rec = Recorder::new();
            barnes_hut::run_traced(nb_params, &rec);
            let trace = rec.into_trace();
            black_box(simulate(&trace, table4::SMALL_VERIFICATION).total())
        })
    });

    // --- MC ---
    let mc_params = mc::McParams::verification();
    group.bench_function("mc/model", |b| {
        b.iter(|| {
            black_box(models::mc_model(
                black_box(mc_params),
                table4::SMALL_VERIFICATION,
            ))
        })
    });
    group.bench_function("mc/trace+simulate", |b| {
        b.iter(|| {
            let rec = Recorder::new();
            mc::run_traced(mc_params, &rec);
            let trace = rec.into_trace();
            black_box(simulate(&trace, table4::SMALL_VERIFICATION).total())
        })
    });

    group.finish();
}

criterion_group!(benches, model_vs_simulation);
criterion_main!(benches);
