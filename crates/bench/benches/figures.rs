//! End-to-end figure regeneration cost (scaled-down inputs): how long the
//! paper's experiments take with this toolchain.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion};
use dvf_repro::usecases::{fig6_sweep, fig7_sweep};
use std::hint::black_box;

fn figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig6_two_sizes", |b| {
        b.iter(|| black_box(fig6_sweep(black_box(&[100, 300]))))
    });

    group.bench_function("fig7_full", |b| b.iter(|| black_box(fig7_sweep())));

    group.bench_function("fig4_vm_only", |b| {
        b.iter(|| black_box(dvf_repro::verify::verify_vm()))
    });

    group.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
