//! Hierarchy replay throughput: what deeper stacks cost per reference.
//!
//! Replays one synthetic mixed trace through one-, two- and three-level
//! hierarchies (plus a prefetching two-level variant) so the per-level
//! overhead of the walk, victim routing and prefetch probing is visible
//! as a Melem/s ratio against the flat single-cache engine.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dvf_cachesim::{
    simulate_hierarchy_config, AccessKind, CacheConfig, HierarchyConfig, LevelSpec, MemRef, Trace,
};
use std::hint::black_box;

fn synthetic_trace(refs: usize) -> Trace {
    let mut t = Trace::new();
    let a = t.registry.register("A");
    let b = t.registry.register("B");
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    for i in 0..refs {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let ds = if i % 3 == 0 { b } else { a };
        let kind = if state.is_multiple_of(4) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        t.push(MemRef::new(ds, state % (1 << 22), kind));
    }
    t
}

fn cfg(assoc: usize, sets: usize, line: usize) -> CacheConfig {
    CacheConfig::new(assoc, sets, line).expect("bench geometry is valid")
}

fn hierarchy_throughput(c: &mut Criterion) {
    let trace = synthetic_trace(100_000);
    // A realistic downward slope: 32 KiB L1, 256 KiB L2, 4 MiB L3.
    let l1 = cfg(8, 64, 64);
    let l2 = cfg(8, 512, 64);
    let l3 = cfg(16, 4096, 64);
    let shapes: Vec<(&str, HierarchyConfig)> = vec![
        (
            "1-level",
            HierarchyConfig::new(vec![LevelSpec::new(l3)]).unwrap(),
        ),
        ("2-level", HierarchyConfig::two_level(l1, l3).unwrap()),
        (
            "3-level",
            HierarchyConfig::new(vec![
                LevelSpec::new(l1),
                LevelSpec::new(l2),
                LevelSpec::new(l3),
            ])
            .unwrap(),
        ),
        (
            "2-level+pf2",
            HierarchyConfig::new(vec![
                LevelSpec::new(l1),
                LevelSpec::new(l3).with_prefetch(2),
            ])
            .unwrap(),
        ),
    ];

    let mut group = c.benchmark_group("hierarchy_replay");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (label, config) in &shapes {
        group.bench_with_input(BenchmarkId::new("depth", label), config, |b, config| {
            b.iter(|| black_box(simulate_hierarchy_config(black_box(&trace), config)))
        });
    }
    group.finish();
}

criterion_group!(benches, hierarchy_throughput);
criterion_main!(benches);
