//! Kernel runtimes, plain vs traced — the cost of source-level
//! instrumentation relative to the untraced computation.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion};
use dvf_bench::sizes;
use dvf_kernels::{barnes_hut, cg, fft, mc, mg, pcg, vm, Recorder};
use std::hint::black_box;

fn kernel_runtimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);

    let vm_params = vm::VmParams {
        n: sizes::VM_N,
        stride_a: 4,
    };
    group.bench_function("vm/plain", |b| {
        b.iter(|| black_box(vm::run_plain(black_box(vm_params))))
    });
    group.bench_function("vm/traced", |b| {
        b.iter(|| {
            let rec = Recorder::new();
            black_box(vm::run_traced(black_box(vm_params), &rec))
        })
    });

    let cg_params = cg::CgParams::new(200, 20, 1e-10);
    group.bench_function("cg/plain", |b| {
        b.iter(|| black_box(cg::run_plain(black_box(cg_params))))
    });
    group.bench_function("pcg/plain", |b| {
        b.iter(|| black_box(pcg::run_plain(black_box(cg_params))))
    });

    let nb_params = barnes_hut::NbParams {
        bodies: sizes::NB_BODIES,
        theta: 0.5,
        seed: 42,
    };
    group.bench_function("nb/plain", |b| {
        b.iter(|| black_box(barnes_hut::run_plain(black_box(nb_params))))
    });

    let mg_params = mg::MgParams {
        n: 32,
        cycles: 1,
        smooths: 2,
    };
    group.bench_function("mg/plain", |b| {
        b.iter(|| black_box(mg::run_plain(black_box(mg_params))))
    });

    group.bench_function("ft/plain", |b| {
        b.iter(|| {
            let mut x = fft::input_signal(2048);
            fft::fft_plain(black_box(&mut x), false);
            black_box(x[0])
        })
    });

    let mc_params = mc::McParams {
        grid_points: 20_000,
        xs_entries: 12_000,
        lookups: sizes::MC_LOOKUPS,
        seed: 42,
    };
    group.bench_function("mc/plain", |b| {
        b.iter(|| black_box(mc::run_plain(black_box(mc_params))))
    });

    // Parallel matvec vs serial (row-parallel, bit-identical results).
    let n = 600usize;
    let a = cg::spd_matrix(n);
    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    group.bench_function("matvec/serial", |b| {
        b.iter(|| {
            let mut y = vec![0.0; n];
            for (i, yi) in y.iter_mut().enumerate() {
                *yi = a[i * n..(i + 1) * n]
                    .iter()
                    .zip(&x)
                    .map(|(p, q)| p * q)
                    .sum();
            }
            black_box(y)
        })
    });
    group.bench_function("matvec/parallel", |b| {
        b.iter(|| {
            let mut y = vec![0.0; n];
            dvf_kernels::parallel::dense_matvec_par(black_box(&a), n, black_box(&x), &mut y);
            black_box(y)
        })
    });

    group.finish();
}

criterion_group!(benches, kernel_runtimes);
criterion_main!(benches);
