//! Memo-cache contention: warm-hit throughput as threads are added,
//! labeled with the active stripe count.
//!
//! The stripe count is fixed at the cache's first use and read from
//! `DVF_MEMO_STRIPES` (default 16), so the single-mutex baseline is a
//! separate process, not a separate benchmark id:
//!
//! ```text
//! DVF_MEMO_STRIPES=1  cargo bench -p dvf-bench --bench memo_contention
//! DVF_MEMO_STRIPES=16 cargo bench -p dvf-bench --bench memo_contention
//! ```
//!
//! The startup report prints aggregate ops/s per thread count (the
//! numbers `BENCH_serve.json` records); the criterion rows then time the
//! single-threaded hit and miss paths.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion};
use dvf_cachesim::CacheConfig;
use dvf_core::memo::{self, EvalKey, PatternKey};
use dvf_core::patterns::{CacheView, StreamingSpec};
use std::hint::black_box;
use std::time::Instant;

fn view() -> CacheView {
    CacheView::exclusive(CacheConfig::new(4, 64, 32).unwrap())
}

fn spec(n: u64) -> StreamingSpec {
    StreamingSpec {
        element_bytes: 8,
        num_elements: n,
        stride_elements: 1,
    }
}

fn key_of(n: u64, view: &CacheView) -> EvalKey {
    memo::key(
        PatternKey::Streaming {
            element_bytes: 8,
            num_elements: n,
            stride_elements: 1,
        },
        view,
    )
}

/// Pre-populate `KEYS` entries so the storm below is all hits — the
/// contended path is the stripe lock around a `HashMap` probe.
const KEYS: u64 = 64;

fn warm() {
    memo::set_enabled(true);
    memo::clear();
    let v = view();
    for i in 0..KEYS {
        let n = 10_000 + i * 37;
        memo::evaluate(key_of(n, &v), || spec(n).mem_accesses(&v)).expect("warm");
    }
}

/// Aggregate warm-hit throughput with `threads` threads hammering the
/// cache round-robin over the warm keys.
fn storm(threads: usize, ops_per_thread: usize) -> f64 {
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                let v = view();
                for i in 0..ops_per_thread {
                    let n = 10_000 + (i as u64 % KEYS) * 37;
                    let got = memo::evaluate(key_of(n, &v), || spec(n).mem_accesses(&v));
                    black_box(got.expect("hit"));
                }
            });
        }
    });
    (threads * ops_per_thread) as f64 / started.elapsed().as_secs_f64()
}

fn contention_report() {
    let ops_per_thread = if std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .is_some_and(|ms| ms < 100)
    {
        20_000 // CI smoke: keep the storm short
    } else {
        200_000
    };
    warm();
    for threads in [1usize, 2, 4, 8] {
        let ops_per_s = storm(threads, ops_per_thread);
        println!(
            "memo_contention stripes={} threads={threads} ops={} ~{:.2} Mops/s",
            memo::stripe_count(),
            threads * ops_per_thread,
            ops_per_s / 1e6,
        );
    }
}

fn memo_benches(c: &mut Criterion) {
    contention_report();

    let mut group = c.benchmark_group("memo");
    warm();
    let v = view();

    group.bench_function("warm_hit", |b| {
        b.iter(|| {
            let got = memo::evaluate(black_box(key_of(10_000, &v)), || {
                spec(10_000).mem_accesses(&v)
            });
            black_box(got.expect("hit"))
        })
    });

    // The miss path: every iteration a fresh key (monotone n), so this
    // times compute + insert. Entries accumulate; clear afterwards.
    let mut n = 50_000_000u64;
    group.bench_function("cold_miss", |b| {
        b.iter(|| {
            n += 1;
            let got = memo::evaluate(key_of(n, &v), || spec(n).mem_accesses(&v));
            black_box(got.expect("miss"))
        })
    });
    memo::clear();

    group.finish();
}

criterion_group!(benches, memo_benches);
criterion_main!(benches);
