//! Instrumentation overhead: the cachesim hot loop with dvf-obs disabled
//! vs enabled.
//!
//! The observability layer's contract is that disabled instrumentation is
//! one relaxed atomic load and a branch per *batched* update site (the
//! per-reference path carries none at all), so `disabled` must stay
//! within noise of the pre-instrumentation baseline and `enabled` only
//! pays four counter adds per full simulation run.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dvf_cachesim::{config::table4, simulate, AccessKind, MemRef, Trace};
use std::hint::black_box;

fn synthetic_trace(refs: usize) -> Trace {
    let mut t = Trace::new();
    let a = t.registry.register("A");
    let b = t.registry.register("B");
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    for i in 0..refs {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let ds = if i % 3 == 0 { b } else { a };
        let kind = if state.is_multiple_of(4) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        t.push(MemRef::new(ds, state % (1 << 22), kind));
    }
    t
}

fn obs_overhead(c: &mut Criterion) {
    let trace = synthetic_trace(100_000);
    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Elements(trace.len() as u64));

    dvf_obs::set_enabled(false);
    group.bench_function("cachesim/disabled", |b| {
        b.iter(|| black_box(simulate(black_box(&trace), table4::LARGE_VERIFICATION)))
    });

    dvf_obs::set_enabled(true);
    group.bench_function("cachesim/enabled", |b| {
        b.iter(|| black_box(simulate(black_box(&trace), table4::LARGE_VERIFICATION)))
    });
    dvf_obs::set_enabled(false);

    // The primitives themselves, for the per-call picture: a disabled
    // counter bump is the cost every instrumented site pays when off.
    let counter = dvf_obs::counter("bench.obs");
    group.throughput(Throughput::Elements(1));
    group.bench_function("counter/disabled", |b| b.iter(|| counter.add(black_box(1))));
    dvf_obs::set_enabled(true);
    group.bench_function("counter/enabled", |b| b.iter(|| counter.add(black_box(1))));
    group.bench_function("span/enabled", |b| {
        b.iter(|| drop(black_box(dvf_obs::span("bench"))))
    });
    dvf_obs::set_enabled(false);
    group.bench_function("span/disabled", |b| {
        b.iter(|| drop(black_box(dvf_obs::span("bench"))))
    });

    // The per-request trace layer: spans and counters while a trace is
    // active on the thread (the always-on server path), and the full
    // begin → finish cycle a request pays.
    {
        let _trace = dvf_obs::trace::begin(dvf_obs::trace::trace_id(1, 0));
        group.bench_function("span/traced", |b| {
            b.iter(|| drop(black_box(dvf_obs::span("bench"))))
        });
        group.bench_function("counter/traced", |b| {
            b.iter(|| dvf_obs::add("bench.obs.traced", black_box(1)))
        });
    }
    group.bench_function("trace/begin_finish", |b| {
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let guard = dvf_obs::trace::begin(dvf_obs::trace::trace_id(2, n));
            black_box(guard.finish())
        })
    });

    group.finish();

    if std::env::var("OBS_OVERHEAD_ASSERT").as_deref() == Ok("1") {
        assert_disabled_path_flat();
    }
}

/// CI smoke assertion (`OBS_OVERHEAD_ASSERT=1`): the fully disabled
/// instrumentation path — no global registry, no active trace — must
/// stay within noise. "Noise" here is an absolute per-op ceiling chosen
/// far above a flag check (tens of instructions) but far below a real
/// recording path (allocation + lock), so a regression that starts doing
/// work while disabled fails loudly on any hardware.
fn assert_disabled_path_flat() {
    const OPS: u64 = 1_000_000;
    const CEILING_NS_PER_OP: f64 = 50.0;
    dvf_obs::set_enabled(false);

    let started = std::time::Instant::now();
    for _ in 0..OPS {
        drop(black_box(dvf_obs::span("bench.assert")));
    }
    let span_ns = started.elapsed().as_nanos() as f64 / OPS as f64;

    let started = std::time::Instant::now();
    for _ in 0..OPS {
        dvf_obs::add("bench.assert.counter", black_box(1));
    }
    let add_ns = started.elapsed().as_nanos() as f64 / OPS as f64;

    assert!(
        span_ns < CEILING_NS_PER_OP && add_ns < CEILING_NS_PER_OP,
        "disabled-path overhead regressed: span {span_ns:.1} ns/op, \
         add {add_ns:.1} ns/op (ceiling {CEILING_NS_PER_OP} ns/op)"
    );
    println!("obs_overhead assert: ok (span {span_ns:.1} ns/op, add {add_ns:.1} ns/op)");
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
