//! Aspen front-end throughput: lex+parse and full resolution.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dvf_aspen::{parse, Resolver};
use std::hint::black_box;

const SOURCE: &str = r#"
    param scale = 2

    machine small {
      param ways = 4
      cache { associativity = ways  sets = 64  line = 32  capacity = 8 * KiB }
      memory { fit = 5000  ecc = none }
      core { flops = 1e9  bandwidth = 4e9 }
    }

    model cg {
      param n = 800 * scale
      data A { size = n * n * 8  element = 8 }
      data x { size = n * 8  element = 8 }
      data p { size = n * 8  element = 8 }
      data r { size = n * 8  element = 8 }
      kernel iterate {
        iters = 100
        flops = 2 * n * n
        access A as streaming()
        access p as reuse(reuses = n + 3)
        access x as streaming()
        access r as streaming()
        order { r (A p) p (x p) (A p) r (r p) }
      }
    }

    model mg {
      param n1 = 16  param n2 = 16  param n3 = 16
      data R { size = n1*n2*n3*16  element = 16  dims = (n3, n2, n1) }
      kernel smooth {
        access R as template(
          starts = (R(2,1,1), R(2,3,1), R(1,2,1), R(2,2,1)),
          step = 1,
          ends = (R(2,1,9), R(2,3,9), R(1,2,9), R(2,2,9))
        )
      }
    }
"#;

fn frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser");
    group.throughput(Throughput::Bytes(SOURCE.len() as u64));

    group.bench_function("parse", |b| {
        b.iter(|| black_box(parse(black_box(SOURCE)).unwrap()))
    });

    let doc = parse(SOURCE).unwrap();
    group.bench_function("resolve_machine", |b| {
        b.iter(|| black_box(Resolver::new(&doc).machine(Some("small")).unwrap()))
    });
    group.bench_function("resolve_model_cg", |b| {
        b.iter(|| black_box(Resolver::new(&doc).model(Some("cg")).unwrap()))
    });
    group.bench_function("resolve_model_mg_template", |b| {
        b.iter(|| black_box(Resolver::new(&doc).model(Some("mg")).unwrap()))
    });
    group.bench_function("pretty_print", |b| {
        b.iter(|| black_box(dvf_aspen::pretty(black_box(&doc))))
    });

    group.finish();
}

criterion_group!(benches, frontend);
criterion_main!(benches);
