//! Microbenchmarks of the four CGPMAC pattern models.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvf_cachesim::config::table4;
use dvf_core::patterns::{
    CacheView, InterferenceScenario, RandomSpec, ReuseSpec, StreamingSpec, TemplateSpec,
};
use std::hint::black_box;

fn pattern_models(c: &mut Criterion) {
    let view = CacheView::exclusive(table4::PROFILE_1MB);
    let mut group = c.benchmark_group("patterns");

    group.bench_function("streaming", |b| {
        let spec = StreamingSpec {
            element_bytes: 8,
            num_elements: 1_000_000,
            stride_elements: 4,
        };
        b.iter(|| black_box(spec.mem_accesses(black_box(&view)).unwrap()))
    });

    for n in [1_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("random", n), &n, |b, &n| {
            let spec = RandomSpec {
                num_elements: n,
                element_bytes: 32,
                k: (n / 10).max(1),
                iterations: 1000,
                ratio: 1.0,
            };
            b.iter(|| black_box(spec.mem_accesses(black_box(&view)).unwrap()))
        });
    }

    for len in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("template", len), &len, |b, &len| {
            let refs: Vec<u64> = (0..len as u64).map(|i| (i * 7919) % 4096).collect();
            let spec = TemplateSpec::new(16, refs);
            b.iter(|| black_box(spec.mem_accesses(black_box(&view)).unwrap()))
        });
    }

    group.bench_function("reuse", |b| {
        let spec = ReuseSpec {
            target_blocks: 4096,
            interfering_blocks: 65_536,
            reuses: 1000,
            scenario: InterferenceScenario::Exclusive,
        };
        b.iter(|| black_box(spec.mem_accesses(black_box(&view)).unwrap()))
    });

    group.bench_function("reuse_concurrent", |b| {
        let spec = ReuseSpec {
            target_blocks: 4096,
            interfering_blocks: 65_536,
            reuses: 1000,
            scenario: InterferenceScenario::Concurrent,
        };
        b.iter(|| black_box(spec.mem_accesses(black_box(&view)).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, pattern_models);
criterion_main!(benches);
