//! End-to-end pipeline throughput: trace formats (DVFT v1 vs the
//! compressed block-indexed DVFT2), fused kernel→simulator streaming vs
//! buffered record-then-replay, and memoized parallel sweep grids.
//!
//! At startup the harness also prints the encoded size of each oracle
//! workload trace in both formats (sizes are deterministic facts, not
//! timings); `BENCH_pipeline.json` records both.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dvf_cachesim::binio::{read_binary, write_binary, write_binary_v2, TraceReader, DEFAULT_CHUNK};
use dvf_cachesim::{simulate_many, CacheConfig, PolicyKind, SimJob, Simulator, Trace};
use dvf_core::memo;
use dvf_core::workflow::DvfWorkflow;
use dvf_difftest::workloads;
use dvf_kernels::{cg, record_fanout, Recorder};
use std::hint::black_box;

/// The memory-bound geometry of the BENCH_cachesim study: 32 MB, whose
/// simulator metadata dwarfs the host LLC.
fn geom_32mb() -> CacheConfig {
    CacheConfig {
        associativity: 16,
        num_sets: 32_768,
        line_bytes: 64,
    }
}

/// Oracle-style workload traces (the difftest generators at sizes whose
/// footprints exercise a 32 MB geometry), plus their encodings.
fn oracle_traces() -> Vec<(&'static str, Trace)> {
    let g = [geom_32mb()];
    vec![
        ("streaming", workloads::streaming(500_000, 2, &g, 1.0).trace),
        (
            "random",
            workloads::random(7, 65_536, 8_192, 10, &g, 1.0).trace,
        ),
        (
            "template",
            workloads::template(11, 16_384, 65_536, 4, &g, 1.0).trace,
        ),
        (
            "reuse",
            workloads::reuse(13, 2_048, 8_192, 8, &g, 1.0).trace,
        ),
    ]
}

fn encode(trace: &Trace) -> (Vec<u8>, Vec<u8>) {
    let mut v1 = Vec::new();
    write_binary(trace, &mut v1).unwrap();
    let mut v2 = Vec::new();
    write_binary_v2(trace, &mut v2).unwrap();
    (v1, v2)
}

/// Print the deterministic size comparison once, before any timing.
fn report_sizes(traces: &[(&'static str, Trace)]) {
    for (name, trace) in traces {
        let (v1, v2) = encode(trace);
        eprintln!(
            "pipeline/size/{name}: {} refs, v1 {} B, v2 {} B, ratio {:.2}x",
            trace.len(),
            v1.len(),
            v2.len(),
            v1.len() as f64 / v2.len() as f64
        );
    }
}

/// Cold replay: bytes → decoded references → 32 MB LRU simulator, the
/// full path a trace file takes from disk cache to report.
fn cold_replay(c: &mut Criterion) {
    let traces = oracle_traces();
    report_sizes(&traces);
    let mut group = c.benchmark_group("pipeline");

    // One combined stream, like a real kernel trace mixing phases.
    let mut combined = Trace::new();
    for (_, t) in &traces {
        let map: Vec<_> = t
            .registry
            .iter()
            .map(|(_, name)| combined.registry.register(name))
            .collect();
        for r in &t.refs {
            combined.push(dvf_cachesim::MemRef::new(map[r.ds.index()], r.addr, r.kind));
        }
    }
    let (v1, v2) = encode(&combined);
    let refs = combined.len() as u64;
    group.throughput(Throughput::Elements(refs));

    for (label, bytes) in [("v1", &v1), ("v2", &v2)] {
        group.bench_with_input(BenchmarkId::new("decode", label), bytes, |b, bytes| {
            b.iter(|| black_box(read_binary(bytes.as_slice()).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("cold_replay", label), bytes, |b, bytes| {
            b.iter(|| {
                let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
                let mut sim = Simulator::new(geom_32mb());
                let mut chunk = Vec::new();
                while reader.read_chunk(&mut chunk, DEFAULT_CHUNK).unwrap() > 0 {
                    sim.run(&chunk);
                }
                black_box(sim.finish())
            })
        });
    }
    group.finish();
}

/// Record→replay pipeline: the CG kernel driven into the memory-bound
/// 32 MB geometry three ways — via a v1 trace file on disk (the pre-DVFT2
/// pipeline), via an in-memory buffered trace, and fused (no trace
/// materialized at all).
fn record_paths(c: &mut Criterion) {
    let jobs = [SimJob {
        config: geom_32mb(),
        policy: PolicyKind::Lru,
    }];
    // Reference count for throughput: one dry recording.
    let rec = Recorder::new();
    cg::run_traced(cg::CgParams::verification(), &rec);
    let refs = rec.into_trace().len() as u64;
    let tmp = std::env::temp_dir().join(format!("dvf-bench-pipeline-{}.dvft", std::process::id()));

    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(refs));
    group.bench_function("record/file_v1", |b| {
        b.iter(|| {
            let rec = Recorder::new();
            cg::run_traced(cg::CgParams::verification(), &rec);
            let trace = rec.into_trace();
            let f = std::fs::File::create(&tmp).unwrap();
            write_binary(&trace, std::io::BufWriter::new(f)).unwrap();
            let back =
                read_binary(std::io::BufReader::new(std::fs::File::open(&tmp).unwrap())).unwrap();
            black_box(simulate_many(&back, &jobs))
        })
    });
    group.bench_function("record/buffered", |b| {
        b.iter(|| {
            let rec = Recorder::new();
            cg::run_traced(cg::CgParams::verification(), &rec);
            let trace = rec.into_trace();
            black_box(simulate_many(&trace, &jobs))
        })
    });
    group.bench_function("record/fused", |b| {
        b.iter(|| {
            black_box(record_fanout(&jobs, |rec| {
                cg::run_traced(cg::CgParams::verification(), rec);
            }))
        })
    });
    group.finish();
    let _ = std::fs::remove_file(&tmp);
}

/// A fig7-style grid at production scale (n = 1e6): the swept parameter
/// `w` reaches only the time model, so with memoization every CGPMAC
/// pattern evaluation after the first grid point is a cache hit.
const SWEEP_SOURCE: &str = r#"
    machine m {
      cache { associativity = 8  sets = 8192  line = 64 }
      memory { fit = 5000 }
      core { flops = 1e9  bandwidth = 4e9 }
    }
    model app {
      param n = 1000000
      param w = 1
      data A { size = n * 8  element = 8 }
      data G { size = n * 16  element = 16 }
      data p { size = 64 * KiB  element = 8 }
      kernel main {
        flops = 10 * n * w
        access A as streaming(stride = 2)
        access G as random(k = n / 8, iters = 1000)
        access p as reuse(reuses = 500)
      }
    }
"#;

fn sweep_grid(c: &mut Criterion) {
    let wf = DvfWorkflow::parse(SWEEP_SOURCE).unwrap();
    let values: Vec<f64> = (1..=16).map(|i| i as f64).collect();
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(values.len() as u64));

    group.bench_function("sweep/uncached", |b| {
        memo::set_enabled(false);
        b.iter(|| black_box(wf.sweep_param("w", &values)));
        memo::set_enabled(true);
    });
    group.bench_function("sweep/cached", |b| {
        memo::set_enabled(true);
        memo::clear();
        b.iter(|| black_box(wf.sweep_param("w", &values)));
    });
    group.finish();
}

criterion_group!(benches, cold_replay, record_paths, sweep_grid);
criterion_main!(benches);
