//! Parallel trace-replay driver throughput: one borrowed trace fanned
//! across a (config, policy) job grid via `simulate_many_with_threads`,
//! swept over worker-thread counts, plus the parallel fault-injection
//! campaign driver.
//!
//! On a single-core host the multi-thread rows mostly measure scheduling
//! overhead; on a multi-core host they show the scaling `simulate_many`
//! buys `fig4`/`ablation`. Both are worth tracking.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dvf_cachesim::{
    config::table4, simulate_many_with_threads, AccessKind, MemRef, PolicyKind, SimJob, Trace,
};
use std::hint::black_box;

fn synthetic_trace(refs: usize) -> Trace {
    let mut t = Trace::new();
    let a = t.registry.register("A");
    let b = t.registry.register("B");
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    for i in 0..refs {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let ds = if i % 3 == 0 { b } else { a };
        let kind = if state.is_multiple_of(4) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        t.push(MemRef::new(ds, state % (1 << 22), kind));
    }
    t
}

/// The `fig4`-shaped grid: every profiling geometry under every policy.
fn job_grid() -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for config in table4::PROFILING {
        for policy in PolicyKind::ALL {
            jobs.push(SimJob { config, policy });
        }
    }
    jobs
}

fn replay_parallel(c: &mut Criterion) {
    let trace = synthetic_trace(50_000);
    let jobs = job_grid();
    let mut group = c.benchmark_group("replay_parallel");
    // Total references replayed per iteration: trace length x job count.
    group.throughput(Throughput::Elements((trace.len() * jobs.len()) as u64));

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1, 2, 4, 8];
    counts.retain(|&t| t == 1 || t <= 2 * cores);
    for threads in counts {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(simulate_many_with_threads(
                        black_box(&trace),
                        black_box(&jobs),
                        threads,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, replay_parallel);
criterion_main!(benches);
