//! dvf-serve request throughput and latency.
//!
//! Measures the full socket round-trip against a live in-process server:
//! a keep-alive client issuing one request per iteration, for **both**
//! transports (event-loop and thread-pool) so every row is an
//! interleaved A/B. At startup the harness also runs a closed-loop
//! multi-client pass per transport and prints p50/p99 per-request
//! latencies (the numbers `BENCH_serve.json` records) — percentiles are
//! a distribution fact the median-reporting criterion shim cannot
//! express. Open-loop (fixed offered load) curves come from
//! `dvf loadgen`, not from this closed-loop harness.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion};
use dvf_serve::{Server, ServerConfig, Transport};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const MODEL: &str = r#"
    machine small {
      cache { associativity = 4  sets = 64  line = 32 }
      memory { fit = 5000 }
      core { flops = 1e9  bandwidth = 4e9 }
    }
    model vm {
      param n = 2000
      data A { size = n * 8  element = 8 }
      data B { size = n * 8  element = 8 }
      kernel main {
        flops = 2 * n
        access A as streaming(stride = 4)
        access B as streaming()
      }
    }
"#;

/// A keep-alive client connection.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    /// One request/response exchange; returns the status code.
    fn roundtrip(&mut self, method: &str, path: &str, body: &str) -> u16 {
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: b\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send");

        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .and_then(|v| v.parse().ok())
            {
                content_length = v;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        status
    }
}

fn json_str(s: &str) -> String {
    let escaped = s
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    format!("\"{escaped}\"")
}

/// Both transports on unix, threaded only elsewhere.
fn transports() -> &'static [Transport] {
    if cfg!(unix) {
        &[Transport::EventLoop, Transport::Threaded]
    } else {
        &[Transport::Threaded]
    }
}

fn start_server(workers: usize, transport: Transport) -> (Server, SocketAddr) {
    let server = Server::bind(ServerConfig {
        workers,
        transport,
        // Criterion iterates far past the production per-connection
        // request budget; this bench wants one connection throughout.
        keep_alive_max: usize::MAX,
        ..Default::default()
    })
    .expect("bind");
    let addr = server.addr();
    let mut c = Client::connect(addr);
    let body = format!(r#"{{"name":"bench","source":{}}}"#, json_str(MODEL));
    assert_eq!(c.roundtrip("POST", "/v1/sessions", &body), 200);
    (server, addr)
}

/// Closed-loop pass: `clients` keep-alive connections, each issuing
/// `per_client` requests; returns every request latency, sorted.
fn closed_loop(
    addr: SocketAddr,
    clients: usize,
    per_client: usize,
    body: &'static str,
) -> Vec<Duration> {
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let mut lat = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let t0 = Instant::now();
                    let status = c.roundtrip("POST", "/v1/dvf", body);
                    lat.push(t0.elapsed());
                    assert_eq!(status, 200);
                }
                lat
            })
        })
        .collect();
    let mut all: Vec<Duration> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("client"))
        .collect();
    all.sort();
    all
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Print the p50/p99 study once per transport, before any criterion
/// timing. Transports alternate within each round (interleaved A/B), so
/// slow VM drift hits both sides alike.
fn report_latency_percentiles() {
    let per_client = if std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .is_some_and(|ms| ms < 100)
    {
        50 // CI smoke: keep the closed loop short
    } else {
        400
    };
    for round in 0..2 {
        for &transport in transports() {
            let (server, addr) = start_server(4, transport);
            for clients in [1usize, 4] {
                let lat = closed_loop(addr, clients, per_client, r#"{"session":"bench"}"#);
                let total: Duration = lat.iter().sum();
                let throughput = lat.len() as f64 / total.as_secs_f64() * clients as f64;
                println!(
                    "serve_latency/dvf transport={} round={round} clients={clients} n={} \
                     p50={:?} p99={:?} max={:?} ~{:.0} req/s",
                    transport.as_str(),
                    lat.len(),
                    percentile(&lat, 0.50),
                    percentile(&lat, 0.99),
                    lat[lat.len() - 1],
                    throughput,
                );
            }
            server.shutdown();
        }
    }
}

/// 16 identical dvf questions as one `/v1/batch` body.
fn batch_body() -> String {
    let entries: Vec<&str> = (0..16).map(|_| r#"{"session":"bench"}"#).collect();
    format!(r#"{{"entries":[{}]}}"#, entries.join(","))
}

fn serve_benches(c: &mut Criterion) {
    report_latency_percentiles();

    let mut group = c.benchmark_group("serve");
    for &transport in transports() {
        let t = transport.as_str();
        let (server, addr) = start_server(4, transport);

        let mut healthz = Client::connect(addr);
        group.bench_function(format!("healthz/{t}"), |b| {
            b.iter(|| black_box(healthz.roundtrip("GET", "/v1/healthz", "")))
        });

        let mut dvf = Client::connect(addr);
        group.bench_function(format!("dvf_session/{t}"), |b| {
            b.iter(|| black_box(dvf.roundtrip("POST", "/v1/dvf", r#"{"session":"bench"}"#)))
        });

        // Warm sweep: after the first request the whole grid is memo
        // hits, so this measures the served (cached) path end to end.
        let sweep_body = r#"{"session":"bench","param":"n","lo":100,"hi":10000,"steps":8}"#;
        let mut sweep = Client::connect(addr);
        assert_eq!(sweep.roundtrip("POST", "/v1/sweep", sweep_body), 200);
        group.bench_function(format!("sweep_cached_8pt/{t}"), |b| {
            b.iter(|| black_box(sweep.roundtrip("POST", "/v1/sweep", sweep_body)))
        });

        // 16 dvf questions in one round-trip; compare against 16x the
        // dvf_session row to see what the batch amortizes.
        let batch = batch_body();
        let mut batch_client = Client::connect(addr);
        group.bench_function(format!("batch_16_dvf/{t}"), |b| {
            b.iter(|| black_box(batch_client.roundtrip("POST", "/v1/batch", &batch)))
        });

        drop((healthz, dvf, sweep, batch_client));
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, serve_benches);
criterion_main!(benches);
