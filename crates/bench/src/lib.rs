//! # dvf-bench
//!
//! Criterion benchmarks for the DVF toolchain. The headline bench,
//! `eval_cost`, quantifies the paper's central efficiency claim: the
//! analytical models answer in microseconds–milliseconds what trace-driven
//! cache simulation needs seconds–minutes for (paper §I: "the evaluation
//! cost is at the time granularity of seconds, much smaller than the
//! evaluation costs associated with the statistical-based fault injection
//! and detailed architecture analysis").
//!
//! Run with `cargo bench --workspace`; each bench prints the series its
//! header documents.

/// Shared small-but-nontrivial problem sizes used across benches, so
/// numbers are comparable between runs.
pub mod sizes {
    /// Barnes-Hut bodies for bench-scale runs.
    pub const NB_BODIES: usize = 1000;
    /// Monte-Carlo lookups for bench-scale runs.
    pub const MC_LOOKUPS: usize = 1000;
    /// Streaming elements for bench-scale runs.
    pub const VM_N: usize = 100_000;
}
