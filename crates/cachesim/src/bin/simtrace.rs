//! `simtrace` — run a reference trace file through the cache simulator.
//!
//! ```text
//! simtrace <trace-file> [--assoc N] [--sets N] [--line N] [--policy lru|fifo|plru|random]
//!          [--l1-assoc N --l1-sets N --l1-line N]     # enable a two-level hierarchy
//! ```
//!
//! The trace format is one reference per line: `name kind addr`
//! (kind `R`/`W`, addr decimal or `0x…` hex); `#` starts a comment.

use dvf_cachesim::hierarchy::simulate_hierarchy;
use dvf_cachesim::{simulate_with_policy, CacheConfig, PolicyKind, Trace};
use std::process::ExitCode;

const USAGE: &str = "\
usage: simtrace <trace-file> [options]
  --assoc N --sets N --line N     LLC geometry (default 8/8192/64 = 4 MiB)
  --policy lru|fifo|plru|random   replacement policy (default lru)
  --l1-assoc N --l1-sets N --l1-line N
                                  put an L1 in front (LRU at both levels)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };

    let mut assoc = 8usize;
    let mut sets = 8192usize;
    let mut line = 64usize;
    let mut policy = PolicyKind::Lru;
    let mut l1: (Option<usize>, Option<usize>, Option<usize>) = (None, None, None);

    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("{flag} needs a value\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        };
        let parse_usize = |v: &str| v.parse::<usize>().ok();
        match flag.as_str() {
            "--assoc" => match parse_usize(value) {
                Some(v) => assoc = v,
                None => return bad_value(flag, value),
            },
            "--sets" => match parse_usize(value) {
                Some(v) => sets = v,
                None => return bad_value(flag, value),
            },
            "--line" => match parse_usize(value) {
                Some(v) => line = v,
                None => return bad_value(flag, value),
            },
            "--policy" => match value.parse::<PolicyKind>() {
                Ok(p) => policy = p,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            },
            "--l1-assoc" => l1.0 = parse_usize(value),
            "--l1-sets" => l1.1 = parse_usize(value),
            "--l1-line" => l1.2 = parse_usize(value),
            other => {
                eprintln!("unknown flag `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Binary (DVFT) traces are detected by magic; anything else is text.
    let trace = if bytes.starts_with(b"DVFT") {
        match dvf_cachesim::binio::read_binary(bytes.as_slice()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bad binary trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match String::from_utf8(bytes)
            .map_err(|e| e.to_string())
            .and_then(|text| Trace::from_text(&text))
        {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bad trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let llc = match CacheConfig::new(assoc, sets, line) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad LLC geometry: {e}");
            return ExitCode::from(2);
        }
    };

    match l1 {
        (Some(a), Some(s), Some(l)) => {
            let l1cfg = match CacheConfig::new(a, s, l) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("bad L1 geometry: {e}");
                    return ExitCode::from(2);
                }
            };
            if policy != PolicyKind::Lru {
                eprintln!("note: hierarchy mode always uses LRU");
            }
            let report = simulate_hierarchy(&trace, l1cfg, llc);
            println!(
                "{} refs through L1 {l1cfg} + LLC {llc}",
                trace.len()
            );
            println!("\nL1:\n{}", report.l1.render(&trace.registry));
            println!("LLC:\n{}", report.llc.render(&trace.registry));
            println!("main-memory accesses: {}", report.total_mem_accesses());
        }
        (None, None, None) => {
            let report = simulate_with_policy(&trace, llc, policy);
            println!(
                "{} refs through {} ({} policy)",
                trace.len(),
                llc,
                report.policy
            );
            println!("\n{}", report.stats().render(&trace.registry));
            println!("main-memory accesses: {}", report.total().mem_accesses());
        }
        _ => {
            eprintln!("hierarchy mode needs all of --l1-assoc, --l1-sets, --l1-line\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

fn bad_value(flag: &str, value: &str) -> ExitCode {
    eprintln!("bad value `{value}` for {flag}\n");
    eprint!("{USAGE}");
    ExitCode::from(2)
}
