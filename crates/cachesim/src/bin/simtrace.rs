//! `simtrace` — run a reference trace file through the cache simulator.
//!
//! ```text
//! simtrace <trace-file> [--assoc N] [--sets N] [--line N] [--policy lru|fifo|plru|random]
//!          [--l1-assoc N --l1-sets N --l1-line N]     # enable a two-level hierarchy
//!          [--json]                                   # machine-readable report
//!          [--quiet]                                  # no progress heartbeat
//! ```
//!
//! The trace format is one reference per line: `name kind addr`
//! (kind `R`/`W`, addr decimal or `0x…` hex); `#` starts a comment.
//!
//! Long replays print a progress heartbeat to stderr every million
//! references (suppress with `--quiet`); `--json` swaps the tables for a
//! `dvf-cachesim/1` JSON document on stdout.

use dvf_cachesim::hierarchy::simulate_hierarchy;
use dvf_cachesim::{
    CacheConfig, CacheStats, DsRegistry, Fifo, Lru, PolicyKind, RandomEvict, ReplacementPolicy,
    SimReport, Simulator, Trace, TreePlru,
};
use dvf_obs::{Heartbeat, JsonWriter};
use std::process::ExitCode;

const USAGE: &str = "\
usage: simtrace <trace-file> [options]
  --assoc N --sets N --line N     LLC geometry (default 8/8192/64 = 4 MiB)
  --policy lru|fifo|plru|random   replacement policy (default lru)
  --l1-assoc N --l1-sets N --l1-line N
                                  put an L1 in front (LRU at both levels)
  --json                          emit a dvf-cachesim/1 JSON report
  --quiet                         suppress the progress heartbeat
";

/// References between heartbeat reports.
const HEARTBEAT_EVERY: u64 = 1_000_000;
/// References fed to the simulator between heartbeat checks.
const CHUNK: usize = 65_536;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };

    let mut assoc = 8usize;
    let mut sets = 8192usize;
    let mut line = 64usize;
    let mut policy = PolicyKind::Lru;
    let mut l1: (Option<usize>, Option<usize>, Option<usize>) = (None, None, None);
    let mut json = false;
    let mut quiet = false;

    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => {
                json = true;
                continue;
            }
            "--quiet" => {
                quiet = true;
                continue;
            }
            "--assoc" | "--sets" | "--line" | "--policy" | "--l1-assoc" | "--l1-sets"
            | "--l1-line" => {}
            other => {
                eprintln!("unknown flag `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
        let Some(value) = it.next() else {
            eprintln!("{flag} needs a value\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        };
        let parse_usize = |v: &str| v.parse::<usize>().ok();
        match flag.as_str() {
            "--assoc" => match parse_usize(value) {
                Some(v) => assoc = v,
                None => return bad_value(flag, value),
            },
            "--sets" => match parse_usize(value) {
                Some(v) => sets = v,
                None => return bad_value(flag, value),
            },
            "--line" => match parse_usize(value) {
                Some(v) => line = v,
                None => return bad_value(flag, value),
            },
            "--policy" => match value.parse::<PolicyKind>() {
                Ok(p) => policy = p,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            },
            "--l1-assoc" => l1.0 = parse_usize(value),
            "--l1-sets" => l1.1 = parse_usize(value),
            "--l1-line" => l1.2 = parse_usize(value),
            _ => unreachable!("flag validated above"),
        }
    }

    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Binary (DVFT) traces are detected by magic; anything else is text.
    let trace = if bytes.starts_with(b"DVFT") {
        match dvf_cachesim::binio::read_binary(bytes.as_slice()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bad binary trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match String::from_utf8(bytes)
            .map_err(|e| e.to_string())
            .and_then(|text| Trace::from_text(&text))
        {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bad trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let llc = match CacheConfig::new(assoc, sets, line) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad LLC geometry: {e}");
            return ExitCode::from(2);
        }
    };

    match l1 {
        (Some(a), Some(s), Some(l)) => {
            let l1cfg = match CacheConfig::new(a, s, l) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("bad L1 geometry: {e}");
                    return ExitCode::from(2);
                }
            };
            if policy != PolicyKind::Lru {
                eprintln!("note: hierarchy mode always uses LRU");
            }
            let report = simulate_hierarchy(&trace, l1cfg, llc);
            if json {
                let mut w = JsonWriter::new();
                w.begin_object();
                w.key("schema").string("dvf-cachesim/1");
                w.key("refs").u64(trace.len() as u64);
                w.key("l1").begin_object();
                config_json(&mut w, &l1cfg);
                stats_json(&mut w, &report.l1, &trace.registry);
                w.end_object();
                w.key("llc").begin_object();
                config_json(&mut w, &llc);
                stats_json(&mut w, &report.llc, &trace.registry);
                w.end_object();
                w.key("mem_accesses").u64(report.total_mem_accesses());
                w.end_object();
                println!("{}", w.finish());
            } else {
                println!("{} refs through L1 {l1cfg} + LLC {llc}", trace.len());
                println!("\nL1:\n{}", report.l1.render(&trace.registry));
                println!("LLC:\n{}", report.llc.render(&trace.registry));
                println!("main-memory accesses: {}", report.total_mem_accesses());
            }
        }
        (None, None, None) => {
            let report = replay(&trace, llc, policy, quiet);
            if json {
                let mut w = JsonWriter::new();
                w.begin_object();
                w.key("schema").string("dvf-cachesim/1");
                w.key("refs").u64(report.refs);
                w.key("policy").string(report.policy);
                config_json(&mut w, &llc);
                stats_json(&mut w, report.stats(), &trace.registry);
                w.key("mem_accesses").u64(report.total().mem_accesses());
                w.end_object();
                println!("{}", w.finish());
            } else {
                println!(
                    "{} refs through {} ({} policy)",
                    trace.len(),
                    llc,
                    report.policy
                );
                println!("\n{}", report.stats().render(&trace.registry));
                println!("main-memory accesses: {}", report.total().mem_accesses());
            }
        }
        _ => {
            eprintln!("hierarchy mode needs all of --l1-assoc, --l1-sets, --l1-line\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

/// Replay the trace in chunks so a heartbeat can report progress on
/// multi-million-reference runs without touching the per-reference path.
fn replay(trace: &Trace, config: CacheConfig, policy: PolicyKind, quiet: bool) -> SimReport {
    fn go<P: ReplacementPolicy>(
        trace: &Trace,
        config: CacheConfig,
        policy: P,
        quiet: bool,
    ) -> SimReport {
        let mut sim = Simulator::with_policy(config, policy);
        let mut hb = Heartbeat::new("simtrace", HEARTBEAT_EVERY).quiet(quiet);
        for chunk in trace.refs.chunks(CHUNK) {
            sim.run(chunk);
            hb.tick(chunk.len() as u64);
        }
        // Only announce completion for runs long enough to have ticked.
        if hb.seen() >= HEARTBEAT_EVERY {
            hb.done();
        }
        sim.finish()
    }
    match policy {
        PolicyKind::Lru => go(trace, config, Lru, quiet),
        PolicyKind::Fifo => go(trace, config, Fifo, quiet),
        PolicyKind::Plru => go(trace, config, TreePlru, quiet),
        PolicyKind::Random => go(trace, config, RandomEvict::default(), quiet),
    }
}

/// Write a cache geometry as `"config": {...}` fields.
fn config_json(w: &mut JsonWriter, cfg: &CacheConfig) {
    w.key("config").begin_object();
    w.key("associativity").u64(cfg.associativity as u64);
    w.key("sets").u64(cfg.num_sets as u64);
    w.key("line_bytes").u64(cfg.line_bytes as u64);
    w.key("capacity_bytes").u64(cfg.capacity() as u64);
    w.end_object();
}

/// Write per-structure stats as `"data": [...]` plus a `"total"` object.
fn stats_json(w: &mut JsonWriter, stats: &CacheStats, registry: &DsRegistry) {
    w.key("data").begin_array();
    for (id, s) in stats.iter() {
        w.begin_object();
        let name = if id.index() < registry.len() {
            registry.name(id)
        } else {
            "?"
        };
        w.key("name").string(name);
        ds_fields(w, s.reads, s.writes, s.hits, s.misses, s.writebacks);
        w.end_object();
    }
    w.end_array();
    let t = stats.total();
    w.key("total").begin_object();
    ds_fields(w, t.reads, t.writes, t.hits, t.misses, t.writebacks);
    w.end_object();
}

fn ds_fields(w: &mut JsonWriter, reads: u64, writes: u64, hits: u64, misses: u64, writebacks: u64) {
    w.key("reads").u64(reads);
    w.key("writes").u64(writes);
    w.key("hits").u64(hits);
    w.key("misses").u64(misses);
    w.key("writebacks").u64(writebacks);
    w.key("mem_accesses").u64(misses + writebacks);
}

fn bad_value(flag: &str, value: &str) -> ExitCode {
    eprintln!("bad value `{value}` for {flag}\n");
    eprint!("{USAGE}");
    ExitCode::from(2)
}
