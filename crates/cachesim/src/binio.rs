//! Compact binary trace serialization.
//!
//! The text format (`Trace::to_text`) is convenient but ~16 bytes per
//! reference; kernel traces run to tens of millions of references. This
//! module stores each reference in 11 bytes:
//!
//! ```text
//! header:  magic "DVFT", version u8, name count u16,
//!          then per name: length u16 + UTF-8 bytes
//! records: ds u16 | kind u8 (0 = read, 1 = write) | addr u64   (LE)
//! ```

use crate::trace::{AccessKind, DsId, MemRef, Trace};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"DVFT";
const VERSION: u8 = 1;

/// Serialize a trace.
pub fn write_binary<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    let names: Vec<&str> = trace.registry.iter().map(|(_, n)| n).collect();
    let count = u16::try_from(names.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "too many structures"))?;
    w.write_all(&count.to_le_bytes())?;
    for name in names {
        let len = u16::try_from(name.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "name too long"))?;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(name.as_bytes())?;
    }
    for r in &trace.refs {
        w.write_all(&r.ds.0.to_le_bytes())?;
        w.write_all(&[match r.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        }])?;
        w.write_all(&r.addr.to_le_bytes())?;
    }
    Ok(())
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

/// Deserialize a trace written by [`write_binary`].
pub fn read_binary<R: Read>(mut r: R) -> io::Result<Trace> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a DVFT trace (bad magic)"));
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(bad("unsupported DVFT version"));
    }
    let mut buf2 = [0u8; 2];
    r.read_exact(&mut buf2)?;
    let count = u16::from_le_bytes(buf2);

    let mut trace = Trace::new();
    for _ in 0..count {
        r.read_exact(&mut buf2)?;
        let len = u16::from_le_bytes(buf2) as usize;
        let mut name = vec![0u8; len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("name is not UTF-8"))?;
        trace.registry.register(&name);
    }

    let mut record = [0u8; 11];
    loop {
        // Records run to EOF; a partial record is corruption.
        match r.read(&mut record[..1])? {
            0 => break,
            _ => r.read_exact(&mut record[1..])?,
        }
        let ds = u16::from_le_bytes([record[0], record[1]]);
        if ds >= count {
            return Err(bad("record names unregistered structure"));
        }
        let kind = match record[2] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            _ => return Err(bad("bad access kind byte")),
        };
        let addr = u64::from_le_bytes(record[3..11].try_into().expect("8 bytes"));
        trace.push(MemRef::new(DsId(ds), addr, kind));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        let grid = t.registry.register("Grid");
        t.push(MemRef::read(a, 0x10));
        t.push(MemRef::write(grid, u64::MAX));
        t.push(MemRef::read(a, 12345));
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.refs, t.refs);
        assert_eq!(back.registry.name(DsId(1)), "Grid");
    }

    #[test]
    fn record_size_is_eleven_bytes() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let header = 4 + 1 + 2 + (2 + 1) + (2 + 4);
        assert_eq!(buf.len(), header + 11 * t.len());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_binary(&b"NOPE"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_truncated_record() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_unknown_structure_id() {
        let mut t = Trace::new();
        t.registry.register("A");
        t.push(MemRef::read(DsId(0), 1));
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        // Corrupt the record's ds id (first record byte after the header).
        let header = 4 + 1 + 2 + 2 + 1;
        buf[header] = 9;
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_bad_kind_byte() {
        let mut t = Trace::new();
        t.registry.register("A");
        t.push(MemRef::read(DsId(0), 1));
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let header = 4 + 1 + 2 + 2 + 1;
        buf[header + 2] = 7;
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.registry.len(), 0);
    }
}
