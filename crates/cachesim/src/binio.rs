//! Compact binary trace serialization: fixed-width DVFT v1 and the
//! compressed block-indexed DVFT2 format.
//!
//! The text format (`Trace::to_text`) is convenient but ~16 bytes per
//! reference; kernel traces run to tens of millions of references.
//!
//! **v1** stores each reference in 11 bytes:
//!
//! ```text
//! header:  magic "DVFT", version u8 (= 1), name count u16,
//!          then per name: length u16 + UTF-8 bytes
//! records: ds u16 | kind u8 (0 = read, 1 = write) | addr u64   (LE)
//! ```
//!
//! **v2** ([`write_binary_v2`] / [`TraceWriter`]) delta-encodes addresses
//! per data structure with zigzag LEB128 varints, run-length-encodes
//! repeated strides, and groups records into independently decodable
//! blocks so a reader can fan block decoding across threads:
//!
//! ```text
//! file    = magic "DVFT", version u8 (= 2), block*, trailer
//! block   = 0x01, varint record_count, varint payload_len, payload
//! trailer = 0x00,
//!           varint name_count, { varint len, UTF-8 bytes }*,
//!           varint block_count, { varint body_offset, varint count }*,
//!           trailer_len u32 LE, end magic "2TFV"
//! ```
//!
//! Payload records are one tag byte plus optional varints. Tag bit 7 set
//! means a *run*: the low 7 bits repeat the previous record's
//! (structure, kind, address delta) 1–127 more times. Otherwise bit 0 is
//! the access kind, bits 1–5 the structure id (31 = escape, real id
//! follows as a varint) and bit 6 set reuses the structure's previous
//! delta (no varint follows). Per-structure delta state resets at every
//! block boundary, which is what makes blocks independently decodable.
//! [`TraceReader`] auto-detects the version; [`read_binary`] decodes v2
//! blocks in parallel with scoped threads.

use crate::trace::{AccessKind, DsId, DsRegistry, MemRef, Trace};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"DVFT";
const VERSION: u8 = 1;
const VERSION2: u8 = 2;
/// Bytes per serialized v1 reference record.
const RECORD_BYTES: usize = 11;

/// v2 body byte introducing a record block.
const BLOCK_MARKER: u8 = 0x01;
/// v2 body byte introducing the index trailer (end of blocks).
const END_MARKER: u8 = 0x00;
/// Trailing magic closing a v2 file.
const END_MAGIC: &[u8; 4] = b"2TFV";
/// Records per v2 block (the run/delta state reset interval, and the
/// granularity of parallel decode).
const BLOCK_RECORDS: u32 = 1 << 16;
/// Tag bit marking a run token.
const RUN_BIT: u8 = 0x80;
/// Tag bit reusing the structure's previous delta.
const REP_DELTA_BIT: u8 = 0x40;
/// In-tag structure id meaning "real id follows as a varint".
const ESCAPE_DS: u8 = 31;

/// Serialize a trace in the fixed-width v1 format.
pub fn write_binary<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    let names: Vec<&str> = trace.registry.iter().map(|(_, n)| n).collect();
    let count = u16::try_from(names.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "too many structures"))?;
    w.write_all(&count.to_le_bytes())?;
    for name in names {
        let len = u16::try_from(name.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "name too long"))?;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(name.as_bytes())?;
    }
    for r in &trace.refs {
        w.write_all(&r.ds.0.to_le_bytes())?;
        w.write_all(&[match r.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        }])?;
        w.write_all(&r.addr.to_le_bytes())?;
    }
    Ok(())
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// `read_exact` with a descriptive error naming the header field that was
/// cut short, instead of a bare `UnexpectedEof`.
fn read_exact_field<R: Read>(r: &mut R, buf: &mut [u8], field: &str) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            bad(format!(
                "truncated DVFT header: ran out of bytes in {field}"
            ))
        } else {
            e
        }
    })
}

/// Deserialize a trace written by [`write_binary`] or [`write_binary_v2`]
/// (the version is auto-detected).
///
/// Materializes the full reference vector — v2 files are decoded block-
/// parallel with scoped threads. For bounded-memory replay use
/// [`TraceReader`] and feed chunks straight into a simulator.
pub fn read_binary<R: Read>(r: R) -> io::Result<Trace> {
    let reader = TraceReader::new(r)?;
    let mut trace = Trace::new();
    for (_, name) in reader.registry().iter() {
        trace.registry.register(name);
    }
    match reader.inner {
        ReaderKind::V1(mut v1) => {
            let mut chunk = Vec::new();
            while v1.read_chunk(&mut chunk, DEFAULT_CHUNK)? > 0 {
                trace.refs.extend_from_slice(&chunk);
            }
        }
        ReaderKind::V2(v2) => {
            trace.refs = v2.decode_all_parallel()?;
        }
    }
    Ok(trace)
}

/// Default references per [`TraceReader::read_chunk`] call (~704 KiB of
/// records, ~1.5 MiB resident with the decoded `MemRef`s).
pub const DEFAULT_CHUNK: usize = 65_536;

/// Incremental DVFT reader: parses the header once, then decodes records
/// in caller-sized chunks so multi-gigabyte traces replay in bounded
/// memory.
///
/// ```no_run
/// use dvf_cachesim::{binio::TraceReader, CacheConfig, Simulator};
///
/// let file = std::fs::File::open("kernel.dvft").unwrap();
/// let mut reader = TraceReader::new(std::io::BufReader::new(file)).unwrap();
/// let mut sim = Simulator::new(CacheConfig::new(8, 8192, 64).unwrap());
/// let mut chunk = Vec::new();
/// while reader.read_chunk(&mut chunk, 65_536).unwrap() > 0 {
///     sim.run(&chunk);
/// }
/// let report = sim.finish();
/// ```
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inner: ReaderKind<R>,
}

#[derive(Debug)]
enum ReaderKind<R: Read> {
    V1(V1Reader<R>),
    V2(V2Reader),
}

impl<R: Read> TraceReader<R> {
    /// Parse the DVFT header and detect the format version.
    ///
    /// v1 leaves the reader positioned at the records and decodes them
    /// incrementally. v2 stores its structure dictionary and block index
    /// in a trailer, so the (compressed, several times smaller than the
    /// decoded references) remaining bytes are buffered up front and
    /// blocks are decoded lazily per [`TraceReader::read_chunk`] call.
    ///
    /// Headers come from untrusted input, so every length field is
    /// treated as a claim, not a fact: claims are validated against the
    /// bytes actually present, duplicate structure names are rejected
    /// (the registry would otherwise silently alias two slots to one id,
    /// shifting every later record's identity), and each failure names
    /// the field that was malformed.
    pub fn new(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        read_exact_field(&mut r, &mut magic, "magic")?;
        if &magic != MAGIC {
            return Err(bad("not a DVFT trace (bad magic)"));
        }
        let mut version = [0u8; 1];
        read_exact_field(&mut r, &mut version, "version")?;
        match version[0] {
            VERSION => Ok(Self {
                inner: ReaderKind::V1(V1Reader::after_header(r)?),
            }),
            VERSION2 => {
                let mut data = Vec::new();
                r.read_to_end(&mut data)?;
                Ok(Self {
                    inner: ReaderKind::V2(V2Reader::parse(data)?),
                })
            }
            v => Err(bad(format!(
                "unsupported DVFT version {v} (expected {VERSION} or {VERSION2})"
            ))),
        }
    }

    /// Data-structure names declared by the trace.
    pub fn registry(&self) -> &DsRegistry {
        match &self.inner {
            ReaderKind::V1(r) => &r.registry,
            ReaderKind::V2(r) => &r.registry,
        }
    }

    /// Detected format version (1 or 2).
    pub fn version(&self) -> u8 {
        match &self.inner {
            ReaderKind::V1(_) => VERSION,
            ReaderKind::V2(_) => VERSION2,
        }
    }

    /// Decode up to `max` references into `out` (cleared first), returning
    /// how many were produced. `Ok(0)` means the trace is exhausted.
    ///
    /// `max` bounds the *output*, not the scratch allocation: v1 input is
    /// staged through a fixed-size slab and v2 decodes one block at a
    /// time, so `read_chunk(&mut out, usize::MAX)` is safe (though `out`
    /// itself grows with the record count).
    pub fn read_chunk(&mut self, out: &mut Vec<MemRef>, max: usize) -> io::Result<usize> {
        match &mut self.inner {
            ReaderKind::V1(r) => r.read_chunk(out, max),
            ReaderKind::V2(r) => r.read_chunk(out, max),
        }
    }
}

/// Incremental decoder for the fixed-width v1 record stream.
#[derive(Debug)]
struct V1Reader<R: Read> {
    inner: R,
    registry: DsRegistry,
    /// Undecoded tail bytes carried between `read_chunk` calls (a read can
    /// end mid-record; only EOF mid-record is corruption).
    carry: Vec<u8>,
    eof: bool,
}

impl<R: Read> V1Reader<R> {
    /// Parse the v1 name table (the bytes after magic + version), leaving
    /// the reader positioned at the records.
    fn after_header(mut r: R) -> io::Result<Self> {
        let mut buf2 = [0u8; 2];
        read_exact_field(&mut r, &mut buf2, "structure count")?;
        let count = u16::from_le_bytes(buf2);

        let mut registry = DsRegistry::new();
        for idx in 0..count {
            read_exact_field(&mut r, &mut buf2, &format!("length of name {idx}"))?;
            let len = u16::from_le_bytes(buf2) as usize;
            // Bounded read: allocate as bytes arrive instead of trusting
            // `len` up front, then verify the claim was honest.
            let mut name = Vec::new();
            (&mut r).take(len as u64).read_to_end(&mut name)?;
            if name.len() < len {
                return Err(bad(format!(
                    "truncated DVFT header: name {idx} claims {len} bytes, only {} present",
                    name.len()
                )));
            }
            let name =
                String::from_utf8(name).map_err(|_| bad(format!("name {idx} is not UTF-8")))?;
            if registry.id(&name).is_some() {
                return Err(bad(format!("duplicate structure name `{name}` in header")));
            }
            registry.register(&name);
        }
        Ok(Self {
            inner: r,
            registry,
            carry: Vec::new(),
            eof: false,
        })
    }

    /// Raw bytes buffered per refill pass of [`read_chunk`]. A caller
    /// passing a huge `max` (or `usize::MAX` for "everything") gets its
    /// records in full, but the staging buffer never grows past this.
    const SLAB_BYTES: usize = 1 << 20;

    /// Decode up to `max` references into `out` (cleared first), returning
    /// how many were produced. `Ok(0)` means the trace is exhausted.
    ///
    /// `max` bounds the *output*, not the scratch allocation: input is
    /// staged through a fixed-size slab, so `read_chunk(&mut out, usize::MAX)`
    /// is safe (it decodes the whole trace without a proportional upfront
    /// buffer, though `out` itself grows with the record count).
    pub fn read_chunk(&mut self, out: &mut Vec<MemRef>, max: usize) -> io::Result<usize> {
        out.clear();
        if max == 0 {
            return Ok(0);
        }
        let count = self.registry.len() as u16;
        while out.len() < max {
            let budget = max - out.len();
            let want = budget
                .saturating_mul(RECORD_BYTES)
                .clamp(RECORD_BYTES, Self::SLAB_BYTES);
            // Top the carry buffer up to one slab of raw record bytes.
            while !self.eof && self.carry.len() < want {
                let start = self.carry.len();
                self.carry.resize(want, 0);
                let n = self.inner.read(&mut self.carry[start..])?;
                self.carry.truncate(start + n);
                if n == 0 {
                    self.eof = true;
                }
            }
            let whole_bytes = self.carry.len() / RECORD_BYTES * RECORD_BYTES;
            if self.eof && self.carry.len() > whole_bytes {
                return Err(bad(format!(
                    "truncated record at end of trace ({} stray bytes)",
                    self.carry.len() - whole_bytes
                )));
            }
            let take_bytes = budget.min(whole_bytes / RECORD_BYTES) * RECORD_BYTES;
            for record in self.carry[..take_bytes].chunks_exact(RECORD_BYTES) {
                let ds = u16::from_le_bytes([record[0], record[1]]);
                if ds >= count {
                    return Err(bad(format!(
                        "record names unregistered structure id {ds} (header declared {count})"
                    )));
                }
                let kind = match record[2] {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    k => return Err(bad(format!("bad access kind byte {k}"))),
                };
                let addr = u64::from_le_bytes(record[3..RECORD_BYTES].try_into().expect("8 bytes"));
                out.push(MemRef::new(DsId(ds), addr, kind));
            }
            self.carry.drain(..take_bytes);
            if self.eof && self.carry.is_empty() {
                break;
            }
            if take_bytes == 0 {
                // No whole record decoded and not at EOF shouldn't happen
                // (the refill loop runs until eof or >= RECORD_BYTES), but
                // guard against a pathological `Read` impl looping forever.
                break;
            }
        }
        Ok(out.len())
    }
}

// ---------------------------------------------------------------------------
// DVFT2: varint + delta + run-length encoding in indexed blocks.
// ---------------------------------------------------------------------------

/// Append an LEB128 varint.
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

/// Decode an LEB128 varint from `buf` at `*pos`, advancing `*pos`.
fn read_varint(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v = 0u64;
    for i in 0..10 {
        let Some(&b) = buf.get(*pos) else {
            return Err(bad("truncated varint"));
        };
        *pos += 1;
        // Byte 10 carries the top single bit of a u64: a larger low part
        // overflows, and a continuation bit would run past 64 bits.
        if i == 9 && b > 1 {
            return Err(bad("corrupt varint: continuation past 64 bits"));
        }
        v |= ((b & 0x7f) as u64) << (7 * i);
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    unreachable!("loop returns or errors within 10 bytes");
}

/// Zigzag-map a signed delta so small magnitudes of either sign get short
/// varints.
#[inline]
fn zigzag_encode(d: i64) -> u64 {
    ((d as u64) << 1) ^ ((d >> 63) as u64)
}

/// Inverse of [`zigzag_encode`].
#[inline]
fn zigzag_decode(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Streaming DVFT2 encoder.
///
/// Register structure names (in [`DsId`] order), push references, then
/// call [`TraceWriter::finish`] — the name dictionary and block index are
/// written as a trailer, so the encoder itself never buffers more than
/// one block.
///
/// ```no_run
/// use dvf_cachesim::binio::TraceWriter;
/// use dvf_cachesim::MemRef;
///
/// let file = std::fs::File::create("kernel.dvft").unwrap();
/// let mut w = TraceWriter::new(std::io::BufWriter::new(file)).unwrap();
/// let a = w.register("A").unwrap();
/// for i in 0..1_000u64 {
///     w.push(MemRef::read(a, i * 8)).unwrap();
/// }
/// w.finish().unwrap();
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    names: Vec<String>,
    /// Per-structure previous address (reset each block).
    last_addr: Vec<u64>,
    /// Per-structure previous delta (reset each block).
    last_delta: Vec<i64>,
    /// (ds, kind) of the previous record in the current block.
    prev: Option<(u16, AccessKind)>,
    /// Pending run length extending the previous record (≤ 127).
    run: u32,
    /// Payload bytes of the block being built.
    block: Vec<u8>,
    /// Records already encoded into `block` (excluding the pending run).
    block_records: u32,
    /// Body bytes written so far (block offsets for the index).
    body_pos: u64,
    /// (body offset, record count) per flushed block.
    index: Vec<(u64, u32)>,
}

impl<W: Write> TraceWriter<W> {
    /// Start a v2 trace, writing the file header immediately.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(MAGIC)?;
        out.write_all(&[VERSION2])?;
        Ok(Self {
            out,
            names: Vec::new(),
            last_addr: Vec::new(),
            last_delta: Vec::new(),
            prev: None,
            run: 0,
            block: Vec::new(),
            block_records: 0,
            body_pos: 0,
            index: Vec::new(),
        })
    }

    /// Register a structure name, returning its id. Registering the same
    /// name twice returns the existing id.
    pub fn register(&mut self, name: &str) -> io::Result<DsId> {
        if let Some(pos) = self.names.iter().position(|n| n == name) {
            return Ok(DsId(pos as u16));
        }
        if self.names.len() >= u16::MAX as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "too many structures",
            ));
        }
        self.names.push(name.to_owned());
        self.last_addr.push(0);
        self.last_delta.push(0);
        Ok(DsId((self.names.len() - 1) as u16))
    }

    /// Register every name of an existing registry, preserving ids.
    pub fn register_all(&mut self, registry: &DsRegistry) -> io::Result<()> {
        for (_, name) in registry.iter() {
            self.register(name)?;
        }
        Ok(())
    }

    /// Encode one reference. Its structure id must already be registered.
    #[inline]
    pub fn push(&mut self, r: MemRef) -> io::Result<()> {
        let dsi = r.ds.index();
        if dsi >= self.names.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("reference names unregistered structure id {}", r.ds.0),
            ));
        }
        let delta = r.addr.wrapping_sub(self.last_addr[dsi]) as i64;
        if self.prev == Some((r.ds.0, r.kind)) && delta == self.last_delta[dsi] {
            // Extends the previous record: same structure, kind and stride.
            self.last_addr[dsi] = r.addr;
            self.run += 1;
            if self.run == 127 {
                self.flush_run();
            }
        } else {
            self.flush_run();
            let esc = dsi >= ESCAPE_DS as usize;
            let rep = delta == self.last_delta[dsi];
            let ds_bits = if esc { ESCAPE_DS } else { dsi as u8 };
            let tag = (ds_bits << 1)
                | match r.kind {
                    AccessKind::Read => 0,
                    AccessKind::Write => 1,
                }
                | if rep { REP_DELTA_BIT } else { 0 };
            self.block.push(tag);
            if esc {
                write_varint(&mut self.block, dsi as u64);
            }
            if !rep {
                write_varint(&mut self.block, zigzag_encode(delta));
            }
            self.last_addr[dsi] = r.addr;
            self.last_delta[dsi] = delta;
            self.prev = Some((r.ds.0, r.kind));
            self.block_records += 1;
        }
        if self.block_records + self.run >= BLOCK_RECORDS {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Materialize the pending run as a run token.
    fn flush_run(&mut self) {
        if self.run > 0 {
            self.block.push(RUN_BIT | self.run as u8);
            self.block_records += self.run;
            self.run = 0;
        }
    }

    /// Write out the current block (if non-empty) and reset delta state.
    fn flush_block(&mut self) -> io::Result<()> {
        self.flush_run();
        if self.block_records == 0 {
            return Ok(());
        }
        self.index.push((self.body_pos, self.block_records));
        let mut header = Vec::with_capacity(11);
        header.push(BLOCK_MARKER);
        write_varint(&mut header, self.block_records as u64);
        write_varint(&mut header, self.block.len() as u64);
        self.out.write_all(&header)?;
        self.out.write_all(&self.block)?;
        self.body_pos += (header.len() + self.block.len()) as u64;
        self.block.clear();
        self.block_records = 0;
        self.prev = None;
        self.last_addr.fill(0);
        self.last_delta.fill(0);
        Ok(())
    }

    /// Flush the final block, write the dictionary + block index trailer
    /// and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_block()?;
        let mut trailer = Vec::new();
        write_varint(&mut trailer, self.names.len() as u64);
        for n in &self.names {
            write_varint(&mut trailer, n.len() as u64);
            trailer.extend_from_slice(n.as_bytes());
        }
        write_varint(&mut trailer, self.index.len() as u64);
        for &(off, count) in &self.index {
            write_varint(&mut trailer, off);
            write_varint(&mut trailer, count as u64);
        }
        let tlen = u32::try_from(1 + trailer.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "index trailer too large"))?;
        self.out.write_all(&[END_MARKER])?;
        self.out.write_all(&trailer)?;
        self.out.write_all(&tlen.to_le_bytes())?;
        self.out.write_all(END_MAGIC)?;
        Ok(self.out)
    }
}

/// Serialize a trace in the compressed block-indexed v2 format.
pub fn write_binary_v2<W: Write>(trace: &Trace, w: W) -> io::Result<()> {
    let mut tw = TraceWriter::new(w)?;
    tw.register_all(&trace.registry)?;
    for &r in &trace.refs {
        tw.push(r)?;
    }
    tw.finish()?;
    Ok(())
}

/// One parsed v2 block: payload location (absolute offsets into the
/// buffered file bytes) and its record count from the index.
#[derive(Debug, Clone)]
struct BlockEntry {
    payload_start: usize,
    payload_len: usize,
    count: usize,
}

/// Buffered v2 decoder: the trailer is parsed up front, blocks decode
/// lazily (sequentially via `read_chunk`, or block-parallel via
/// `decode_all_parallel`).
#[derive(Debug)]
struct V2Reader {
    /// Every byte after magic + version.
    data: Vec<u8>,
    registry: DsRegistry,
    blocks: Vec<BlockEntry>,
    next_block: usize,
    pending: Vec<MemRef>,
    pending_pos: usize,
}

impl V2Reader {
    /// Parse the trailer (dictionary + block index) and cross-check the
    /// index against the actual block layout. Every length and offset is
    /// an untrusted claim; a record count is additionally bounded by the
    /// most a payload of that size could decode to (127 records per run
    /// byte), so a corrupt index cannot demand absurd allocations.
    fn parse(data: Vec<u8>) -> io::Result<V2Reader> {
        let (registry, blocks) = parse_v2_container(&data)?;
        Ok(V2Reader {
            data,
            registry,
            blocks,
            next_block: 0,
            pending: Vec::new(),
            pending_pos: 0,
        })
    }

    /// Sequential chunked decode (see [`TraceReader::read_chunk`]).
    fn read_chunk(&mut self, out: &mut Vec<MemRef>, max: usize) -> io::Result<usize> {
        out.clear();
        if max == 0 {
            return Ok(0);
        }
        while out.len() < max {
            if self.pending_pos == self.pending.len() {
                let Some(entry) = self.blocks.get(self.next_block).cloned() else {
                    break;
                };
                self.next_block += 1;
                self.pending.clear();
                self.pending_pos = 0;
                self.pending.reserve(entry.count);
                let payload =
                    &self.data[entry.payload_start..entry.payload_start + entry.payload_len];
                let pending = &mut self.pending;
                decode_block(payload, entry.count, self.registry.len(), |r| {
                    pending.push(r);
                })?;
            }
            let take = (max - out.len()).min(self.pending.len() - self.pending_pos);
            out.extend_from_slice(&self.pending[self.pending_pos..self.pending_pos + take]);
            self.pending_pos += take;
        }
        Ok(out.len())
    }

    /// Decode every block, fanning independent blocks across scoped
    /// threads, and return the full reference vector.
    fn decode_all_parallel(self) -> io::Result<Vec<MemRef>> {
        let names = self.registry.len();
        let total = self
            .blocks
            .iter()
            .try_fold(0usize, |a, b| a.checked_add(b.count))
            .ok_or_else(|| bad("block index record count overflows"))?;
        let mut refs = vec![MemRef::read(DsId(0), 0); total];
        if self.blocks.is_empty() {
            return Ok(refs);
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(self.blocks.len());
        // Contiguous per-worker groups of (block, output slot) pairs.
        let per = self.blocks.len().div_ceil(workers);
        let mut groups: Vec<Vec<(&BlockEntry, &mut [MemRef])>> =
            (0..workers).map(|_| Vec::new()).collect();
        let mut rest = refs.as_mut_slice();
        for (i, entry) in self.blocks.iter().enumerate() {
            let (slot, tail) = std::mem::take(&mut rest).split_at_mut(entry.count);
            rest = tail;
            groups[i / per].push((entry, slot));
        }
        let data = &self.data;
        std::thread::scope(|s| -> io::Result<()> {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|group| {
                    s.spawn(move || -> io::Result<()> {
                        for (entry, slot) in group {
                            let payload =
                                &data[entry.payload_start..entry.payload_start + entry.payload_len];
                            let mut i = 0;
                            decode_block(payload, entry.count, names, |r| {
                                slot[i] = r;
                                i += 1;
                            })?;
                        }
                        Ok(())
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("v2 decode worker panicked")?;
            }
            Ok(())
        })?;
        Ok(refs)
    }
}

/// Parse a v2 container (everything after magic + version): dictionary,
/// block index, and full cross-check of the index against the body.
fn parse_v2_container(data: &[u8]) -> io::Result<(DsRegistry, Vec<BlockEntry>)> {
    let n = data.len();
    if n < 8 {
        return Err(bad("truncated DVFT2 trace: missing index trailer"));
    }
    if &data[n - 4..] != END_MAGIC {
        return Err(bad(
            "truncated DVFT2 trace: end magic missing (block index cut short?)",
        ));
    }
    let tlen = u32::from_le_bytes(data[n - 8..n - 4].try_into().expect("4 bytes")) as usize;
    let trailer_start = n
        .checked_sub(8)
        .and_then(|v| v.checked_sub(tlen))
        .ok_or_else(|| bad("corrupt DVFT2 block index: trailer length exceeds file"))?;
    if tlen == 0 || data[trailer_start] != END_MARKER {
        return Err(bad(
            "corrupt DVFT2 block index: end-of-blocks sentinel missing",
        ));
    }
    let trailer = &data[trailer_start + 1..n - 8];
    let mut pos = 0usize;

    let name_count = read_varint(trailer, &mut pos)?;
    if name_count > u16::MAX as u64 {
        return Err(bad(format!("too many structures ({name_count})")));
    }
    let mut registry = DsRegistry::new();
    for idx in 0..name_count {
        let len = usize::try_from(read_varint(trailer, &mut pos)?)
            .map_err(|_| bad(format!("name {idx} length overflows")))?;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= trailer.len())
            .ok_or_else(|| {
                bad(format!(
                    "truncated DVFT2 dictionary: name {idx} claims {len} bytes"
                ))
            })?;
        let name = std::str::from_utf8(&trailer[pos..end])
            .map_err(|_| bad(format!("name {idx} is not UTF-8")))?;
        if registry.id(name).is_some() {
            return Err(bad(format!(
                "duplicate structure name `{name}` in dictionary"
            )));
        }
        registry.register(name);
        pos = end;
    }

    let body = &data[..trailer_start];
    let block_count = read_varint(trailer, &mut pos)?;
    // Every block occupies at least 4 body bytes (marker + two varints +
    // one payload byte): bound the claim before allocating the index.
    if block_count > (body.len() as u64) / 4 {
        return Err(bad(
            "corrupt DVFT2 block index: more blocks than the body could hold",
        ));
    }
    let mut blocks = Vec::with_capacity(block_count as usize);
    let mut expected = 0usize;
    for b in 0..block_count {
        let off = usize::try_from(read_varint(trailer, &mut pos)?)
            .map_err(|_| bad(format!("block {b} offset overflows")))?;
        let count = read_varint(trailer, &mut pos)?;
        if off != expected {
            return Err(bad(format!(
                "corrupt DVFT2 block index: block {b} at offset {off} does not abut the previous block (expected {expected})"
            )));
        }
        if body.get(off) != Some(&BLOCK_MARKER) {
            return Err(bad(format!(
                "corrupt DVFT2 block index: no block at offset {off}"
            )));
        }
        let mut hpos = off + 1;
        let hcount = read_varint(body, &mut hpos)?;
        let plen = usize::try_from(read_varint(body, &mut hpos)?)
            .map_err(|_| bad(format!("block {b} payload length overflows")))?;
        if hcount != count {
            return Err(bad(format!(
                "block {b}: index claims {count} records, block header says {hcount}"
            )));
        }
        if count == 0 {
            return Err(bad(format!("block {b} is empty")));
        }
        if count > (plen as u64).saturating_mul(127) {
            return Err(bad(format!(
                "block {b}: record count {count} impossible for a {plen}-byte payload"
            )));
        }
        let pend = hpos
            .checked_add(plen)
            .filter(|&e| e <= body.len())
            .ok_or_else(|| bad(format!("block {b}: truncated payload")))?;
        blocks.push(BlockEntry {
            payload_start: hpos,
            payload_len: plen,
            count: count as usize,
        });
        expected = pend;
    }
    if expected != body.len() {
        return Err(bad("DVFT2 body bytes not covered by the block index"));
    }
    if pos != trailer.len() {
        return Err(bad("trailing garbage in DVFT2 index trailer"));
    }
    Ok((registry, blocks))
}

/// Decode one block payload, emitting exactly `count` references.
///
/// Per-structure delta state starts from zero (the writer resets at
/// block boundaries), so blocks decode independently of each other.
fn decode_block(
    payload: &[u8],
    count: usize,
    names: usize,
    mut emit: impl FnMut(MemRef),
) -> io::Result<()> {
    let mut last_addr = vec![0u64; names];
    let mut last_delta = vec![0i64; names];
    let mut prev: Option<(u16, AccessKind)> = None;
    let mut pos = 0usize;
    let mut emitted = 0usize;
    while emitted < count {
        let Some(&tag) = payload.get(pos) else {
            return Err(bad("truncated block payload"));
        };
        pos += 1;
        if tag & RUN_BIT != 0 {
            let n = (tag & 0x7f) as usize;
            if n == 0 {
                return Err(bad("zero-length run token"));
            }
            let Some((ds, kind)) = prev else {
                return Err(bad("run token with no preceding record in block"));
            };
            if emitted + n > count {
                return Err(bad("run token overruns the block record count"));
            }
            let d = last_delta[ds as usize];
            let mut addr = last_addr[ds as usize];
            for _ in 0..n {
                addr = addr.wrapping_add(d as u64);
                emit(MemRef::new(DsId(ds), addr, kind));
            }
            last_addr[ds as usize] = addr;
            emitted += n;
        } else {
            let kind = if tag & 1 == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            let mut ds = ((tag >> 1) & 0x1f) as u64;
            if ds == ESCAPE_DS as u64 {
                ds = read_varint(payload, &mut pos)?;
            }
            if ds >= names as u64 {
                return Err(bad(format!(
                    "record names out-of-range structure id {ds} (dictionary has {names})"
                )));
            }
            let dsi = ds as usize;
            let d = if tag & REP_DELTA_BIT != 0 {
                last_delta[dsi]
            } else {
                zigzag_decode(read_varint(payload, &mut pos)?)
            };
            let addr = last_addr[dsi].wrapping_add(d as u64);
            last_addr[dsi] = addr;
            last_delta[dsi] = d;
            prev = Some((ds as u16, kind));
            emit(MemRef::new(DsId(ds as u16), addr, kind));
            emitted += 1;
        }
    }
    if pos != payload.len() {
        return Err(bad("trailing bytes in block payload"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        let grid = t.registry.register("Grid");
        t.push(MemRef::read(a, 0x10));
        t.push(MemRef::write(grid, u64::MAX));
        t.push(MemRef::read(a, 12345));
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.refs, t.refs);
        assert_eq!(back.registry.name(DsId(1)), "Grid");
    }

    #[test]
    fn record_size_is_eleven_bytes() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let header = 4 + 1 + 2 + (2 + 1) + (2 + 4);
        assert_eq!(buf.len(), header + 11 * t.len());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_binary(&b"NOPE"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_truncated_record() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_unknown_structure_id() {
        let mut t = Trace::new();
        t.registry.register("A");
        t.push(MemRef::read(DsId(0), 1));
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        // Corrupt the record's ds id (first record byte after the header).
        let header = 4 + 1 + 2 + 2 + 1;
        buf[header] = 9;
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_bad_kind_byte() {
        let mut t = Trace::new();
        t.registry.register("A");
        t.push(MemRef::read(DsId(0), 1));
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let header = 4 + 1 + 2 + 2 + 1;
        buf[header + 2] = 7;
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn chunked_reader_matches_full_read() {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        let b = t.registry.register("B");
        for i in 0..1000u64 {
            let ds = if i % 3 == 0 { b } else { a };
            t.push(MemRef::new(ds, i * 17, AccessKind::Read));
        }
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();

        // Chunk sizes that do and don't divide the record count.
        for chunk_size in [1usize, 7, 100, 1000, 5000] {
            let mut reader = TraceReader::new(buf.as_slice()).unwrap();
            assert_eq!(reader.registry().len(), 2);
            let mut refs = Vec::new();
            let mut chunk = Vec::new();
            loop {
                let n = reader.read_chunk(&mut chunk, chunk_size).unwrap();
                if n == 0 {
                    break;
                }
                assert!(n <= chunk_size);
                refs.extend_from_slice(&chunk);
            }
            assert_eq!(refs, t.refs, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn chunked_reader_rejects_truncation() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let mut chunk = Vec::new();
        let mut err = None;
        loop {
            match reader.read_chunk(&mut chunk, 2) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(err.unwrap().to_string().contains("truncated"));
    }

    /// A reader that hands out one byte per `read` call: worst-case
    /// fragmentation for the carry buffer.
    struct Dribble<'a>(&'a [u8]);

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn rejects_truncation_mid_header() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        // Header layout: magic(4) version(1) count(2) | len(2) "A" | len(2) "Grid".
        // Cut at every prefix of the header and demand a descriptive error.
        let header_len = 4 + 1 + 2 + (2 + 1) + (2 + 4);
        for cut in 0..header_len {
            let err = TraceReader::new(&buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
            let msg = err.to_string();
            assert!(
                msg.contains("truncated") || msg.contains("magic") || msg.contains("claims"),
                "cut at {cut}: {msg}"
            );
        }
        // The full header parses.
        assert!(TraceReader::new(&buf[..header_len]).is_ok());
    }

    #[test]
    fn rejects_duplicate_header_names() {
        // Hand-built header declaring "A" twice: the registry would
        // otherwise dedupe them and alias two ids onto one slot.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DVFT");
        buf.push(1);
        buf.extend_from_slice(&2u16.to_le_bytes());
        for _ in 0..2 {
            buf.extend_from_slice(&1u16.to_le_bytes());
            buf.push(b'A');
        }
        let err = TraceReader::new(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn header_claiming_more_than_present_is_rejected() {
        // count = 65535 and a name length claiming 65535 bytes against a
        // near-empty input: must error out, not trust the claim.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DVFT");
        buf.push(1);
        buf.extend_from_slice(&u16::MAX.to_le_bytes());
        buf.extend_from_slice(&u16::MAX.to_le_bytes());
        buf.extend_from_slice(b"tiny");
        let err = TraceReader::new(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("claims"), "{msg}");
    }

    #[test]
    fn read_chunk_with_max_below_record_count() {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for i in 0..10u64 {
            t.push(MemRef::read(a, i));
        }
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();

        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let mut chunk = Vec::new();
        let mut sizes = Vec::new();
        let mut refs = Vec::new();
        loop {
            let n = reader.read_chunk(&mut chunk, 3).unwrap();
            if n == 0 {
                break;
            }
            sizes.push(n);
            refs.extend_from_slice(&chunk);
        }
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        assert_eq!(refs, t.refs);
    }

    #[test]
    fn read_chunk_with_huge_max_stays_bounded() {
        // `max` bounds output, not scratch: usize::MAX must not attempt a
        // proportional allocation (the old code computed max * 11 bytes).
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for i in 0..1000u64 {
            t.push(MemRef::read(a, i));
        }
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let mut chunk = Vec::new();
        assert_eq!(reader.read_chunk(&mut chunk, usize::MAX).unwrap(), 1000);
        assert_eq!(chunk, t.refs);
        assert_eq!(reader.read_chunk(&mut chunk, usize::MAX).unwrap(), 0);
    }

    #[test]
    fn chunked_reader_survives_fragmented_reads() {
        // A one-byte-at-a-time reader forces every carry-buffer partial
        // fill path; decoded output must still be identical.
        let mut t = Trace::new();
        let a = t.registry.register("A");
        let b = t.registry.register("B");
        for i in 0..257u64 {
            let ds = if i % 2 == 0 { a } else { b };
            t.push(MemRef::new(ds, i * 31, AccessKind::Read));
        }
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();

        let mut reader = TraceReader::new(Dribble(&buf)).unwrap();
        assert_eq!(reader.registry().len(), 2);
        let mut refs = Vec::new();
        let mut chunk = Vec::new();
        loop {
            let n = reader.read_chunk(&mut chunk, 7).unwrap();
            if n == 0 {
                break;
            }
            refs.extend_from_slice(&chunk);
        }
        assert_eq!(refs, t.refs);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.registry.len(), 0);
    }

    // -- DVFT2 --

    fn encode_v2(t: &Trace) -> Vec<u8> {
        let mut buf = Vec::new();
        write_binary_v2(t, &mut buf).unwrap();
        buf
    }

    #[test]
    fn varint_roundtrips() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // Eleven continuation bytes: runs past 64 bits.
        let buf = [0xffu8; 11];
        let mut pos = 0;
        let err = read_varint(&buf, &mut pos).unwrap_err();
        assert!(err.to_string().contains("varint"), "{err}");
        // Continuation bit set on the final available byte.
        let buf = [0x80u8];
        let mut pos = 0;
        let err = read_varint(&buf, &mut pos).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn zigzag_roundtrips() {
        for d in [
            0i64,
            1,
            -1,
            63,
            -64,
            1 << 40,
            -(1 << 40),
            i64::MAX,
            i64::MIN,
        ] {
            assert_eq!(zigzag_decode(zigzag_encode(d)), d);
        }
        // Small magnitudes of either sign map to small codes.
        assert!(zigzag_encode(-3) < 8);
        assert!(zigzag_encode(3) < 8);
    }

    #[test]
    fn v2_roundtrip() {
        let t = sample();
        let buf = encode_v2(&t);
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.refs, t.refs);
        assert_eq!(back.registry.name(DsId(1)), "Grid");
    }

    #[test]
    fn v2_empty_trace_roundtrips() {
        let t = Trace::new();
        let buf = encode_v2(&t);
        let back = read_binary(buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.registry.len(), 0);
    }

    #[test]
    fn v2_reader_reports_version_and_registry() {
        let t = sample();
        let buf = encode_v2(&t);
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.version(), 2);
        assert_eq!(reader.registry().len(), 2);
        let mut v1buf = Vec::new();
        write_binary(&t, &mut v1buf).unwrap();
        assert_eq!(TraceReader::new(v1buf.as_slice()).unwrap().version(), 1);
    }

    /// A mixed-pattern trace exercising runs, delta reuse, kind flips,
    /// escaped structure ids (> 30) and wild address jumps.
    fn gnarly_trace() -> Trace {
        let mut t = Trace::new();
        let ids: Vec<DsId> = (0..40)
            .map(|i| t.registry.register(&format!("ds{i}")))
            .collect();
        // Strided run on ds0.
        for i in 0..500u64 {
            t.push(MemRef::read(ids[0], 0x1000 + i * 64));
        }
        // Interleaved writes on an escaped id.
        for i in 0..100u64 {
            t.push(MemRef::write(ids[35], (1 << 40) | (i * 8)));
            t.push(MemRef::read(ids[3], i * 32));
        }
        // Address extremes and backwards strides.
        t.push(MemRef::read(ids[39], u64::MAX));
        t.push(MemRef::read(ids[39], 0));
        t.push(MemRef::write(ids[39], u64::MAX / 2));
        for i in (0..300u64).rev() {
            t.push(MemRef::write(ids[2], i * 128));
        }
        // Kind flip breaking a run at the same stride.
        for i in 0..50u64 {
            let r = MemRef::new(
                ids[1],
                i * 8,
                if i == 25 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            );
            t.push(r);
        }
        t
    }

    #[test]
    fn v2_roundtrip_gnarly() {
        let t = gnarly_trace();
        let buf = encode_v2(&t);
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.refs, t.refs);
        assert_eq!(back.registry.len(), t.registry.len());
    }

    #[test]
    fn v2_multi_block_roundtrip_and_chunked_reads() {
        // > 2 blocks worth of records, mixing runs and random jumps.
        let mut t = Trace::new();
        let a = t.registry.register("A");
        let b = t.registry.register("B");
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in 0..200_000u64 {
            if i % 5 == 0 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                t.push(MemRef::read(b, state % (1 << 22)));
            } else {
                t.push(MemRef::read(a, i * 8));
            }
        }
        let buf = encode_v2(&t);
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.refs.len(), t.refs.len());
        assert_eq!(back.refs, t.refs);

        // Chunk sizes that do and don't divide block boundaries.
        for chunk_size in [913usize, 65_536, 100_000] {
            let mut reader = TraceReader::new(buf.as_slice()).unwrap();
            let mut refs = Vec::new();
            let mut chunk = Vec::new();
            loop {
                let n = reader.read_chunk(&mut chunk, chunk_size).unwrap();
                if n == 0 {
                    break;
                }
                assert!(n <= chunk_size);
                refs.extend_from_slice(&chunk);
            }
            assert_eq!(refs, t.refs, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn v2_compresses_streaming_traces() {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for i in 0..100_000u64 {
            t.push(MemRef::read(a, i * 8));
        }
        let mut v1 = Vec::new();
        write_binary(&t, &mut v1).unwrap();
        let v2 = encode_v2(&t);
        // Strided single-structure streams are nearly pure run tokens.
        assert!(
            v2.len() * 100 < v1.len(),
            "v1 {} bytes, v2 {} bytes",
            v1.len(),
            v2.len()
        );
    }

    #[test]
    fn v2_rejects_truncation_at_every_cut() {
        let t = sample();
        let buf = encode_v2(&t);
        for cut in 0..buf.len() {
            assert!(
                read_binary(&buf[..cut]).is_err(),
                "cut at {cut} of {} decoded",
                buf.len()
            );
        }
    }

    #[test]
    fn v2_rejects_out_of_range_ds() {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        t.push(MemRef::read(a, 0x40));
        let mut buf = encode_v2(&t);
        // Body starts after "DVFT\x02"; block header is marker + two
        // one-byte varints, so the first payload byte (the record tag) is
        // at offset 8. Rewrite its ds bits to the unregistered id 5.
        assert_eq!(buf[5], BLOCK_MARKER);
        buf[8] = 5 << 1;
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("out-of-range"), "{err}");
    }

    #[test]
    fn v2_rejects_trailer_length_lies() {
        let t = sample();
        let buf = encode_v2(&t);
        let n = buf.len();
        // Claim a trailer longer than the file.
        let mut lie = buf.clone();
        lie[n - 8..n - 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_binary(lie.as_slice()).is_err());
        // Claim a zero-length trailer (sentinel byte missing).
        let mut lie = buf.clone();
        lie[n - 8..n - 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(read_binary(lie.as_slice()).is_err());
        // Break the end magic.
        let mut lie = buf;
        lie[n - 1] ^= 0xff;
        let err = read_binary(lie.as_slice()).unwrap_err();
        assert!(err.to_string().contains("end magic"), "{err}");
    }

    #[test]
    fn v2_rejects_index_count_mismatch() {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for i in 0..10u64 {
            t.push(MemRef::read(a, i * 64));
        }
        let mut buf = encode_v2(&t);
        // Block header: marker at 5, record count varint at 6 (value 10).
        assert_eq!(buf[5], BLOCK_MARKER);
        assert_eq!(buf[6], 10);
        buf[6] = 9;
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("index claims"), "{err}");
    }

    #[test]
    fn v2_writer_rejects_unregistered_ds() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.register("A").unwrap();
        assert!(w.push(MemRef::read(DsId(3), 0)).is_err());
    }

    #[test]
    fn v2_writer_register_deduplicates() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        let a = w.register("A").unwrap();
        let b = w.register("B").unwrap();
        assert_eq!(w.register("A").unwrap(), a);
        assert_ne!(a, b);
    }

    #[test]
    fn v1_golden_bytes_decode_byte_exactly() {
        // Hand-assembled v1 file: two names, three records. Guards v1
        // wire-format compatibility against regressions while v2 evolves.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DVFT");
        buf.push(1);
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.push(b'A');
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(b"Grid");
        for (ds, kind, addr) in [(0u16, 0u8, 0x10u64), (1, 1, u64::MAX), (0, 0, 12345)] {
            buf.extend_from_slice(&ds.to_le_bytes());
            buf.push(kind);
            buf.extend_from_slice(&addr.to_le_bytes());
        }
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.refs, sample().refs);
        assert_eq!(back.registry.name(DsId(0)), "A");
        assert_eq!(back.registry.name(DsId(1)), "Grid");
        // And the same trace re-encoded as v1 is byte-identical.
        let mut reenc = Vec::new();
        write_binary(&back, &mut reenc).unwrap();
        assert_eq!(reenc, buf);
    }

    #[test]
    fn v2_rejects_unknown_version_byte() {
        let buf = b"DVFT\x03rest";
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("unsupported"), "{err}");
    }
}
