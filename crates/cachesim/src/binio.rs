//! Compact binary trace serialization.
//!
//! The text format (`Trace::to_text`) is convenient but ~16 bytes per
//! reference; kernel traces run to tens of millions of references. This
//! module stores each reference in 11 bytes:
//!
//! ```text
//! header:  magic "DVFT", version u8, name count u16,
//!          then per name: length u16 + UTF-8 bytes
//! records: ds u16 | kind u8 (0 = read, 1 = write) | addr u64   (LE)
//! ```

use crate::trace::{AccessKind, DsId, DsRegistry, MemRef, Trace};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"DVFT";
const VERSION: u8 = 1;
/// Bytes per serialized reference record.
const RECORD_BYTES: usize = 11;

/// Serialize a trace.
pub fn write_binary<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    let names: Vec<&str> = trace.registry.iter().map(|(_, n)| n).collect();
    let count = u16::try_from(names.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "too many structures"))?;
    w.write_all(&count.to_le_bytes())?;
    for name in names {
        let len = u16::try_from(name.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "name too long"))?;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(name.as_bytes())?;
    }
    for r in &trace.refs {
        w.write_all(&r.ds.0.to_le_bytes())?;
        w.write_all(&[match r.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        }])?;
        w.write_all(&r.addr.to_le_bytes())?;
    }
    Ok(())
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// `read_exact` with a descriptive error naming the header field that was
/// cut short, instead of a bare `UnexpectedEof`.
fn read_exact_field<R: Read>(r: &mut R, buf: &mut [u8], field: &str) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            bad(format!(
                "truncated DVFT header: ran out of bytes in {field}"
            ))
        } else {
            e
        }
    })
}

/// Deserialize a trace written by [`write_binary`].
///
/// Materializes the full reference vector; for bounded-memory replay use
/// [`TraceReader`] and feed chunks straight into a simulator.
pub fn read_binary<R: Read>(r: R) -> io::Result<Trace> {
    let mut reader = TraceReader::new(r)?;
    let mut trace = Trace::new();
    for (_, name) in reader.registry().iter() {
        trace.registry.register(name);
    }
    let mut chunk = Vec::new();
    while reader.read_chunk(&mut chunk, DEFAULT_CHUNK)? > 0 {
        trace.refs.extend_from_slice(&chunk);
    }
    Ok(trace)
}

/// Default references per [`TraceReader::read_chunk`] call (~704 KiB of
/// records, ~1.5 MiB resident with the decoded `MemRef`s).
pub const DEFAULT_CHUNK: usize = 65_536;

/// Incremental DVFT reader: parses the header once, then decodes records
/// in caller-sized chunks so multi-gigabyte traces replay in bounded
/// memory.
///
/// ```no_run
/// use dvf_cachesim::{binio::TraceReader, CacheConfig, Simulator};
///
/// let file = std::fs::File::open("kernel.dvft").unwrap();
/// let mut reader = TraceReader::new(std::io::BufReader::new(file)).unwrap();
/// let mut sim = Simulator::new(CacheConfig::new(8, 8192, 64).unwrap());
/// let mut chunk = Vec::new();
/// while reader.read_chunk(&mut chunk, 65_536).unwrap() > 0 {
///     sim.run(&chunk);
/// }
/// let report = sim.finish();
/// ```
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inner: R,
    registry: DsRegistry,
    /// Undecoded tail bytes carried between `read_chunk` calls (a read can
    /// end mid-record; only EOF mid-record is corruption).
    carry: Vec<u8>,
    eof: bool,
}

impl<R: Read> TraceReader<R> {
    /// Parse the DVFT header, leaving the reader positioned at the records.
    ///
    /// The header comes from untrusted input, so every length field is
    /// treated as a claim, not a fact: name bytes are read through a
    /// [`Read::take`] bound so a header advertising a huge name against a
    /// tiny file allocates only what actually arrives, duplicate names are
    /// rejected (the registry would otherwise silently alias two header
    /// slots to one id, shifting every later record's identity), and each
    /// failure names the field that was malformed.
    pub fn new(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        read_exact_field(&mut r, &mut magic, "magic")?;
        if &magic != MAGIC {
            return Err(bad("not a DVFT trace (bad magic)"));
        }
        let mut version = [0u8; 1];
        read_exact_field(&mut r, &mut version, "version")?;
        if version[0] != VERSION {
            return Err(bad(format!(
                "unsupported DVFT version {} (expected {VERSION})",
                version[0]
            )));
        }
        let mut buf2 = [0u8; 2];
        read_exact_field(&mut r, &mut buf2, "structure count")?;
        let count = u16::from_le_bytes(buf2);

        let mut registry = DsRegistry::new();
        for idx in 0..count {
            read_exact_field(&mut r, &mut buf2, &format!("length of name {idx}"))?;
            let len = u16::from_le_bytes(buf2) as usize;
            // Bounded read: allocate as bytes arrive instead of trusting
            // `len` up front, then verify the claim was honest.
            let mut name = Vec::new();
            (&mut r).take(len as u64).read_to_end(&mut name)?;
            if name.len() < len {
                return Err(bad(format!(
                    "truncated DVFT header: name {idx} claims {len} bytes, only {} present",
                    name.len()
                )));
            }
            let name =
                String::from_utf8(name).map_err(|_| bad(format!("name {idx} is not UTF-8")))?;
            if registry.id(&name).is_some() {
                return Err(bad(format!("duplicate structure name `{name}` in header")));
            }
            registry.register(&name);
        }
        Ok(Self {
            inner: r,
            registry,
            carry: Vec::new(),
            eof: false,
        })
    }

    /// Data-structure names declared in the header.
    pub fn registry(&self) -> &DsRegistry {
        &self.registry
    }

    /// Raw bytes buffered per refill pass of [`read_chunk`]. A caller
    /// passing a huge `max` (or `usize::MAX` for "everything") gets its
    /// records in full, but the staging buffer never grows past this.
    const SLAB_BYTES: usize = 1 << 20;

    /// Decode up to `max` references into `out` (cleared first), returning
    /// how many were produced. `Ok(0)` means the trace is exhausted.
    ///
    /// `max` bounds the *output*, not the scratch allocation: input is
    /// staged through a fixed-size slab, so `read_chunk(&mut out, usize::MAX)`
    /// is safe (it decodes the whole trace without a proportional upfront
    /// buffer, though `out` itself grows with the record count).
    pub fn read_chunk(&mut self, out: &mut Vec<MemRef>, max: usize) -> io::Result<usize> {
        out.clear();
        if max == 0 {
            return Ok(0);
        }
        let count = self.registry.len() as u16;
        while out.len() < max {
            let budget = max - out.len();
            let want = budget
                .saturating_mul(RECORD_BYTES)
                .clamp(RECORD_BYTES, Self::SLAB_BYTES);
            // Top the carry buffer up to one slab of raw record bytes.
            while !self.eof && self.carry.len() < want {
                let start = self.carry.len();
                self.carry.resize(want, 0);
                let n = self.inner.read(&mut self.carry[start..])?;
                self.carry.truncate(start + n);
                if n == 0 {
                    self.eof = true;
                }
            }
            let whole_bytes = self.carry.len() / RECORD_BYTES * RECORD_BYTES;
            if self.eof && self.carry.len() > whole_bytes {
                return Err(bad(format!(
                    "truncated record at end of trace ({} stray bytes)",
                    self.carry.len() - whole_bytes
                )));
            }
            let take_bytes = budget.min(whole_bytes / RECORD_BYTES) * RECORD_BYTES;
            for record in self.carry[..take_bytes].chunks_exact(RECORD_BYTES) {
                let ds = u16::from_le_bytes([record[0], record[1]]);
                if ds >= count {
                    return Err(bad(format!(
                        "record names unregistered structure id {ds} (header declared {count})"
                    )));
                }
                let kind = match record[2] {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    k => return Err(bad(format!("bad access kind byte {k}"))),
                };
                let addr = u64::from_le_bytes(record[3..RECORD_BYTES].try_into().expect("8 bytes"));
                out.push(MemRef::new(DsId(ds), addr, kind));
            }
            self.carry.drain(..take_bytes);
            if self.eof && self.carry.is_empty() {
                break;
            }
            if take_bytes == 0 {
                // No whole record decoded and not at EOF shouldn't happen
                // (the refill loop runs until eof or >= RECORD_BYTES), but
                // guard against a pathological `Read` impl looping forever.
                break;
            }
        }
        Ok(out.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        let grid = t.registry.register("Grid");
        t.push(MemRef::read(a, 0x10));
        t.push(MemRef::write(grid, u64::MAX));
        t.push(MemRef::read(a, 12345));
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.refs, t.refs);
        assert_eq!(back.registry.name(DsId(1)), "Grid");
    }

    #[test]
    fn record_size_is_eleven_bytes() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let header = 4 + 1 + 2 + (2 + 1) + (2 + 4);
        assert_eq!(buf.len(), header + 11 * t.len());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_binary(&b"NOPE"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_truncated_record() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_unknown_structure_id() {
        let mut t = Trace::new();
        t.registry.register("A");
        t.push(MemRef::read(DsId(0), 1));
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        // Corrupt the record's ds id (first record byte after the header).
        let header = 4 + 1 + 2 + 2 + 1;
        buf[header] = 9;
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_bad_kind_byte() {
        let mut t = Trace::new();
        t.registry.register("A");
        t.push(MemRef::read(DsId(0), 1));
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let header = 4 + 1 + 2 + 2 + 1;
        buf[header + 2] = 7;
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn chunked_reader_matches_full_read() {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        let b = t.registry.register("B");
        for i in 0..1000u64 {
            let ds = if i % 3 == 0 { b } else { a };
            t.push(MemRef::new(ds, i * 17, AccessKind::Read));
        }
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();

        // Chunk sizes that do and don't divide the record count.
        for chunk_size in [1usize, 7, 100, 1000, 5000] {
            let mut reader = TraceReader::new(buf.as_slice()).unwrap();
            assert_eq!(reader.registry().len(), 2);
            let mut refs = Vec::new();
            let mut chunk = Vec::new();
            loop {
                let n = reader.read_chunk(&mut chunk, chunk_size).unwrap();
                if n == 0 {
                    break;
                }
                assert!(n <= chunk_size);
                refs.extend_from_slice(&chunk);
            }
            assert_eq!(refs, t.refs, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn chunked_reader_rejects_truncation() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let mut chunk = Vec::new();
        let mut err = None;
        loop {
            match reader.read_chunk(&mut chunk, 2) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(err.unwrap().to_string().contains("truncated"));
    }

    /// A reader that hands out one byte per `read` call: worst-case
    /// fragmentation for the carry buffer.
    struct Dribble<'a>(&'a [u8]);

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn rejects_truncation_mid_header() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        // Header layout: magic(4) version(1) count(2) | len(2) "A" | len(2) "Grid".
        // Cut at every prefix of the header and demand a descriptive error.
        let header_len = 4 + 1 + 2 + (2 + 1) + (2 + 4);
        for cut in 0..header_len {
            let err = TraceReader::new(&buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
            let msg = err.to_string();
            assert!(
                msg.contains("truncated") || msg.contains("magic") || msg.contains("claims"),
                "cut at {cut}: {msg}"
            );
        }
        // The full header parses.
        assert!(TraceReader::new(&buf[..header_len]).is_ok());
    }

    #[test]
    fn rejects_duplicate_header_names() {
        // Hand-built header declaring "A" twice: the registry would
        // otherwise dedupe them and alias two ids onto one slot.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DVFT");
        buf.push(1);
        buf.extend_from_slice(&2u16.to_le_bytes());
        for _ in 0..2 {
            buf.extend_from_slice(&1u16.to_le_bytes());
            buf.push(b'A');
        }
        let err = TraceReader::new(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn header_claiming_more_than_present_is_rejected() {
        // count = 65535 and a name length claiming 65535 bytes against a
        // near-empty input: must error out, not trust the claim.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DVFT");
        buf.push(1);
        buf.extend_from_slice(&u16::MAX.to_le_bytes());
        buf.extend_from_slice(&u16::MAX.to_le_bytes());
        buf.extend_from_slice(b"tiny");
        let err = TraceReader::new(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("claims"), "{msg}");
    }

    #[test]
    fn read_chunk_with_max_below_record_count() {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for i in 0..10u64 {
            t.push(MemRef::read(a, i));
        }
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();

        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let mut chunk = Vec::new();
        let mut sizes = Vec::new();
        let mut refs = Vec::new();
        loop {
            let n = reader.read_chunk(&mut chunk, 3).unwrap();
            if n == 0 {
                break;
            }
            sizes.push(n);
            refs.extend_from_slice(&chunk);
        }
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        assert_eq!(refs, t.refs);
    }

    #[test]
    fn read_chunk_with_huge_max_stays_bounded() {
        // `max` bounds output, not scratch: usize::MAX must not attempt a
        // proportional allocation (the old code computed max * 11 bytes).
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for i in 0..1000u64 {
            t.push(MemRef::read(a, i));
        }
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let mut chunk = Vec::new();
        assert_eq!(reader.read_chunk(&mut chunk, usize::MAX).unwrap(), 1000);
        assert_eq!(chunk, t.refs);
        assert_eq!(reader.read_chunk(&mut chunk, usize::MAX).unwrap(), 0);
    }

    #[test]
    fn chunked_reader_survives_fragmented_reads() {
        // A one-byte-at-a-time reader forces every carry-buffer partial
        // fill path; decoded output must still be identical.
        let mut t = Trace::new();
        let a = t.registry.register("A");
        let b = t.registry.register("B");
        for i in 0..257u64 {
            let ds = if i % 2 == 0 { a } else { b };
            t.push(MemRef::new(ds, i * 31, AccessKind::Read));
        }
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();

        let mut reader = TraceReader::new(Dribble(&buf)).unwrap();
        assert_eq!(reader.registry().len(), 2);
        let mut refs = Vec::new();
        let mut chunk = Vec::new();
        loop {
            let n = reader.read_chunk(&mut chunk, 7).unwrap();
            if n == 0 {
                break;
            }
            refs.extend_from_slice(&chunk);
        }
        assert_eq!(refs, t.refs);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.registry.len(), 0);
    }
}
