//! Compact binary trace serialization.
//!
//! The text format (`Trace::to_text`) is convenient but ~16 bytes per
//! reference; kernel traces run to tens of millions of references. This
//! module stores each reference in 11 bytes:
//!
//! ```text
//! header:  magic "DVFT", version u8, name count u16,
//!          then per name: length u16 + UTF-8 bytes
//! records: ds u16 | kind u8 (0 = read, 1 = write) | addr u64   (LE)
//! ```

use crate::trace::{AccessKind, DsId, DsRegistry, MemRef, Trace};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"DVFT";
const VERSION: u8 = 1;
/// Bytes per serialized reference record.
const RECORD_BYTES: usize = 11;

/// Serialize a trace.
pub fn write_binary<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    let names: Vec<&str> = trace.registry.iter().map(|(_, n)| n).collect();
    let count = u16::try_from(names.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "too many structures"))?;
    w.write_all(&count.to_le_bytes())?;
    for name in names {
        let len = u16::try_from(name.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "name too long"))?;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(name.as_bytes())?;
    }
    for r in &trace.refs {
        w.write_all(&r.ds.0.to_le_bytes())?;
        w.write_all(&[match r.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        }])?;
        w.write_all(&r.addr.to_le_bytes())?;
    }
    Ok(())
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

/// Deserialize a trace written by [`write_binary`].
///
/// Materializes the full reference vector; for bounded-memory replay use
/// [`TraceReader`] and feed chunks straight into a simulator.
pub fn read_binary<R: Read>(r: R) -> io::Result<Trace> {
    let mut reader = TraceReader::new(r)?;
    let mut trace = Trace::new();
    for (_, name) in reader.registry().iter() {
        trace.registry.register(name);
    }
    let mut chunk = Vec::new();
    while reader.read_chunk(&mut chunk, DEFAULT_CHUNK)? > 0 {
        trace.refs.extend_from_slice(&chunk);
    }
    Ok(trace)
}

/// Default references per [`TraceReader::read_chunk`] call (~704 KiB of
/// records, ~1.5 MiB resident with the decoded `MemRef`s).
pub const DEFAULT_CHUNK: usize = 65_536;

/// Incremental DVFT reader: parses the header once, then decodes records
/// in caller-sized chunks so multi-gigabyte traces replay in bounded
/// memory.
///
/// ```no_run
/// use dvf_cachesim::{binio::TraceReader, CacheConfig, Simulator};
///
/// let file = std::fs::File::open("kernel.dvft").unwrap();
/// let mut reader = TraceReader::new(std::io::BufReader::new(file)).unwrap();
/// let mut sim = Simulator::new(CacheConfig::new(8, 8192, 64).unwrap());
/// let mut chunk = Vec::new();
/// while reader.read_chunk(&mut chunk, 65_536).unwrap() > 0 {
///     sim.run(&chunk);
/// }
/// let report = sim.finish();
/// ```
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inner: R,
    registry: DsRegistry,
    /// Undecoded tail bytes carried between `read_chunk` calls (a read can
    /// end mid-record; only EOF mid-record is corruption).
    carry: Vec<u8>,
    eof: bool,
}

impl<R: Read> TraceReader<R> {
    /// Parse the DVFT header, leaving the reader positioned at the records.
    pub fn new(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a DVFT trace (bad magic)"));
        }
        let mut version = [0u8; 1];
        r.read_exact(&mut version)?;
        if version[0] != VERSION {
            return Err(bad("unsupported DVFT version"));
        }
        let mut buf2 = [0u8; 2];
        r.read_exact(&mut buf2)?;
        let count = u16::from_le_bytes(buf2);

        let mut registry = DsRegistry::new();
        for _ in 0..count {
            r.read_exact(&mut buf2)?;
            let len = u16::from_le_bytes(buf2) as usize;
            let mut name = vec![0u8; len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name).map_err(|_| bad("name is not UTF-8"))?;
            registry.register(&name);
        }
        Ok(Self {
            inner: r,
            registry,
            carry: Vec::new(),
            eof: false,
        })
    }

    /// Data-structure names declared in the header.
    pub fn registry(&self) -> &DsRegistry {
        &self.registry
    }

    /// Decode up to `max` references into `out` (cleared first), returning
    /// how many were produced. `Ok(0)` means the trace is exhausted.
    pub fn read_chunk(&mut self, out: &mut Vec<MemRef>, max: usize) -> io::Result<usize> {
        out.clear();
        if max == 0 {
            return Ok(0);
        }
        let want = max * RECORD_BYTES;
        // Top the carry buffer up to a full chunk of raw record bytes.
        while !self.eof && self.carry.len() < want {
            let start = self.carry.len();
            self.carry.resize(want, 0);
            let n = self.inner.read(&mut self.carry[start..])?;
            self.carry.truncate(start + n);
            if n == 0 {
                self.eof = true;
            }
        }
        let whole = self.carry.len() / RECORD_BYTES * RECORD_BYTES;
        if self.eof && self.carry.len() > whole {
            return Err(bad("truncated record at end of trace"));
        }
        let count = self.registry.len() as u16;
        for record in self.carry[..whole].chunks_exact(RECORD_BYTES) {
            let ds = u16::from_le_bytes([record[0], record[1]]);
            if ds >= count {
                return Err(bad("record names unregistered structure"));
            }
            let kind = match record[2] {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                _ => return Err(bad("bad access kind byte")),
            };
            let addr = u64::from_le_bytes(record[3..RECORD_BYTES].try_into().expect("8 bytes"));
            out.push(MemRef::new(DsId(ds), addr, kind));
        }
        self.carry.drain(..whole);
        Ok(out.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        let grid = t.registry.register("Grid");
        t.push(MemRef::read(a, 0x10));
        t.push(MemRef::write(grid, u64::MAX));
        t.push(MemRef::read(a, 12345));
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.refs, t.refs);
        assert_eq!(back.registry.name(DsId(1)), "Grid");
    }

    #[test]
    fn record_size_is_eleven_bytes() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let header = 4 + 1 + 2 + (2 + 1) + (2 + 4);
        assert_eq!(buf.len(), header + 11 * t.len());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_binary(&b"NOPE"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_truncated_record() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_unknown_structure_id() {
        let mut t = Trace::new();
        t.registry.register("A");
        t.push(MemRef::read(DsId(0), 1));
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        // Corrupt the record's ds id (first record byte after the header).
        let header = 4 + 1 + 2 + 2 + 1;
        buf[header] = 9;
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_bad_kind_byte() {
        let mut t = Trace::new();
        t.registry.register("A");
        t.push(MemRef::read(DsId(0), 1));
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let header = 4 + 1 + 2 + 2 + 1;
        buf[header + 2] = 7;
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn chunked_reader_matches_full_read() {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        let b = t.registry.register("B");
        for i in 0..1000u64 {
            let ds = if i % 3 == 0 { b } else { a };
            t.push(MemRef::new(ds, i * 17, AccessKind::Read));
        }
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();

        // Chunk sizes that do and don't divide the record count.
        for chunk_size in [1usize, 7, 100, 1000, 5000] {
            let mut reader = TraceReader::new(buf.as_slice()).unwrap();
            assert_eq!(reader.registry().len(), 2);
            let mut refs = Vec::new();
            let mut chunk = Vec::new();
            loop {
                let n = reader.read_chunk(&mut chunk, chunk_size).unwrap();
                if n == 0 {
                    break;
                }
                assert!(n <= chunk_size);
                refs.extend_from_slice(&chunk);
            }
            assert_eq!(refs, t.refs, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn chunked_reader_rejects_truncation() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let mut chunk = Vec::new();
        let mut err = None;
        loop {
            match reader.read_chunk(&mut chunk, 2) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(err.unwrap().to_string().contains("truncated"));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.registry.len(), 0);
    }
}
