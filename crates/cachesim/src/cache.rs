//! The set-associative cache model.

use crate::config::CacheConfig;
use crate::replacement::{Lru, ReplacementPolicy};
use crate::stats::CacheStats;
use crate::trace::{AccessKind, DsId, MemRef};

/// One resident cache line.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Which data structure loaded the line (writebacks are charged to it).
    owner: DsId,
}

/// A cache set: ways plus the replacement policy's bookkeeping.
#[derive(Debug, Clone)]
struct Set<S> {
    ways: Vec<Option<Line>>,
    policy_state: S,
}

/// A dirty line written back on eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// Data structure the line belongs to (charged the writeback).
    pub owner: DsId,
    /// Base address of the written-back line.
    pub addr: u64,
}

/// Result of a single access, for callers that want to trace behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit,
    /// The line was fetched from main memory; if a dirty victim was evicted,
    /// it is reported (its owner was charged one writeback).
    Miss {
        /// The dirty line written back, if any.
        writeback: Option<Writeback>,
    },
}

impl AccessOutcome {
    /// Whether the access missed.
    pub fn is_miss(&self) -> bool {
        matches!(self, AccessOutcome::Miss { .. })
    }
}

/// A write-back, write-allocate, set-associative cache parameterized by
/// replacement policy.
///
/// The simulator models a single last-level cache, following the paper:
/// "we only consider the last level cache during analysis, because it has
/// the largest impact on the number of main memory accesses" (§III-C).
#[derive(Debug, Clone)]
pub struct SetAssociativeCache<P: ReplacementPolicy = Lru> {
    config: CacheConfig,
    policy: P,
    sets: Vec<Set<P::SetState>>,
    stats: CacheStats,
}

impl<P: ReplacementPolicy> SetAssociativeCache<P> {
    /// Build an empty cache with the given geometry and policy.
    pub fn with_policy(config: CacheConfig, policy: P) -> Self {
        let sets = (0..config.num_sets)
            .map(|i| Set {
                ways: vec![None; config.associativity],
                policy_state: policy.new_set(config.associativity, i),
            })
            .collect();
        Self {
            config,
            policy,
            sets,
            stats: CacheStats::new(),
        }
    }

    /// Cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Statistics accumulated so far. Note: dirty lines still resident are
    /// *not* yet counted as writebacks; call [`Self::flush`] first if the
    /// end-of-run flush should reach main memory.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Issue one reference.
    pub fn access(&mut self, mref: MemRef) -> AccessOutcome {
        let block = self.config.block_of(mref.addr);
        let set_idx = self.config.set_of(block);
        let tag = self.config.tag_of(block);
        let set = &mut self.sets[set_idx];

        let ds_stats = self.stats.ds_mut(mref.ds);
        match mref.kind {
            AccessKind::Read => ds_stats.reads += 1,
            AccessKind::Write => ds_stats.writes += 1,
        }

        // Hit path.
        if let Some(way) = set
            .ways
            .iter()
            .position(|l| l.is_some_and(|l| l.tag == tag))
        {
            self.policy.on_hit(&mut set.policy_state, way);
            let line = set.ways[way].as_mut().expect("hit way is occupied");
            if mref.kind == AccessKind::Write {
                line.dirty = true;
            }
            self.stats.ds_mut(mref.ds).hits += 1;
            return AccessOutcome::Hit;
        }

        // Miss: find a free way, or evict the policy's victim.
        self.stats.ds_mut(mref.ds).misses += 1;
        let (way, writeback) = match set.ways.iter().position(Option::is_none) {
            Some(free) => (free, None),
            None => {
                let victim = self.policy.victim(&mut set.policy_state);
                let old = set.ways[victim].expect("victim way is occupied");
                let wb = if old.dirty {
                    self.stats.ds_mut(old.owner).writebacks += 1;
                    Some(Writeback {
                        owner: old.owner,
                        addr: self.config.addr_of(old.tag, set_idx),
                    })
                } else {
                    None
                };
                (victim, wb)
            }
        };
        set.ways[way] = Some(Line {
            tag,
            dirty: mref.kind == AccessKind::Write,
            owner: mref.ds,
        });
        self.policy.on_fill(&mut set.policy_state, way);
        AccessOutcome::Miss { writeback }
    }

    /// Write every resident dirty line back to main memory (end of run),
    /// charging each to its owning data structure, and clear the cache
    /// contents (statistics are kept).
    pub fn flush(&mut self) {
        let _ = self.drain_dirty();
    }

    /// Flush and return the dirty lines that were written back, so a
    /// cache level above can forward them (used by the hierarchy).
    pub fn drain_dirty(&mut self) -> Vec<Writeback> {
        let mut drained = Vec::new();
        for (set_idx, set) in self.sets.iter_mut().enumerate() {
            for line in set.ways.iter_mut() {
                if let Some(l) = line.take() {
                    if l.dirty {
                        self.stats.ds_mut(l.owner).writebacks += 1;
                        drained.push(Writeback {
                            owner: l.owner,
                            addr: self.config.addr_of(l.tag, set_idx),
                        });
                    }
                }
            }
        }
        drained
    }

    /// Number of currently resident lines (diagnostic).
    pub fn resident_lines(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.ways.iter().filter(|w| w.is_some()).count())
            .sum()
    }

    /// Consume the cache and return its statistics without flushing.
    pub fn into_stats(self) -> CacheStats {
        self.stats
    }
}

impl SetAssociativeCache<Lru> {
    /// LRU cache (the paper's configuration).
    pub fn new(config: CacheConfig) -> Self {
        Self::with_policy(config, Lru)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::replacement::{Fifo, RandomEvict, TreePlru};
    use crate::trace::DsRegistry;

    fn tiny() -> CacheConfig {
        // 2-way, 2 sets, 16 B lines: 64 B total.
        CacheConfig::new(2, 2, 16).unwrap()
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        assert!(c.access(MemRef::read(a, 0)).is_miss());
        assert_eq!(c.access(MemRef::read(a, 8)), AccessOutcome::Hit);
        assert_eq!(c.stats().ds(a).misses, 1);
        assert_eq!(c.stats().ds(a).hits, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        // Blocks 0, 2, 4 all map to set 0 (block % 2 == 0). 2-way set:
        // loading three conflicting blocks evicts the least recent (block 0).
        assert!(c.access(MemRef::read(a, 0)).is_miss()); // block 0
        assert!(c.access(MemRef::read(a, 32)).is_miss()); // block 2
        assert!(c.access(MemRef::read(a, 64)).is_miss()); // block 4, evicts 0
        assert!(c.access(MemRef::read(a, 0)).is_miss()); // block 0 again: miss, evicts 2
        assert_eq!(c.access(MemRef::read(a, 64)), AccessOutcome::Hit); // block 4 survived
    }

    #[test]
    fn write_dirties_and_eviction_writes_back() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        let b = DsId(1);
        c.access(MemRef::write(a, 0)); // block 0, dirty, owner a
        c.access(MemRef::read(b, 32)); // block 2, same set
        let out = c.access(MemRef::read(b, 64)); // evicts block 0 (LRU) -> writeback of a
        assert_eq!(
            out,
            AccessOutcome::Miss {
                writeback: Some(Writeback {
                    owner: DsId(0),
                    addr: 0, // victim was the line at address 0
                })
            }
        );
        assert_eq!(c.stats().ds(a).writebacks, 1);
        assert_eq!(c.stats().ds(b).writebacks, 0);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        c.access(MemRef::read(a, 0));
        c.access(MemRef::read(a, 32));
        let out = c.access(MemRef::read(a, 64));
        assert_eq!(out, AccessOutcome::Miss { writeback: None });
        assert_eq!(c.stats().ds(a).writebacks, 0);
    }

    #[test]
    fn writeback_reports_victim_address() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        c.access(MemRef::write(a, 32)); // block 2, set 0
        c.access(MemRef::write(a, 64)); // block 4, set 0
                                        // Third conflicting block evicts block 2 (LRU): its line address
                                        // is 32, not the incoming 96.
        match c.access(MemRef::read(a, 96)) {
            AccessOutcome::Miss {
                writeback: Some(wb),
            } => assert_eq!(wb.addr, 32),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn drain_dirty_returns_resident_dirty_lines() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        c.access(MemRef::write(a, 0));
        c.access(MemRef::read(a, 16));
        let drained = c.drain_dirty();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].addr, 0);
        assert_eq!(drained[0].owner, a);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn flush_writes_back_resident_dirty_lines() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        c.access(MemRef::write(a, 0));
        c.access(MemRef::write(a, 16)); // other set
        c.access(MemRef::read(a, 32));
        assert_eq!(c.stats().ds(a).writebacks, 0);
        c.flush();
        assert_eq!(c.stats().ds(a).writebacks, 2);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn streaming_misses_once_per_line() {
        // 1 KiB streamed through 16 B lines: exactly 64 compulsory misses.
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        for addr in (0..1024u64).step_by(4) {
            c.access(MemRef::read(a, addr));
        }
        assert_eq!(c.stats().ds(a).misses, 1024 / 16);
        assert_eq!(c.stats().ds(a).reads, 256);
    }

    #[test]
    fn working_set_within_capacity_has_no_capacity_misses() {
        // 64 B cache: touch 4 distinct blocks (= capacity), then re-touch
        // them repeatedly; only compulsory misses occur.
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        for round in 0..10 {
            for addr in [0u64, 16, 32, 48] {
                let out = c.access(MemRef::read(a, addr));
                if round == 0 {
                    assert!(out.is_miss());
                } else {
                    assert_eq!(out, AccessOutcome::Hit);
                }
            }
        }
        assert_eq!(c.stats().ds(a).misses, 4);
    }

    #[test]
    fn all_policies_agree_on_compulsory_misses() {
        let cfg = CacheConfig::new(4, 4, 16).unwrap();
        let refs: Vec<MemRef> = (0..64u64).map(|i| MemRef::read(DsId(0), i * 16)).collect();
        let run_misses = |m: u64| m;

        let mut lru = SetAssociativeCache::with_policy(cfg, Lru);
        let mut fifo = SetAssociativeCache::with_policy(cfg, Fifo);
        let mut plru = SetAssociativeCache::with_policy(cfg, TreePlru);
        let mut rnd = SetAssociativeCache::with_policy(cfg, RandomEvict::default());
        for r in &refs {
            lru.access(*r);
            fifo.access(*r);
            plru.access(*r);
            rnd.access(*r);
        }
        // A pure streaming workload has only compulsory misses regardless of
        // replacement policy.
        for stats in [lru.stats(), fifo.stats(), plru.stats(), rnd.stats()] {
            assert_eq!(run_misses(stats.ds(DsId(0)).misses), 64);
        }
    }

    #[test]
    fn render_smoke() {
        let mut reg = DsRegistry::new();
        let a = reg.register("A");
        let mut c = SetAssociativeCache::new(tiny());
        c.access(MemRef::read(a, 0));
        let table = c.stats().render(&reg);
        assert!(table.contains('A'));
    }
}
