//! The set-associative cache model.
//!
//! Storage is struct-of-arrays: one flat, contiguous tag array (with an
//! invalid-tag sentinel) plus parallel dirty/owner arrays, indexed by
//! `set * associativity + way`. The hit scan — the hot operation of every
//! replay — then walks `associativity` adjacent `u64`s instead of chasing
//! a per-set `Vec<Option<Line>>`, which both removes a pointer indirection
//! per access and shrinks each probed entry from a 24-byte `Option<Line>`
//! to 8 bytes.

use crate::config::{CacheConfig, CacheGeometry};
use crate::replacement::{Lru, ReplacementPolicy};
use crate::stats::CacheStats;
use crate::trace::{AccessKind, DsId, MemRef};

/// Sentinel marking an empty way in the flat tag array.
///
/// Tag words are stored biased by one (`stored = tag + 1`), so zero means
/// "empty" and a fresh cache is all-zeroes: construction is one `calloc`
/// with no explicit fill, and sets the trace never maps to never fault
/// their pages in — which matters when a short trace replays through a
/// many-megabyte geometry. The bias only wraps for `tag == u64::MAX`,
/// i.e. an access in the top line of the 64-bit address space; every
/// practical geometry and trace stays far below it.
const EMPTY_WAY: u64 = 0;

/// Bias a real tag into its stored representation.
#[inline(always)]
fn store_tag(tag: u64) -> u64 {
    tag.wrapping_add(1)
}

/// Recover the real tag from a stored (non-empty) tag word.
#[inline(always)]
fn load_tag(word: u64) -> u64 {
    word.wrapping_sub(1)
}

/// A dirty line written back on eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// Data structure the line belongs to (charged the writeback).
    pub owner: DsId,
    /// Base address of the written-back line.
    pub addr: u64,
}

/// An evicted line — clean or dirty — as reported by
/// [`SetAssociativeCache::demand_access`] and the install paths.
///
/// Unlike [`Writeback`] this also reports *clean* victims, which a cache
/// hierarchy needs: an exclusive lower level is filled exclusively by the
/// level above's victims, clean ones included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Data structure the evicted line belongs to.
    pub owner: DsId,
    /// Base address of the evicted line.
    pub addr: u64,
    /// Whether the line was dirty (its owner was charged one writeback).
    pub dirty: bool,
}

/// Result of one [`SetAssociativeCache::demand_access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandOutcome {
    /// Whether the line was resident.
    pub hit: bool,
    /// The line evicted by the fill, if any (misses only).
    pub victim: Option<Victim>,
}

/// Result of a single access, for callers that want to trace behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit,
    /// The line was fetched from main memory; if a dirty victim was evicted,
    /// it is reported (its owner was charged one writeback).
    Miss {
        /// The dirty line written back, if any.
        writeback: Option<Writeback>,
    },
}

impl AccessOutcome {
    /// Whether the access missed.
    pub fn is_miss(&self) -> bool {
        matches!(self, AccessOutcome::Miss { .. })
    }
}

/// A write-back, write-allocate, set-associative cache parameterized by
/// replacement policy.
///
/// The simulator models a single last-level cache, following the paper:
/// "we only consider the last level cache during analysis, because it has
/// the largest impact on the number of main memory accesses" (§III-C).
#[derive(Debug, Clone)]
pub struct SetAssociativeCache<P: ReplacementPolicy = Lru> {
    config: CacheConfig,
    geom: CacheGeometry,
    assoc: usize,
    policy: P,
    /// `num_sets * associativity` biased tag words ([`EMPTY_WAY`] = empty).
    tags: Vec<u64>,
    /// Parallel to `tags`: the line's owner [`DsId`] in the high bits and
    /// its dirty flag in bit 0, packed so the miss path touches one array
    /// (one cache line) instead of two.
    meta: Vec<u32>,
    /// Parallel to `tags`: per-way replacement bookkeeping (e.g. LRU
    /// recency stamps), flat like the tag array so policy updates stay on
    /// cache lines the probe already pulled in.
    policy_ways: Vec<P::WayState>,
    /// One replacement-policy residue per set (PLRU bits, RNG streams;
    /// zero-sized for LRU/FIFO, whose ranks live in `policy_ways`).
    policy_state: Vec<P::SetState>,
    /// Whether the simulator metadata fits in [`RESIDENT_META_BYTES`];
    /// decided once at construction, gates the resident short paths.
    resident: bool,
    stats: CacheStats,
}

/// Pack a line's owner and dirty flag into one `meta` word.
#[inline(always)]
fn pack_meta(owner: DsId, dirty: bool) -> u32 {
    (u32::from(owner.0) << 1) | u32::from(dirty)
}

/// Simulator-metadata footprint (tags + meta + way state) below which the
/// whole model stays resident in the host CPU's fast cache levels. Resident
/// geometries take short paths: [`scan_set_resident`] instead of the
/// vectorized [`scan_set`], and no software prefetch in
/// [`SetAssociativeCache::replay`] — for them the branch-free masks and the
/// extra peek loads are pure overhead (the 8 KiB verification geometry ran
/// at 0.93x with them on).
const RESIDENT_META_BYTES: usize = 256 * 1024;

/// Hit/free scan for fully cache-resident geometries: a plain early-exit
/// loop. With the metadata already in L1 the loads are free, so exiting at
/// the hit way beats computing full hit/free masks; the free scan runs
/// only on the (rare, compulsory) miss. Same contract as [`scan_set`]:
/// `(hit_way, first_free_way)`, `usize::MAX` for "none" — except that a
/// hit skips the free scan entirely, which the caller never needs then.
#[inline(always)]
fn scan_set_resident(set_tags: &[u64], marked: u64) -> (usize, usize) {
    // Occupied ways form a prefix (fills claim the first empty way, and
    // ways never empty mid-run), so a hit can only live before the first
    // empty word: one pass answers both questions.
    for (way, &t) in set_tags.iter().enumerate() {
        if t == marked {
            return (way, usize::MAX);
        }
        if t == EMPTY_WAY {
            return (usize::MAX, way);
        }
    }
    (usize::MAX, usize::MAX)
}

/// Scan one set's tag slice for the biased tag word `marked`, returning
/// `(hit_way, first_free_way)` with `usize::MAX` marking "none".
///
/// The scan works one cache line (8 tag words) at a time: within a line
/// both comparisons accumulate branch-free into bitmasks the compiler can
/// vectorize, and the only branches are one exit test per line. Fills
/// always claim the *first* empty way (and evictions replace in place),
/// so the occupied ways of a set form a prefix: finding an empty word in
/// a line means nothing valid follows in later lines, and the scan may
/// stop — a sparsely occupied set of a large cache touches one line, not
/// `assoc / 8`.
#[inline(always)]
fn scan_set(set_tags: &[u64], marked: u64) -> (usize, usize) {
    // Sets that fit one cache line take a single branch-free pass.
    if set_tags.len() <= 8 {
        let mut hit = 0u64;
        let mut free = 0u64;
        for (way, &t) in set_tags.iter().enumerate() {
            hit |= u64::from(t == marked) << way;
            free |= u64::from(t == EMPTY_WAY) << way;
        }
        let hit_way = if hit != 0 {
            hit.trailing_zeros() as usize
        } else {
            usize::MAX
        };
        let free_way = if free != 0 {
            free.trailing_zeros() as usize
        } else {
            usize::MAX
        };
        return (hit_way, free_way);
    }
    let mut base = 0;
    let mut lines = set_tags.chunks_exact(8);
    for line in &mut lines {
        let mut hit = 0u64;
        let mut free = 0u64;
        for (way, &t) in line.iter().enumerate() {
            hit |= u64::from(t == marked) << way;
            free |= u64::from(t == EMPTY_WAY) << way;
        }
        if hit != 0 {
            return (base + hit.trailing_zeros() as usize, usize::MAX);
        }
        if free != 0 {
            return (usize::MAX, base + free.trailing_zeros() as usize);
        }
        base += 8;
    }
    let mut hit = 0u64;
    let mut free = 0u64;
    for (way, &t) in lines.remainder().iter().enumerate() {
        hit |= u64::from(t == marked) << way;
        free |= u64::from(t == EMPTY_WAY) << way;
    }
    let hit_way = if hit != 0 {
        base + hit.trailing_zeros() as usize
    } else {
        usize::MAX
    };
    let free_way = if free != 0 {
        base + free.trailing_zeros() as usize
    } else {
        usize::MAX
    };
    (hit_way, free_way)
}

impl<P: ReplacementPolicy> SetAssociativeCache<P> {
    /// Build an empty cache with the given geometry and policy.
    ///
    /// Panics with the descriptive [`crate::config::ConfigError`] message
    /// if `config` violates the power-of-two geometry assumptions (only
    /// possible via a struct literal; [`CacheConfig::new`] validates).
    pub fn with_policy(config: CacheConfig, policy: P) -> Self {
        let geom = config.geometry();
        let blocks = config.num_blocks();
        let policy_state = (0..config.num_sets)
            .map(|i| policy.new_set(config.associativity, i))
            .collect();
        let meta_bytes = blocks * (size_of::<u64>() + size_of::<u32>() + size_of::<P::WayState>());
        Self {
            config,
            geom,
            assoc: config.associativity,
            policy,
            tags: vec![EMPTY_WAY; blocks],
            meta: vec![0; blocks],
            policy_ways: vec![P::WayState::default(); blocks],
            policy_state,
            resident: meta_bytes < RESIDENT_META_BYTES,
            stats: CacheStats::new(),
        }
    }

    /// Cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Statistics accumulated so far. Note: dirty lines still resident are
    /// *not* yet counted as writebacks; call [`Self::flush`] first if the
    /// end-of-run flush should reach main memory.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Issue one reference.
    #[inline]
    pub fn access(&mut self, mref: MemRef) -> AccessOutcome {
        let out = self.demand_access(mref);
        if out.hit {
            AccessOutcome::Hit
        } else {
            AccessOutcome::Miss {
                writeback: out.victim.filter(|v| v.dirty).map(|v| Writeback {
                    owner: v.owner,
                    addr: v.addr,
                }),
            }
        }
    }

    /// Issue one reference, reporting the evicted victim (clean or dirty).
    ///
    /// Same behaviour and statistics as [`Self::access`]; the richer
    /// outcome exists for the hierarchy, whose exclusive levels are filled
    /// by clean victims too.
    #[inline]
    pub fn demand_access(&mut self, mref: MemRef) -> DemandOutcome {
        let block = self.geom.block_of(mref.addr);
        let set_idx = self.geom.set_of(block);
        let marked = store_tag(self.geom.tag_of(block));
        let assoc = self.assoc;
        let base = set_idx * assoc;
        let is_write = mref.kind == AccessKind::Write;

        // One stats resolution per reference, shared by the read/write
        // count and the hit/miss count below.
        let ds_stats = self.stats.ds_mut(mref.ds);
        if is_write {
            ds_stats.writes += 1;
        } else {
            ds_stats.reads += 1;
        }

        // One scan over `associativity` contiguous tags serves both paths:
        // it finds the hit, and remembers the first free way for the miss.
        let (hit_way, free) = if self.resident {
            scan_set_resident(&self.tags[base..base + assoc], marked)
        } else {
            scan_set(&self.tags[base..base + assoc], marked)
        };
        if hit_way != usize::MAX {
            ds_stats.hits += 1;
            if is_write {
                self.meta[base + hit_way] |= 1;
            }
            self.policy.on_hit(
                &mut self.policy_state[set_idx],
                &mut self.policy_ways[base..base + assoc],
                hit_way,
            );
            return DemandOutcome {
                hit: true,
                victim: None,
            };
        }

        // Miss: take the free way found above, or evict the policy's victim.
        ds_stats.misses += 1;
        let victim = self.fill_way(set_idx, free, marked, mref.ds, is_write);
        DemandOutcome { hit: false, victim }
    }

    /// Fill a line into `set_idx` at the precomputed first free way
    /// (`usize::MAX` = set full, evict the policy's victim). Charges a
    /// dirty victim's writeback to its owner; shared by the demand-miss
    /// fill and the write-no-fill install paths.
    #[inline]
    fn fill_way(
        &mut self,
        set_idx: usize,
        free: usize,
        marked: u64,
        ds: DsId,
        dirty: bool,
    ) -> Option<Victim> {
        let assoc = self.assoc;
        let base = set_idx * assoc;
        let (way, victim) = if free != usize::MAX {
            (free, None)
        } else {
            let way = self.policy.victim(
                &mut self.policy_state[set_idx],
                &mut self.policy_ways[base..base + assoc],
            );
            let slot = base + way;
            let victim_meta = self.meta[slot];
            let owner = DsId((victim_meta >> 1) as u16);
            let victim_dirty = victim_meta & 1 != 0;
            if victim_dirty {
                self.stats.ds_mut(owner).writebacks += 1;
            }
            (
                way,
                Some(Victim {
                    owner,
                    addr: self.geom.addr_of(load_tag(self.tags[slot]), set_idx),
                    dirty: victim_dirty,
                }),
            )
        };
        let slot = base + way;
        self.tags[slot] = marked;
        self.meta[slot] = pack_meta(ds, dirty);
        self.policy.on_fill(
            &mut self.policy_state[set_idx],
            &mut self.policy_ways[base..base + assoc],
            way,
        );
        victim
    }

    /// Absorb a victim writeback from the level above ("write-no-fill"):
    /// if the line is resident, promote it and set its dirty bit, and
    /// return `true`. An absent line is *not* allocated — a writeback
    /// carries no demand for the data, so allocating would either charge a
    /// phantom memory read or silently fabricate a fill; the caller
    /// forwards the writeback further down instead. No statistics are
    /// touched either way (no memory access happens at this level).
    pub fn absorb_writeback(&mut self, addr: u64) -> bool {
        let block = self.geom.block_of(addr);
        let set_idx = self.geom.set_of(block);
        let marked = store_tag(self.geom.tag_of(block));
        let base = set_idx * self.assoc;
        match self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == marked)
        {
            Some(way) => {
                self.meta[base + way] |= 1;
                self.policy.on_hit(
                    &mut self.policy_state[set_idx],
                    &mut self.policy_ways[base..base + self.assoc],
                    way,
                );
                true
            }
            None => false,
        }
    }

    /// Install a line without a memory read, *allocating* on absence.
    ///
    /// This is the fill path for data that arrives from above with a
    /// genuine claim to residence: an exclusive level's victim fill or a
    /// tagged prefetch. A resident line is re-promoted and its dirty flag
    /// ORed in; an absent line claims a free way or evicts the policy's
    /// victim — charging the *victim's* writeback if it was dirty, but
    /// counting no read, write, hit, or miss for the installed line
    /// itself, because no memory access happens on its behalf.
    pub fn install(&mut self, owner: DsId, addr: u64, dirty: bool) -> Option<Victim> {
        let block = self.geom.block_of(addr);
        let set_idx = self.geom.set_of(block);
        let marked = store_tag(self.geom.tag_of(block));
        let assoc = self.assoc;
        let base = set_idx * assoc;
        let (hit_way, free) = if self.resident {
            scan_set_resident(&self.tags[base..base + assoc], marked)
        } else {
            scan_set(&self.tags[base..base + assoc], marked)
        };
        if hit_way != usize::MAX {
            if dirty {
                self.meta[base + hit_way] |= 1;
            }
            self.policy.on_hit(
                &mut self.policy_state[set_idx],
                &mut self.policy_ways[base..base + assoc],
                hit_way,
            );
            return None;
        }
        self.fill_way(set_idx, free, marked, owner, dirty)
    }

    /// Whether the line containing `addr` is resident. Non-mutating: no
    /// statistics, no recency update (a tag probe, not an access).
    pub fn probe(&self, addr: u64) -> bool {
        let block = self.geom.block_of(addr);
        let set_idx = self.geom.set_of(block);
        let marked = store_tag(self.geom.tag_of(block));
        let base = set_idx * self.assoc;
        self.tags[base..base + self.assoc].contains(&marked)
    }

    /// Set the dirty bit of a resident line without touching statistics or
    /// recency; returns whether the line was resident. Used when dirtiness
    /// migrates upward (an exclusive level's dirty copy moves up with the
    /// line).
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let block = self.geom.block_of(addr);
        let set_idx = self.geom.set_of(block);
        let marked = store_tag(self.geom.tag_of(block));
        let base = set_idx * self.assoc;
        match self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == marked)
        {
            Some(way) => {
                self.meta[base + way] |= 1;
                true
            }
            None => false,
        }
    }

    /// Remove the line containing `addr` if resident (hierarchy
    /// back-invalidation and exclusive extraction), reporting it with its
    /// dirty flag. No statistics are touched — the caller decides where
    /// the removed data goes and charges accordingly.
    ///
    /// The occupied ways of a set must stay a prefix (both tag scans rely
    /// on it), so the freed way is back-filled by swapping the set's last
    /// occupied way into the hole; [`ReplacementPolicy::on_invalidate`]
    /// then retires the removed line's policy state.
    pub fn invalidate(&mut self, addr: u64) -> Option<Victim> {
        let block = self.geom.block_of(addr);
        let set_idx = self.geom.set_of(block);
        let marked = store_tag(self.geom.tag_of(block));
        let assoc = self.assoc;
        let base = set_idx * assoc;
        let set_tags = &self.tags[base..base + assoc];
        let way = set_tags.iter().position(|&t| t == marked)?;
        let occupied = set_tags
            .iter()
            .position(|&t| t == EMPTY_WAY)
            .unwrap_or(assoc);
        let meta = self.meta[base + way];
        let victim = Victim {
            owner: DsId((meta >> 1) as u16),
            addr: self.geom.addr_of(load_tag(self.tags[base + way]), set_idx),
            dirty: meta & 1 != 0,
        };
        // Swap the hole to the end of the occupied prefix; the removed
        // line's policy word travels with it for `on_invalidate` to read.
        let last = occupied - 1;
        self.tags.swap(base + way, base + last);
        self.policy_ways.swap(base + way, base + last);
        self.meta.swap(base + way, base + last);
        self.tags[base + last] = EMPTY_WAY;
        self.meta[base + last] = 0;
        self.policy.on_invalidate(
            &mut self.policy_state[set_idx],
            &mut self.policy_ways[base..base + assoc],
            last,
            occupied,
        );
        Some(victim)
    }

    /// Demand lookup *without* fill-on-miss, extracting the line on a hit
    /// — the access pattern of an exclusive hierarchy level. Counts the
    /// read/write and the hit/miss exactly like [`Self::demand_access`],
    /// but a miss installs nothing and a hit removes the line (it moves up
    /// into the levels above), returning whether the extracted copy was
    /// dirty.
    pub fn lookup_extract(&mut self, mref: MemRef) -> Option<bool> {
        let ds_stats = self.stats.ds_mut(mref.ds);
        if mref.kind == AccessKind::Write {
            ds_stats.writes += 1;
        } else {
            ds_stats.reads += 1;
        }
        if self.probe(mref.addr) {
            self.stats.ds_mut(mref.ds).hits += 1;
            let victim = self.invalidate(mref.addr).expect("probe said resident");
            Some(victim.dirty)
        } else {
            self.stats.ds_mut(mref.ds).misses += 1;
            None
        }
    }

    /// Replay a slice of references through [`Self::access`].
    ///
    /// Identical results to calling `access` per reference. When the
    /// geometry's metadata arrays are large enough to spill out of the
    /// fast cache levels, the loop additionally peeks [`LOOKAHEAD`]
    /// references ahead and touches the upcoming set's tag and way-state
    /// words. The touch is a plain load whose value is immediately
    /// discarded ([`std::hint::black_box`] keeps it from being optimized
    /// out) — a safe software prefetch that hides most of the cache-miss
    /// latency a many-megabyte geometry otherwise pays per access. Small
    /// geometries (metadata resident in L1/L2) skip the peek: there the
    /// extra loads are pure overhead.
    pub fn replay(&mut self, refs: &[MemRef]) {
        /// How far ahead the replay loop touches upcoming sets' metadata.
        const LOOKAHEAD: usize = 12;
        if self.resident {
            for &r in refs {
                self.access(r);
            }
            return;
        }
        for i in 0..refs.len() {
            if let Some(r) = refs.get(i + LOOKAHEAD) {
                let base = self.geom.set_of(self.geom.block_of(r.addr)) * self.assoc;
                std::hint::black_box(self.tags[base]);
                std::hint::black_box(self.policy_ways[base]);
            }
            self.access(refs[i]);
        }
    }

    /// Write every resident dirty line back to main memory (end of run),
    /// charging each to its owning data structure, and clear the cache
    /// contents (statistics are kept).
    pub fn flush(&mut self) {
        let _ = self.drain_dirty();
    }

    /// Flush and return the dirty lines that were written back, so a
    /// cache level above can forward them (used by the hierarchy).
    pub fn drain_dirty(&mut self) -> Vec<Writeback> {
        let mut drained = Vec::new();
        for slot in 0..self.tags.len() {
            let word = std::mem::replace(&mut self.tags[slot], EMPTY_WAY);
            let meta = std::mem::replace(&mut self.meta[slot], 0);
            if word != EMPTY_WAY && meta & 1 != 0 {
                let owner = DsId((meta >> 1) as u16);
                self.stats.ds_mut(owner).writebacks += 1;
                drained.push(Writeback {
                    owner,
                    addr: self.geom.addr_of(load_tag(word), slot / self.assoc),
                });
            }
        }
        drained
    }

    /// Number of currently resident lines (diagnostic).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY_WAY).count()
    }

    /// Consume the cache and return its statistics without flushing.
    pub fn into_stats(self) -> CacheStats {
        self.stats
    }
}

impl SetAssociativeCache<Lru> {
    /// LRU cache (the paper's configuration).
    pub fn new(config: CacheConfig) -> Self {
        Self::with_policy(config, Lru)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::replacement::{Fifo, RandomEvict, TreePlru};
    use crate::trace::DsRegistry;

    fn tiny() -> CacheConfig {
        // 2-way, 2 sets, 16 B lines: 64 B total.
        CacheConfig::new(2, 2, 16).unwrap()
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        assert!(c.access(MemRef::read(a, 0)).is_miss());
        assert_eq!(c.access(MemRef::read(a, 8)), AccessOutcome::Hit);
        assert_eq!(c.stats().ds(a).misses, 1);
        assert_eq!(c.stats().ds(a).hits, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        // Blocks 0, 2, 4 all map to set 0 (block % 2 == 0). 2-way set:
        // loading three conflicting blocks evicts the least recent (block 0).
        assert!(c.access(MemRef::read(a, 0)).is_miss()); // block 0
        assert!(c.access(MemRef::read(a, 32)).is_miss()); // block 2
        assert!(c.access(MemRef::read(a, 64)).is_miss()); // block 4, evicts 0
        assert!(c.access(MemRef::read(a, 0)).is_miss()); // block 0 again: miss, evicts 2
        assert_eq!(c.access(MemRef::read(a, 64)), AccessOutcome::Hit); // block 4 survived
    }

    #[test]
    fn write_dirties_and_eviction_writes_back() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        let b = DsId(1);
        c.access(MemRef::write(a, 0)); // block 0, dirty, owner a
        c.access(MemRef::read(b, 32)); // block 2, same set
        let out = c.access(MemRef::read(b, 64)); // evicts block 0 (LRU) -> writeback of a
        assert_eq!(
            out,
            AccessOutcome::Miss {
                writeback: Some(Writeback {
                    owner: DsId(0),
                    addr: 0, // victim was the line at address 0
                })
            }
        );
        assert_eq!(c.stats().ds(a).writebacks, 1);
        assert_eq!(c.stats().ds(b).writebacks, 0);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        c.access(MemRef::read(a, 0));
        c.access(MemRef::read(a, 32));
        let out = c.access(MemRef::read(a, 64));
        assert_eq!(out, AccessOutcome::Miss { writeback: None });
        assert_eq!(c.stats().ds(a).writebacks, 0);
    }

    #[test]
    fn writeback_reports_victim_address() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        c.access(MemRef::write(a, 32)); // block 2, set 0
        c.access(MemRef::write(a, 64)); // block 4, set 0
                                        // Third conflicting block evicts block 2 (LRU): its line address
                                        // is 32, not the incoming 96.
        match c.access(MemRef::read(a, 96)) {
            AccessOutcome::Miss {
                writeback: Some(wb),
            } => assert_eq!(wb.addr, 32),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn drain_dirty_returns_resident_dirty_lines() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        c.access(MemRef::write(a, 0));
        c.access(MemRef::read(a, 16));
        let drained = c.drain_dirty();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].addr, 0);
        assert_eq!(drained[0].owner, a);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn flush_writes_back_resident_dirty_lines() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        c.access(MemRef::write(a, 0));
        c.access(MemRef::write(a, 16)); // other set
        c.access(MemRef::read(a, 32));
        assert_eq!(c.stats().ds(a).writebacks, 0);
        c.flush();
        assert_eq!(c.stats().ds(a).writebacks, 2);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn streaming_misses_once_per_line() {
        // 1 KiB streamed through 16 B lines: exactly 64 compulsory misses.
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        for addr in (0..1024u64).step_by(4) {
            c.access(MemRef::read(a, addr));
        }
        assert_eq!(c.stats().ds(a).misses, 1024 / 16);
        assert_eq!(c.stats().ds(a).reads, 256);
    }

    #[test]
    fn working_set_within_capacity_has_no_capacity_misses() {
        // 64 B cache: touch 4 distinct blocks (= capacity), then re-touch
        // them repeatedly; only compulsory misses occur.
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        for round in 0..10 {
            for addr in [0u64, 16, 32, 48] {
                let out = c.access(MemRef::read(a, addr));
                if round == 0 {
                    assert!(out.is_miss());
                } else {
                    assert_eq!(out, AccessOutcome::Hit);
                }
            }
        }
        assert_eq!(c.stats().ds(a).misses, 4);
    }

    #[test]
    fn all_policies_agree_on_compulsory_misses() {
        let cfg = CacheConfig::new(4, 4, 16).unwrap();
        let refs: Vec<MemRef> = (0..64u64).map(|i| MemRef::read(DsId(0), i * 16)).collect();
        let run_misses = |m: u64| m;

        let mut lru = SetAssociativeCache::with_policy(cfg, Lru);
        let mut fifo = SetAssociativeCache::with_policy(cfg, Fifo);
        let mut plru = SetAssociativeCache::with_policy(cfg, TreePlru);
        let mut rnd = SetAssociativeCache::with_policy(cfg, RandomEvict::default());
        for r in &refs {
            lru.access(*r);
            fifo.access(*r);
            plru.access(*r);
            rnd.access(*r);
        }
        // A pure streaming workload has only compulsory misses regardless of
        // replacement policy.
        for stats in [lru.stats(), fifo.stats(), plru.stats(), rnd.stats()] {
            assert_eq!(run_misses(stats.ds(DsId(0)).misses), 64);
        }
    }

    #[test]
    fn resident_scan_matches_vectorized_scan() {
        // Both scans must agree on (hit, first-free) for every occupied
        // prefix, probed tag, and associativity — including the >8-way
        // shapes only the vectorized scan chunks. Occupied ways are a
        // prefix by construction (fills claim the first empty way).
        for assoc in [1usize, 2, 4, 8, 12, 16, 24] {
            for occupied in 0..=assoc {
                let mut tags = vec![EMPTY_WAY; assoc];
                for (i, t) in tags.iter_mut().take(occupied).enumerate() {
                    *t = store_tag(100 + i as u64);
                }
                // Probe an absent tag plus every present one.
                for probe in
                    std::iter::once(u64::MAX / 2).chain((0..occupied).map(|i| 100 + i as u64))
                {
                    let marked = store_tag(probe);
                    let fast = scan_set_resident(&tags, marked);
                    let vect = scan_set(&tags, marked);
                    // A hit makes the free way irrelevant; the resident
                    // scan skips it, so compare free ways only on miss.
                    assert_eq!(fast.0, vect.0, "hit way: assoc={assoc} occ={occupied}");
                    if fast.0 == usize::MAX {
                        assert_eq!(fast.1, vect.1, "free way: assoc={assoc} occ={occupied}");
                    }
                }
            }
        }
    }

    #[test]
    fn absorb_writeback_updates_resident_without_stats_and_refuses_absent() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        assert!(c.access(MemRef::read(a, 0)).is_miss());
        let before = c.stats().total();
        // Resident: dirty bit set in place, no read/write/hit/miss counted.
        assert!(c.absorb_writeback(0));
        assert_eq!(c.stats().total(), before);
        // Absent: refused, nothing allocated, still no stats.
        assert!(!c.absorb_writeback(512));
        assert!(!c.probe(512));
        assert_eq!(c.stats().total(), before);
        // The in-place dirtying is real: the line writes back on flush.
        c.flush();
        assert_eq!(c.stats().ds(a).writebacks, 1);
    }

    #[test]
    fn install_allocates_without_memory_read_and_charges_only_victims() {
        let mut c = SetAssociativeCache::new(tiny());
        let (a, b) = (DsId(0), DsId(1));
        // Fresh install: no read/write/hit/miss for the installed line.
        assert!(c.install(a, 0, true).is_none());
        let t = c.stats().total();
        assert_eq!(
            (t.reads, t.writes, t.hits, t.misses, t.writebacks),
            (0, 0, 0, 0, 0)
        );
        // Re-install on a resident line ORs the dirty flag, no stats.
        assert!(c.install(a, 0, false).is_none());
        assert!(c.probe(0));
        // Fill set 0 (blocks 0, 2, 4 collide): the second install evicts
        // the dirty LRU line and charges *its owner's* writeback only.
        assert!(c.install(b, 32, false).is_none());
        let victim = c.install(b, 64, false).expect("set full, must evict");
        assert_eq!(victim.owner, a);
        assert!(victim.dirty);
        assert_eq!(c.stats().ds(a).writebacks, 1);
        assert_eq!(c.stats().ds(b).writebacks, 0);
    }

    #[test]
    fn probe_and_mark_dirty_touch_no_stats_or_recency() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        assert!(c.access(MemRef::read(a, 0)).is_miss()); // block 0
        assert!(c.access(MemRef::read(a, 32)).is_miss()); // block 2, same set
        let before = c.stats().total();
        assert!(c.probe(0));
        assert!(!c.probe(512));
        assert!(c.mark_dirty(0));
        assert!(!c.mark_dirty(512));
        assert_eq!(c.stats().total(), before);
        // Block 0 stayed LRU despite probe/mark_dirty: the next conflict
        // evicts it (and its marked dirty bit makes that a writeback).
        assert!(c.access(MemRef::read(a, 64)).is_miss());
        assert!(!c.probe(0));
        assert_eq!(c.stats().ds(a).writebacks, 1);
    }

    #[test]
    fn invalidate_extracts_victim_and_keeps_scan_invariants() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        assert!(c.access(MemRef::write(a, 0)).is_miss()); // block 0, dirty
        assert!(c.access(MemRef::read(a, 32)).is_miss()); // block 2
        let before = c.stats().total();
        let v = c.invalidate(0).expect("resident");
        assert!(v.dirty);
        assert_eq!(v.owner, a);
        assert_eq!(v.addr, 0);
        assert_eq!(c.stats().total(), before, "invalidate charges nothing");
        assert!(c.invalidate(0).is_none());
        // The freed way is reusable and the survivor still hits: the
        // occupied-prefix compaction kept the set scannable.
        assert_eq!(c.access(MemRef::read(a, 32)), AccessOutcome::Hit);
        assert!(c.access(MemRef::read(a, 64)).is_miss());
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn lookup_extract_counts_like_demand_but_never_fills() {
        let mut c = SetAssociativeCache::new(tiny());
        let a = DsId(0);
        // Miss: counted, nothing installed.
        assert_eq!(c.lookup_extract(MemRef::read(a, 0)), None);
        assert_eq!(c.stats().ds(a).misses, 1);
        assert!(!c.probe(0));
        // Hit: counted, line extracted with its dirty flag.
        assert!(c.access(MemRef::write(a, 0)).is_miss());
        assert_eq!(c.lookup_extract(MemRef::read(a, 0)), Some(true));
        assert_eq!(c.stats().ds(a).hits, 1);
        assert!(!c.probe(0));
        assert_eq!(c.stats().ds(a).reads, 2);
        assert_eq!(c.stats().ds(a).writes, 1);
    }

    #[test]
    fn render_smoke() {
        let mut reg = DsRegistry::new();
        let a = reg.register("A");
        let mut c = SetAssociativeCache::new(tiny());
        c.access(MemRef::read(a, 0));
        let table = c.stats().render(&reg);
        assert!(table.contains('A'));
    }
}
