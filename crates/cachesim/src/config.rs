//! Cache geometry configuration.
//!
//! Mirrors the notation of paper Table III:
//!
//! | symbol | meaning              | field            |
//! |--------|----------------------|------------------|
//! | `CA`   | cache associativity  | [`CacheConfig::associativity`] |
//! | `NA`   | number of cache sets | [`CacheConfig::num_sets`]      |
//! | `CL`   | cache line length    | [`CacheConfig::line_bytes`]    |
//! | `Cc`   | cache capacity       | [`CacheConfig::capacity`]      |

use std::fmt;

/// Error returned when a cache geometry is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Associativity must be at least 1.
    ZeroAssociativity,
    /// Associativity must fit the 16-bit per-way rank state.
    HugeAssociativity(usize),
    /// The number of sets must be a power of two (so that the set index is a
    /// bit field of the block address) and at least 1.
    BadNumSets(usize),
    /// The line length must be a power of two and at least 1 byte.
    BadLineBytes(usize),
    /// A cache hierarchy must have at least one level.
    EmptyHierarchy,
    /// Hierarchy levels must be ordered from smallest (closest to the CPU)
    /// to largest: level `level` is smaller than the level above it.
    InvertedHierarchy {
        /// Index of the offending (lower, larger-expected) level.
        level: usize,
        /// Capacity of the level above, in bytes.
        upper_bytes: usize,
        /// Capacity of the offending level, in bytes.
        lower_bytes: usize,
    },
    /// Hierarchy line sizes must not shrink going down: a lower level's
    /// line must cover the line above it, or writebacks and
    /// back-invalidations would straddle multiple lower lines.
    ShrinkingLineBytes {
        /// Index of the offending lower level.
        level: usize,
        /// Line length of the level above, in bytes.
        upper_bytes: usize,
        /// Line length of the offending level, in bytes.
        lower_bytes: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroAssociativity => write!(f, "cache associativity must be >= 1"),
            ConfigError::HugeAssociativity(n) => {
                write!(f, "cache associativity must be <= 65536, got {n}")
            }
            ConfigError::BadNumSets(n) => {
                write!(f, "number of cache sets must be a power of two, got {n}")
            }
            ConfigError::BadLineBytes(n) => {
                write!(f, "cache line length must be a power of two bytes, got {n}")
            }
            ConfigError::EmptyHierarchy => {
                write!(f, "cache hierarchy must have at least one level")
            }
            ConfigError::InvertedHierarchy {
                level,
                upper_bytes,
                lower_bytes,
            } => {
                write!(
                    f,
                    "hierarchy level {level} ({lower_bytes} B) is smaller than \
                     the level above it ({upper_bytes} B); order levels from \
                     smallest to largest"
                )
            }
            ConfigError::ShrinkingLineBytes {
                level,
                upper_bytes,
                lower_bytes,
            } => {
                write!(
                    f,
                    "hierarchy level {level} has a {lower_bytes} B line, \
                     shorter than the {upper_bytes} B line above it; line \
                     sizes must not shrink going down"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Geometry of a set-associative cache.
///
/// Capacity is derived: `Cc = CA * NA * CL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// `CA`: number of ways per set.
    pub associativity: usize,
    /// `NA`: number of sets.
    pub num_sets: usize,
    /// `CL`: cache line (block) length in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Create a validated configuration.
    ///
    /// `num_sets` and `line_bytes` must be powers of two; `associativity`
    /// must be nonzero.
    pub fn new(
        associativity: usize,
        num_sets: usize,
        line_bytes: usize,
    ) -> Result<Self, ConfigError> {
        let config = Self {
            associativity,
            num_sets,
            line_bytes,
        };
        config.validate()?;
        Ok(config)
    }

    /// Check the power-of-two assumptions the address math relies on.
    ///
    /// The fields are public (so Table IV can be `const`), which means a
    /// struct literal can bypass [`CacheConfig::new`]; every consumer that
    /// decomposes addresses goes through [`CacheConfig::geometry`], which
    /// re-validates, so a non-power-of-two literal fails loudly instead of
    /// silently mis-mapping addresses.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.associativity == 0 {
            return Err(ConfigError::ZeroAssociativity);
        }
        if self.associativity > 1 << 16 {
            return Err(ConfigError::HugeAssociativity(self.associativity));
        }
        if self.num_sets == 0 || !self.num_sets.is_power_of_two() {
            return Err(ConfigError::BadNumSets(self.num_sets));
        }
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::BadLineBytes(self.line_bytes));
        }
        Ok(())
    }

    /// Precompute the shift/mask constants for address decomposition,
    /// validating the geometry first.
    pub fn try_geometry(&self) -> Result<CacheGeometry, ConfigError> {
        self.validate()?;
        Ok(CacheGeometry {
            line_shift: self.line_bytes.trailing_zeros(),
            set_shift: self.num_sets.trailing_zeros(),
            set_mask: self.num_sets as u64 - 1,
        })
    }

    /// Like [`CacheConfig::try_geometry`] but panics with the descriptive
    /// error for invalid geometries (used by infallible constructors).
    pub fn geometry(&self) -> CacheGeometry {
        self.try_geometry()
            .unwrap_or_else(|e| panic!("invalid cache geometry: {e}"))
    }

    /// Total capacity `Cc` in bytes.
    pub fn capacity(&self) -> usize {
        self.associativity * self.num_sets * self.line_bytes
    }

    /// Total number of cache blocks (`CA * NA`).
    pub fn num_blocks(&self) -> usize {
        self.associativity * self.num_sets
    }

    /// Map a byte address to its cache block number (`addr / CL`).
    ///
    /// Convenience for cold paths; the simulator hot loop uses a
    /// [`CacheGeometry`] computed once instead.
    #[inline]
    pub fn block_of(&self, addr: u64) -> u64 {
        addr >> self.line_bytes.trailing_zeros()
    }

    /// Map a block number to its set index (`block mod NA`).
    #[inline]
    pub fn set_of(&self, block: u64) -> usize {
        (block & (self.num_sets as u64 - 1)) as usize
    }

    /// Tag of a block (`block / NA`).
    #[inline]
    pub fn tag_of(&self, block: u64) -> u64 {
        block >> self.num_sets.trailing_zeros()
    }

    /// Reconstruct the base byte address of the line with the given tag
    /// in the given set (inverse of [`block_of`]/[`set_of`]/[`tag_of`]).
    ///
    /// [`block_of`]: CacheConfig::block_of
    /// [`set_of`]: CacheConfig::set_of
    /// [`tag_of`]: CacheConfig::tag_of
    #[inline]
    pub fn addr_of(&self, tag: u64, set: usize) -> u64 {
        let block = (tag << self.num_sets.trailing_zeros()) | set as u64;
        block << self.line_bytes.trailing_zeros()
    }
}

/// Address-decomposition constants of one [`CacheConfig`], computed once.
///
/// The per-access path splits every address into (tag, set, block offset);
/// recomputing `trailing_zeros` and the set mask from the raw geometry on
/// each reference is measurable waste at tens of millions of references
/// per second, so [`CacheConfig::geometry`] hoists them into this struct
/// at cache-construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// `log2(CL)`: shift from byte address to block number.
    pub line_shift: u32,
    /// `log2(NA)`: shift from block number to tag.
    pub set_shift: u32,
    /// `NA - 1`: mask extracting the set index from a block number.
    pub set_mask: u64,
}

impl CacheGeometry {
    /// Block number of a byte address.
    #[inline(always)]
    pub fn block_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Set index of a block.
    #[inline(always)]
    pub fn set_of(&self, block: u64) -> usize {
        (block & self.set_mask) as usize
    }

    /// Tag of a block.
    #[inline(always)]
    pub fn tag_of(&self, block: u64) -> u64 {
        block >> self.set_shift
    }

    /// Base byte address of the line with `tag` in `set`.
    #[inline(always)]
    pub fn addr_of(&self, tag: u64, set: usize) -> u64 {
        ((tag << self.set_shift) | set as u64) << self.line_shift
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cap = self.capacity();
        if cap >= 1024 * 1024 && cap.is_multiple_of(1024 * 1024) {
            write!(f, "{}MB", cap / (1024 * 1024))?;
        } else if cap >= 1024 && cap.is_multiple_of(1024) {
            write!(f, "{}KB", cap / 1024)?;
        } else {
            write!(f, "{cap}B")?;
        }
        write!(
            f,
            " (CA={}, NA={}, CL={}B)",
            self.associativity, self.num_sets, self.line_bytes
        )
    }
}

/// The six cache configurations of paper Table IV.
pub mod table4 {
    use super::CacheConfig;

    /// "Small (Verification)": 4-way, 64 sets, 32 B lines, 8 KB.
    pub const SMALL_VERIFICATION: CacheConfig = CacheConfig {
        associativity: 4,
        num_sets: 64,
        line_bytes: 32,
    };

    /// "Large (Verification)": 16-way, 4096 sets, 64 B lines, 4 MB.
    pub const LARGE_VERIFICATION: CacheConfig = CacheConfig {
        associativity: 16,
        num_sets: 4096,
        line_bytes: 64,
    };

    /// "16KB (Profiling)": 2-way, 1024 sets, 8 B lines.
    pub const PROFILE_16KB: CacheConfig = CacheConfig {
        associativity: 2,
        num_sets: 1024,
        line_bytes: 8,
    };

    /// "128KB (Profiling)": 4-way, 2048 sets, 16 B lines.
    pub const PROFILE_128KB: CacheConfig = CacheConfig {
        associativity: 4,
        num_sets: 2048,
        line_bytes: 16,
    };

    /// "1MB (Profiling)": 8-way, 4096 sets, 32 B lines.
    ///
    /// The paper lists `CA = 6`, which does not multiply out to 1 MB with
    /// `NA = 4096` and `CL = 32` (6*4096*32 = 768 KB); we use the nearest
    /// power-of-two associativity that matches the stated 1 MB capacity.
    pub const PROFILE_1MB: CacheConfig = CacheConfig {
        associativity: 8,
        num_sets: 4096,
        line_bytes: 32,
    };

    /// "8MB (Profiling)": 8-way, 8192 sets, 64 B lines... the paper's row
    /// (8, 8192, 64) multiplies out to exactly 4 MB * 2 = 8192*8*64 = 4 MiB?
    /// 8192 sets * 8 ways * 64 B = 4 MiB. To honour the stated 8 MB capacity
    /// we use 16 ways.
    pub const PROFILE_8MB: CacheConfig = CacheConfig {
        associativity: 16,
        num_sets: 8192,
        line_bytes: 64,
    };

    /// The four profiling configurations used by paper Figure 5, smallest
    /// to largest.
    pub const PROFILING: [CacheConfig; 4] = [PROFILE_16KB, PROFILE_128KB, PROFILE_1MB, PROFILE_8MB];

    /// Labels matching [`PROFILING`].
    pub const PROFILING_LABELS: [&str; 4] = ["16KB", "128KB", "1MB", "8MB"];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_product() {
        let c = CacheConfig::new(4, 64, 32).unwrap();
        assert_eq!(c.capacity(), 8 * 1024);
        assert_eq!(c.num_blocks(), 256);
    }

    #[test]
    fn rejects_zero_associativity() {
        assert_eq!(
            CacheConfig::new(0, 64, 32),
            Err(ConfigError::ZeroAssociativity)
        );
    }

    #[test]
    fn rejects_non_power_of_two_sets() {
        assert_eq!(
            CacheConfig::new(4, 65, 32),
            Err(ConfigError::BadNumSets(65))
        );
        assert_eq!(CacheConfig::new(4, 0, 32), Err(ConfigError::BadNumSets(0)));
    }

    #[test]
    fn rejects_non_power_of_two_lines() {
        assert_eq!(
            CacheConfig::new(4, 64, 48),
            Err(ConfigError::BadLineBytes(48))
        );
        assert_eq!(
            CacheConfig::new(4, 64, 0),
            Err(ConfigError::BadLineBytes(0))
        );
    }

    #[test]
    fn address_mapping_roundtrip() {
        let c = CacheConfig::new(4, 64, 32).unwrap();
        let addr = 0xdead_beef;
        let block = c.block_of(addr);
        assert_eq!(block, addr / 32);
        let set = c.set_of(block);
        assert_eq!(set, (block % 64) as usize);
        let tag = c.tag_of(block);
        assert_eq!(tag, block / 64);
        // (tag, set) uniquely reconstructs the block and line address.
        assert_eq!(tag * 64 + set as u64, block);
        assert_eq!(c.addr_of(tag, set), block * 32);
        assert_eq!(c.block_of(c.addr_of(tag, set)), block);
    }

    #[test]
    fn table4_capacities_match_labels() {
        use table4::*;
        assert_eq!(SMALL_VERIFICATION.capacity(), 8 * 1024);
        assert_eq!(LARGE_VERIFICATION.capacity(), 4 * 1024 * 1024);
        assert_eq!(PROFILE_16KB.capacity(), 16 * 1024);
        assert_eq!(PROFILE_128KB.capacity(), 128 * 1024);
        assert_eq!(PROFILE_1MB.capacity(), 1024 * 1024);
        assert_eq!(PROFILE_8MB.capacity(), 8 * 1024 * 1024);
    }

    #[test]
    fn geometry_matches_config_math() {
        let c = CacheConfig::new(4, 64, 32).unwrap();
        let g = c.geometry();
        for addr in [0u64, 31, 32, 0xdead_beef, u64::MAX] {
            let block = c.block_of(addr);
            assert_eq!(g.block_of(addr), block);
            assert_eq!(g.set_of(block), c.set_of(block));
            assert_eq!(g.tag_of(block), c.tag_of(block));
            let (tag, set) = (c.tag_of(block), c.set_of(block));
            assert_eq!(g.addr_of(tag, set), c.addr_of(tag, set));
        }
    }

    #[test]
    fn geometry_rejects_unvalidated_literals() {
        // Public fields allow non-power-of-two literals to bypass `new`;
        // geometry() re-validates with the descriptive error.
        let bad = CacheConfig {
            associativity: 4,
            num_sets: 65,
            line_bytes: 32,
        };
        assert_eq!(bad.try_geometry(), Err(ConfigError::BadNumSets(65)));
        let bad_line = CacheConfig {
            associativity: 4,
            num_sets: 64,
            line_bytes: 48,
        };
        assert_eq!(bad_line.try_geometry(), Err(ConfigError::BadLineBytes(48)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_panic_is_descriptive() {
        let bad = CacheConfig {
            associativity: 2,
            num_sets: 3,
            line_bytes: 32,
        };
        let _ = bad.geometry();
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(
            table4::SMALL_VERIFICATION.to_string(),
            "8KB (CA=4, NA=64, CL=32B)"
        );
    }
}
