//! Cache geometry configuration.
//!
//! Mirrors the notation of paper Table III:
//!
//! | symbol | meaning              | field            |
//! |--------|----------------------|------------------|
//! | `CA`   | cache associativity  | [`CacheConfig::associativity`] |
//! | `NA`   | number of cache sets | [`CacheConfig::num_sets`]      |
//! | `CL`   | cache line length    | [`CacheConfig::line_bytes`]    |
//! | `Cc`   | cache capacity       | [`CacheConfig::capacity`]      |

use std::fmt;

/// Error returned when a cache geometry is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Associativity must be at least 1.
    ZeroAssociativity,
    /// The number of sets must be a power of two (so that the set index is a
    /// bit field of the block address) and at least 1.
    BadNumSets(usize),
    /// The line length must be a power of two and at least 1 byte.
    BadLineBytes(usize),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroAssociativity => write!(f, "cache associativity must be >= 1"),
            ConfigError::BadNumSets(n) => {
                write!(f, "number of cache sets must be a power of two, got {n}")
            }
            ConfigError::BadLineBytes(n) => {
                write!(f, "cache line length must be a power of two bytes, got {n}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Geometry of a set-associative cache.
///
/// Capacity is derived: `Cc = CA * NA * CL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// `CA`: number of ways per set.
    pub associativity: usize,
    /// `NA`: number of sets.
    pub num_sets: usize,
    /// `CL`: cache line (block) length in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Create a validated configuration.
    ///
    /// `num_sets` and `line_bytes` must be powers of two; `associativity`
    /// must be nonzero.
    pub fn new(
        associativity: usize,
        num_sets: usize,
        line_bytes: usize,
    ) -> Result<Self, ConfigError> {
        if associativity == 0 {
            return Err(ConfigError::ZeroAssociativity);
        }
        if num_sets == 0 || !num_sets.is_power_of_two() {
            return Err(ConfigError::BadNumSets(num_sets));
        }
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(ConfigError::BadLineBytes(line_bytes));
        }
        Ok(Self {
            associativity,
            num_sets,
            line_bytes,
        })
    }

    /// Total capacity `Cc` in bytes.
    pub fn capacity(&self) -> usize {
        self.associativity * self.num_sets * self.line_bytes
    }

    /// Total number of cache blocks (`CA * NA`).
    pub fn num_blocks(&self) -> usize {
        self.associativity * self.num_sets
    }

    /// Map a byte address to its cache block number (`addr / CL`).
    #[inline]
    pub fn block_of(&self, addr: u64) -> u64 {
        addr >> self.line_bytes.trailing_zeros()
    }

    /// Map a block number to its set index (`block mod NA`).
    #[inline]
    pub fn set_of(&self, block: u64) -> usize {
        (block & (self.num_sets as u64 - 1)) as usize
    }

    /// Tag of a block (`block / NA`).
    #[inline]
    pub fn tag_of(&self, block: u64) -> u64 {
        block >> self.num_sets.trailing_zeros()
    }

    /// Reconstruct the base byte address of the line with the given tag
    /// in the given set (inverse of [`block_of`]/[`set_of`]/[`tag_of`]).
    ///
    /// [`block_of`]: CacheConfig::block_of
    /// [`set_of`]: CacheConfig::set_of
    /// [`tag_of`]: CacheConfig::tag_of
    #[inline]
    pub fn addr_of(&self, tag: u64, set: usize) -> u64 {
        let block = (tag << self.num_sets.trailing_zeros()) | set as u64;
        block << self.line_bytes.trailing_zeros()
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cap = self.capacity();
        if cap >= 1024 * 1024 && cap.is_multiple_of(1024 * 1024) {
            write!(f, "{}MB", cap / (1024 * 1024))?;
        } else if cap >= 1024 && cap.is_multiple_of(1024) {
            write!(f, "{}KB", cap / 1024)?;
        } else {
            write!(f, "{cap}B")?;
        }
        write!(
            f,
            " (CA={}, NA={}, CL={}B)",
            self.associativity, self.num_sets, self.line_bytes
        )
    }
}

/// The six cache configurations of paper Table IV.
pub mod table4 {
    use super::CacheConfig;

    /// "Small (Verification)": 4-way, 64 sets, 32 B lines, 8 KB.
    pub const SMALL_VERIFICATION: CacheConfig = CacheConfig {
        associativity: 4,
        num_sets: 64,
        line_bytes: 32,
    };

    /// "Large (Verification)": 16-way, 4096 sets, 64 B lines, 4 MB.
    pub const LARGE_VERIFICATION: CacheConfig = CacheConfig {
        associativity: 16,
        num_sets: 4096,
        line_bytes: 64,
    };

    /// "16KB (Profiling)": 2-way, 1024 sets, 8 B lines.
    pub const PROFILE_16KB: CacheConfig = CacheConfig {
        associativity: 2,
        num_sets: 1024,
        line_bytes: 8,
    };

    /// "128KB (Profiling)": 4-way, 2048 sets, 16 B lines.
    pub const PROFILE_128KB: CacheConfig = CacheConfig {
        associativity: 4,
        num_sets: 2048,
        line_bytes: 16,
    };

    /// "1MB (Profiling)": 8-way, 4096 sets, 32 B lines.
    ///
    /// The paper lists `CA = 6`, which does not multiply out to 1 MB with
    /// `NA = 4096` and `CL = 32` (6*4096*32 = 768 KB); we use the nearest
    /// power-of-two associativity that matches the stated 1 MB capacity.
    pub const PROFILE_1MB: CacheConfig = CacheConfig {
        associativity: 8,
        num_sets: 4096,
        line_bytes: 32,
    };

    /// "8MB (Profiling)": 8-way, 8192 sets, 64 B lines... the paper's row
    /// (8, 8192, 64) multiplies out to exactly 4 MB * 2 = 8192*8*64 = 4 MiB?
    /// 8192 sets * 8 ways * 64 B = 4 MiB. To honour the stated 8 MB capacity
    /// we use 16 ways.
    pub const PROFILE_8MB: CacheConfig = CacheConfig {
        associativity: 16,
        num_sets: 8192,
        line_bytes: 64,
    };

    /// The four profiling configurations used by paper Figure 5, smallest
    /// to largest.
    pub const PROFILING: [CacheConfig; 4] = [PROFILE_16KB, PROFILE_128KB, PROFILE_1MB, PROFILE_8MB];

    /// Labels matching [`PROFILING`].
    pub const PROFILING_LABELS: [&str; 4] = ["16KB", "128KB", "1MB", "8MB"];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_product() {
        let c = CacheConfig::new(4, 64, 32).unwrap();
        assert_eq!(c.capacity(), 8 * 1024);
        assert_eq!(c.num_blocks(), 256);
    }

    #[test]
    fn rejects_zero_associativity() {
        assert_eq!(
            CacheConfig::new(0, 64, 32),
            Err(ConfigError::ZeroAssociativity)
        );
    }

    #[test]
    fn rejects_non_power_of_two_sets() {
        assert_eq!(
            CacheConfig::new(4, 65, 32),
            Err(ConfigError::BadNumSets(65))
        );
        assert_eq!(CacheConfig::new(4, 0, 32), Err(ConfigError::BadNumSets(0)));
    }

    #[test]
    fn rejects_non_power_of_two_lines() {
        assert_eq!(
            CacheConfig::new(4, 64, 48),
            Err(ConfigError::BadLineBytes(48))
        );
        assert_eq!(
            CacheConfig::new(4, 64, 0),
            Err(ConfigError::BadLineBytes(0))
        );
    }

    #[test]
    fn address_mapping_roundtrip() {
        let c = CacheConfig::new(4, 64, 32).unwrap();
        let addr = 0xdead_beef;
        let block = c.block_of(addr);
        assert_eq!(block, addr / 32);
        let set = c.set_of(block);
        assert_eq!(set, (block % 64) as usize);
        let tag = c.tag_of(block);
        assert_eq!(tag, block / 64);
        // (tag, set) uniquely reconstructs the block and line address.
        assert_eq!(tag * 64 + set as u64, block);
        assert_eq!(c.addr_of(tag, set), block * 32);
        assert_eq!(c.block_of(c.addr_of(tag, set)), block);
    }

    #[test]
    fn table4_capacities_match_labels() {
        use table4::*;
        assert_eq!(SMALL_VERIFICATION.capacity(), 8 * 1024);
        assert_eq!(LARGE_VERIFICATION.capacity(), 4 * 1024 * 1024);
        assert_eq!(PROFILE_16KB.capacity(), 16 * 1024);
        assert_eq!(PROFILE_128KB.capacity(), 128 * 1024);
        assert_eq!(PROFILE_1MB.capacity(), 1024 * 1024);
        assert_eq!(PROFILE_8MB.capacity(), 8 * 1024 * 1024);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(
            table4::SMALL_VERIFICATION.to_string(),
            "8KB (CA=4, NA=64, CL=32B)"
        );
    }
}
