//! Configurable N-level cache hierarchy (extension).
//!
//! The paper models the LLC only ("it has the largest impact on the
//! number of main memory accesses", §III-C) and leaves richer hierarchies
//! as ongoing work. Related work shows why that matters: vulnerability
//! shifts dramatically across the hierarchy (Jaulmes et al., "Memory
//! Vulnerability: A Case for Delaying Error Reporting"), so per-level
//! exposure — not just the LLC filter — decides where ECC buys the most
//! DVF reduction. This module provides the substrate for that study: an
//! arbitrary stack of [`SetAssociativeCache`] levels, each with its own
//! geometry, replacement policy, inclusion relationship to the levels
//! above, and an optional next-line / constant-stride prefetcher.
//!
//! # Demand path
//!
//! Level 0 is closest to the CPU; every reference goes there. A miss
//! walks down the stack issuing a line-sized read at each level until one
//! hits; missing every level charges one DRAM read. Fills happen during
//! the walk; evicted victims are collected and routed *after* the walk
//! completes, so an incoming fill never observes (or is perturbed by) its
//! own level's victim traffic.
//!
//! # Writeback semantics ("write-no-fill")
//!
//! A dirty victim evicted from level `i` is offered to the levels below
//! as a *writeback*, not as an access: a level that holds the line
//! absorbs it (promote + mark dirty); a level that does not hold it
//! forwards the writeback downward, ultimately to DRAM as one write.
//! Crucially a writeback never read-allocates — the data is moving *down*
//! with no demand attached, so allocating would charge a phantom memory
//! read (the bug the original two-level stub had) and perturb the lower
//! level's recency order. Clean victims die silently unless the next
//! level is exclusive (a victim cache is filled by the level above's
//! victims, clean ones included).
//!
//! # Inclusion
//!
//! Each level's [`InclusionPolicy`] describes its relationship to the
//! levels *above* it (level 0's is ignored):
//!
//! * `Nine` — non-inclusive, non-exclusive: no invariant maintained.
//! * `Inclusive` — evicting a line here back-invalidates every copy
//!   above; an upper dirty copy merges into the single downstream
//!   writeback.
//! * `Exclusive` — the level holds only what the levels above evicted:
//!   the demand walk *extracts* on hit (the line moves up, its dirty bit
//!   migrating with it) and installs nothing on miss.
//!
//! # Main-memory accounting
//!
//! DVF cares about main-memory accesses. The hierarchy charges DRAM
//! directly: demand reads that miss every level, writebacks that reach
//! the bottom, and (separately, so demand statistics stay unpolluted)
//! prefetch fills sourced from memory. `mem_accesses` sums all three.

use crate::cache::{SetAssociativeCache, Victim};
use crate::config::{CacheConfig, ConfigError};
use crate::replacement::{Fifo, Lru, PolicyKind, RandomEvict, TreePlru};
use crate::stats::{CacheStats, DsStats};
use crate::trace::{AccessKind, DsId, MemRef, Trace};

/// Relationship of a hierarchy level to the levels above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InclusionPolicy {
    /// Non-inclusive, non-exclusive: fills go everywhere, no invariant.
    #[default]
    Nine,
    /// Evictions back-invalidate the levels above.
    Inclusive,
    /// Holds only victims of the levels above; hits are extracted upward.
    Exclusive,
}

impl InclusionPolicy {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            InclusionPolicy::Nine => "nine",
            InclusionPolicy::Inclusive => "inclusive",
            InclusionPolicy::Exclusive => "exclusive",
        }
    }
}

impl std::str::FromStr for InclusionPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "nine" | "ni" => Ok(InclusionPolicy::Nine),
            "inclusive" | "incl" => Ok(InclusionPolicy::Inclusive),
            "exclusive" | "excl" => Ok(InclusionPolicy::Exclusive),
            other => Err(format!(
                "unknown inclusion policy '{other}' (expected nine|inclusive|exclusive)"
            )),
        }
    }
}

/// Hard cap on the prefetch degree (candidates issued per trigger);
/// larger requested degrees are clamped.
pub const MAX_PREFETCH_DEGREE: usize = 8;

/// One level of a [`HierarchyConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSpec {
    /// Geometry of this level.
    pub cache: CacheConfig,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Relationship to the levels above (ignored for level 0).
    pub inclusion: InclusionPolicy,
    /// Prefetch degree: 0 disables the prefetcher, `1..=`
    /// [`MAX_PREFETCH_DEGREE`] issues that many candidates per trigger.
    pub prefetch_degree: usize,
}

impl LevelSpec {
    /// An LRU, NINE, no-prefetch level — the paper's configuration.
    pub fn new(cache: CacheConfig) -> Self {
        Self {
            cache,
            policy: PolicyKind::Lru,
            inclusion: InclusionPolicy::Nine,
            prefetch_degree: 0,
        }
    }

    /// Replace the replacement policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the inclusion relationship.
    pub fn with_inclusion(mut self, inclusion: InclusionPolicy) -> Self {
        self.inclusion = inclusion;
        self
    }

    /// Enable the prefetcher with the given degree (0 disables).
    pub fn with_prefetch(mut self, degree: usize) -> Self {
        self.prefetch_degree = degree;
        self
    }
}

/// A validated stack of cache levels, ordered from closest-to-CPU
/// (level 0) to closest-to-memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    levels: Vec<LevelSpec>,
}

impl HierarchyConfig {
    /// Validate and build. Capacities must be non-decreasing going down
    /// (equal is allowed — degeneracy tests rely on it) and line sizes
    /// must not shrink going down (a writeback or back-invalidation would
    /// otherwise straddle lower-level lines).
    pub fn new(levels: Vec<LevelSpec>) -> Result<Self, ConfigError> {
        if levels.is_empty() {
            return Err(ConfigError::EmptyHierarchy);
        }
        for (idx, pair) in levels.windows(2).enumerate() {
            let (upper, lower) = (&pair[0].cache, &pair[1].cache);
            let level = idx + 1;
            if lower.capacity() < upper.capacity() {
                return Err(ConfigError::InvertedHierarchy {
                    level,
                    upper_bytes: upper.capacity(),
                    lower_bytes: lower.capacity(),
                });
            }
            if lower.line_bytes < upper.line_bytes {
                return Err(ConfigError::ShrinkingLineBytes {
                    level,
                    upper_bytes: upper.line_bytes,
                    lower_bytes: lower.line_bytes,
                });
            }
        }
        for spec in &levels {
            spec.cache.validate()?;
        }
        Ok(Self { levels })
    }

    /// The paper-default two-level shape: LRU at both levels, NINE, no
    /// prefetch.
    pub fn two_level(l1: CacheConfig, llc: CacheConfig) -> Result<Self, ConfigError> {
        Self::new(vec![LevelSpec::new(l1), LevelSpec::new(llc)])
    }

    /// The validated levels, top (CPU side) first.
    pub fn levels(&self) -> &[LevelSpec] {
        &self.levels
    }

    /// Compact human-readable shape label, e.g.
    /// `2w16s32B:lru:nine+4w64s32B:lru:nine`.
    pub fn label(&self) -> String {
        self.levels
            .iter()
            .map(|l| {
                let mut s = format!(
                    "{}w{}s{}B:{}:{}",
                    l.cache.associativity,
                    l.cache.num_sets,
                    l.cache.line_bytes,
                    l.policy.name(),
                    l.inclusion.name()
                );
                if l.prefetch_degree > 0 {
                    s.push_str(&format!(
                        ":pf{}",
                        l.prefetch_degree.min(MAX_PREFETCH_DEGREE)
                    ));
                }
                s
            })
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// Prefetcher counters for one level. Prefetch fills are tagged apart
/// from demand traffic: they never appear in the level's demand hit/miss
/// statistics, and their DRAM reads are charged to a separate
/// [`HierarchyReport::dram_prefetch`] pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Candidates issued (after dropping negative addresses).
    pub issued: u64,
    /// Candidates already resident at this level (no work done).
    pub redundant: u64,
    /// Candidates installed into this level.
    pub filled: u64,
    /// Fills whose data came from main memory (no lower level held it).
    pub dram_reads: u64,
}

/// Per-data-structure stride stream: the last observed block, the last
/// delta between observed blocks, and whether a block has been seen yet.
#[derive(Debug, Clone, Copy)]
struct Stream {
    last_block: i64,
    last_delta: i64,
    primed: bool,
}

/// Next-line + constant-stride prefetcher.
///
/// Trained on the demand stream a level actually observes (level 0 sees
/// every reference; level i sees the misses of the levels above). Two
/// consecutive equal non-zero deltas lock a stride; otherwise the
/// prefetcher degrades to next-line. Streams are tracked per data
/// structure, matching how the trace generators interleave kernels.
#[derive(Debug, Clone)]
struct Prefetcher {
    degree: usize,
    streams: Vec<Stream>,
    stats: PrefetchStats,
}

impl Prefetcher {
    fn new(degree: usize) -> Self {
        Self {
            degree: degree.clamp(1, MAX_PREFETCH_DEGREE),
            streams: Vec::new(),
            stats: PrefetchStats::default(),
        }
    }

    /// Observe one demand block; return candidate blocks to prefetch.
    fn advance(&mut self, ds: usize, block: i64) -> ([i64; MAX_PREFETCH_DEGREE], usize) {
        if self.streams.len() <= ds {
            self.streams.resize(
                ds + 1,
                Stream {
                    last_block: 0,
                    last_delta: 0,
                    primed: false,
                },
            );
        }
        let s = &mut self.streams[ds];
        let step = if s.primed {
            let delta = block - s.last_block;
            let locked = delta != 0 && delta == s.last_delta;
            s.last_delta = delta;
            if locked {
                delta
            } else {
                1
            }
        } else {
            s.primed = true;
            1
        };
        s.last_block = block;
        let mut out = [0i64; MAX_PREFETCH_DEGREE];
        let mut len = 0;
        for k in 1..=self.degree as i64 {
            let cand = block + step * k;
            if cand >= 0 {
                out[len] = cand;
                len += 1;
            }
        }
        (out, len)
    }
}

/// Policy-erased cache level: one variant per [`PolicyKind`], so the
/// hierarchy stays monomorphized per level without a trait object in the
/// per-access hot path.
#[derive(Debug, Clone)]
enum AnyCache {
    Lru(SetAssociativeCache<Lru>),
    Fifo(SetAssociativeCache<Fifo>),
    Plru(SetAssociativeCache<TreePlru>),
    Random(SetAssociativeCache<RandomEvict>),
}

macro_rules! with_cache {
    ($any:expr, $c:ident => $body:expr) => {
        match $any {
            AnyCache::Lru($c) => $body,
            AnyCache::Fifo($c) => $body,
            AnyCache::Plru($c) => $body,
            AnyCache::Random($c) => $body,
        }
    };
}

impl AnyCache {
    fn new(config: CacheConfig, policy: PolicyKind) -> Self {
        match policy {
            PolicyKind::Lru => AnyCache::Lru(SetAssociativeCache::with_policy(config, Lru)),
            PolicyKind::Fifo => AnyCache::Fifo(SetAssociativeCache::with_policy(config, Fifo)),
            PolicyKind::Plru => AnyCache::Plru(SetAssociativeCache::with_policy(config, TreePlru)),
            PolicyKind::Random => AnyCache::Random(SetAssociativeCache::with_policy(
                config,
                RandomEvict::default(),
            )),
        }
    }

    fn demand_access(&mut self, r: MemRef) -> crate::cache::DemandOutcome {
        with_cache!(self, c => c.demand_access(r))
    }

    fn lookup_extract(&mut self, r: MemRef) -> Option<bool> {
        with_cache!(self, c => c.lookup_extract(r))
    }

    fn absorb_writeback(&mut self, addr: u64) -> bool {
        with_cache!(self, c => c.absorb_writeback(addr))
    }

    fn install(&mut self, owner: DsId, addr: u64, dirty: bool) -> Option<Victim> {
        with_cache!(self, c => c.install(owner, addr, dirty))
    }

    fn probe(&self, addr: u64) -> bool {
        with_cache!(self, c => c.probe(addr))
    }

    fn mark_dirty(&mut self, addr: u64) -> bool {
        with_cache!(self, c => c.mark_dirty(addr))
    }

    fn invalidate(&mut self, addr: u64) -> Option<Victim> {
        with_cache!(self, c => c.invalidate(addr))
    }

    fn drain_dirty(&mut self) -> Vec<crate::cache::Writeback> {
        with_cache!(self, c => c.drain_dirty())
    }

    fn into_stats(self) -> CacheStats {
        with_cache!(self, c => c.into_stats())
    }
}

/// One live level of a running hierarchy.
#[derive(Debug, Clone)]
struct Level {
    cache: AnyCache,
    inclusion: InclusionPolicy,
    line_bytes: u64,
    line_shift: u32,
    prefetcher: Option<Prefetcher>,
}

/// A running N-level write-back hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    levels: Vec<Level>,
    /// DRAM demand traffic: `misses` = reads, `writebacks` = writes.
    dram: CacheStats,
    /// DRAM reads performed on behalf of prefetchers, kept apart so
    /// demand statistics stay unpolluted.
    dram_prefetch: CacheStats,
    refs: u64,
    /// Reusable victim scratch (level index, victim); taken/restored per
    /// access so the demand path never allocates.
    pending: Vec<(usize, Victim)>,
}

impl CacheHierarchy {
    /// Back-compatible two-level constructor (LRU, NINE, no prefetch).
    ///
    /// Returns the validation error instead of panicking: an inverted
    /// hierarchy is a client mistake, not a programming error, and
    /// callers like dvf-serve map it to a structured 422.
    pub fn new(l1: CacheConfig, llc: CacheConfig) -> Result<Self, ConfigError> {
        Ok(Self::from_config(HierarchyConfig::two_level(l1, llc)?))
    }

    /// Build from a validated configuration.
    pub fn from_config(config: HierarchyConfig) -> Self {
        let levels = config
            .levels
            .iter()
            .map(|spec| Level {
                cache: AnyCache::new(spec.cache, spec.policy),
                inclusion: spec.inclusion,
                line_bytes: spec.cache.line_bytes as u64,
                line_shift: spec.cache.line_bytes.trailing_zeros(),
                prefetcher: (spec.prefetch_degree > 0)
                    .then(|| Prefetcher::new(spec.prefetch_degree)),
            })
            .collect();
        Self {
            config,
            levels,
            dram: CacheStats::new(),
            dram_prefetch: CacheStats::new(),
            refs: 0,
            pending: Vec::new(),
        }
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Issue one reference.
    pub fn access(&mut self, mref: MemRef) {
        self.refs += 1;
        let n = self.levels.len();
        let out0 = self.levels[0].cache.demand_access(mref);
        let mut hit_level = if out0.hit { 0 } else { n };
        let mut pending = std::mem::take(&mut self.pending);
        debug_assert!(pending.is_empty());
        if let Some(v) = out0.victim {
            pending.push((0, v));
        }
        if !out0.hit {
            // Walk down until a level holds the line; every level on the
            // way sees one line-sized read. Fills happen here; victim
            // routing is deferred until the walk is complete.
            let mut extracted_dirty = false;
            for i in 1..n {
                let lower = MemRef::new(mref.ds, mref.addr, AccessKind::Read);
                if self.levels[i].inclusion == InclusionPolicy::Exclusive {
                    if let Some(dirty) = self.levels[i].cache.lookup_extract(lower) {
                        extracted_dirty |= dirty;
                        hit_level = i;
                        break;
                    }
                } else {
                    let out = self.levels[i].cache.demand_access(lower);
                    if let Some(v) = out.victim {
                        pending.push((i, v));
                    }
                    if out.hit {
                        hit_level = i;
                        break;
                    }
                }
            }
            if hit_level == n {
                self.dram.ds_mut(mref.ds).misses += 1;
            }
            if extracted_dirty {
                // The exclusive copy's dirtiness migrates up with the
                // line (conservatively onto the one level-0 line the
                // demand touched when line sizes differ).
                self.levels[0].cache.mark_dirty(mref.addr);
            }
            // Fill-before-writeback: only now do victims move down.
            for (i, v) in pending.drain(..) {
                self.push_victim(i, v);
            }
        }
        self.pending = pending;
        // Prefetchers train on the demand stream each level observed:
        // level 0 always, deeper levels only when everything above missed.
        for i in 0..=hit_level.min(n - 1) {
            if self.levels[i].prefetcher.is_some() {
                self.issue_prefetches(i, mref.ds, mref.addr);
            }
        }
    }

    /// Route a victim evicted from `from` down the stack.
    fn push_victim(&mut self, from: usize, victim: Victim) {
        let mut v = victim;
        if self.levels[from].inclusion == InclusionPolicy::Inclusive
            && from > 0
            && self.invalidate_above(from, v.addr)
        {
            // An upper dirty copy rides along on the one downstream
            // writeback instead of being silently dropped.
            v.dirty = true;
        }
        let n = self.levels.len();
        let mut j = from + 1;
        while j < n {
            if self.levels[j].inclusion == InclusionPolicy::Exclusive {
                // Victim cache: allocate clean and dirty victims alike;
                // its own victim continues down.
                match self.levels[j].cache.install(v.owner, v.addr, v.dirty) {
                    None => return,
                    Some(next) => {
                        v = next;
                        j += 1;
                    }
                }
            } else {
                if !v.dirty {
                    return; // clean data is already present below or in DRAM
                }
                if self.levels[j].cache.absorb_writeback(v.addr) {
                    return; // write-no-fill: updated the resident copy
                }
                j += 1; // not resident: forward the writeback downward
            }
        }
        if v.dirty {
            self.dram.ds_mut(v.owner).writebacks += 1;
        }
    }

    /// Invalidate every copy of the level-`j` line at `addr` in the
    /// levels above `j`, returning whether any removed copy was dirty.
    /// Upper levels may have shorter lines, so each is probed once per
    /// contained sub-line.
    fn invalidate_above(&mut self, j: usize, addr: u64) -> bool {
        let line_j = self.levels[j].line_bytes;
        let mut dirty = false;
        for i in 0..j {
            let line_i = self.levels[i].line_bytes;
            let mut a = addr;
            while a < addr + line_j {
                if let Some(v) = self.levels[i].cache.invalidate(a) {
                    dirty |= v.dirty;
                }
                a += line_i;
            }
        }
        dirty
    }

    /// Train level `i`'s prefetcher on the observed demand reference and
    /// issue its candidates. A candidate already resident is redundant;
    /// otherwise it is installed clean, sourced from the first lower
    /// level holding it (a probe — prefetch never perturbs lower-level
    /// recency) or, failing that, from DRAM on the prefetch account.
    fn issue_prefetches(&mut self, i: usize, ds: DsId, addr: u64) {
        let block = (addr >> self.levels[i].line_shift) as i64;
        let shift = self.levels[i].line_shift;
        let pf = self.levels[i].prefetcher.as_mut().expect("caller checked");
        let (cands, len) = pf.advance(ds.0 as usize, block);
        for &cand in &cands[..len] {
            let paddr = (cand as u64) << shift;
            fn pf_stats(lvl: &mut Level) -> &mut PrefetchStats {
                &mut lvl.prefetcher.as_mut().expect("caller checked").stats
            }
            pf_stats(&mut self.levels[i]).issued += 1;
            if self.levels[i].cache.probe(paddr) {
                pf_stats(&mut self.levels[i]).redundant += 1;
                continue;
            }
            let from_below = (i + 1..self.levels.len()).any(|j| self.levels[j].cache.probe(paddr));
            if !from_below {
                self.dram_prefetch.ds_mut(ds).misses += 1;
                pf_stats(&mut self.levels[i]).dram_reads += 1;
            }
            pf_stats(&mut self.levels[i]).filled += 1;
            if let Some(v) = self.levels[i].cache.install(ds, paddr, false) {
                self.push_victim(i, v);
            }
        }
    }

    /// Replay a slice of references.
    pub fn replay(&mut self, refs: &[MemRef]) {
        for &r in refs {
            self.access(r);
        }
    }

    /// Flush the whole stack top-down: each level's dirty lines drain
    /// into the levels below (absorbing, allocating into exclusive
    /// levels, or forwarding) and ultimately to DRAM.
    pub fn flush(&mut self) {
        for i in 0..self.levels.len() {
            let drained = self.levels[i].cache.drain_dirty();
            for wb in drained {
                self.push_victim(
                    i,
                    Victim {
                        owner: wb.owner,
                        addr: wb.addr,
                        dirty: true,
                    },
                );
            }
        }
    }

    /// Finish (flushing) and report.
    pub fn into_report(mut self) -> HierarchyReport {
        self.flush();
        let specs = self.config.levels.clone();
        let levels = self
            .levels
            .into_iter()
            .zip(specs)
            .map(|(level, spec)| LevelReport {
                config: spec.cache,
                policy: spec.policy,
                inclusion: spec.inclusion,
                prefetch_degree: spec.prefetch_degree.min(MAX_PREFETCH_DEGREE),
                prefetch: level
                    .prefetcher
                    .as_ref()
                    .map(|p| p.stats)
                    .unwrap_or_default(),
                stats: level.cache.into_stats(),
            })
            .collect();
        HierarchyReport {
            levels,
            dram: self.dram,
            dram_prefetch: self.dram_prefetch,
            refs: self.refs,
        }
    }
}

/// Statistics of one level after a hierarchy run.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// Geometry the level ran with.
    pub config: CacheConfig,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Inclusion relationship to the levels above.
    pub inclusion: InclusionPolicy,
    /// Effective prefetch degree (0 = disabled).
    pub prefetch_degree: usize,
    /// Demand statistics (prefetch fills excluded by construction).
    pub stats: CacheStats,
    /// Prefetcher counters (zeroes when disabled).
    pub prefetch: PrefetchStats,
}

/// Full per-level statistics of a hierarchy run.
#[derive(Debug, Clone)]
pub struct HierarchyReport {
    /// Per-level reports, top (CPU side) first.
    pub levels: Vec<LevelReport>,
    /// DRAM demand traffic: `misses` = reads, `writebacks` = writes.
    pub dram: CacheStats,
    /// DRAM reads made by prefetchers (kept off the demand account).
    pub dram_prefetch: CacheStats,
    /// References issued.
    pub refs: u64,
}

impl HierarchyReport {
    /// Main-memory accesses attributed to `ds`, prefetch reads included.
    pub fn mem_accesses(&self, ds: DsId) -> u64 {
        self.dram.ds(ds).mem_accesses() + self.dram_prefetch.ds(ds).misses
    }

    /// Main-memory accesses attributed to `ds` by demand traffic alone.
    pub fn demand_mem_accesses(&self, ds: DsId) -> u64 {
        self.dram.ds(ds).mem_accesses()
    }

    /// Aggregate main-memory accesses, prefetch reads included.
    pub fn total_mem_accesses(&self) -> u64 {
        self.dram.total().mem_accesses() + self.dram_prefetch.total().misses
    }

    /// Aggregate per-level summary `(first level, last level)` —
    /// back-compatible with the old two-level `(l1, llc)` shape.
    pub fn totals(&self) -> (DsStats, DsStats) {
        (
            self.levels
                .first()
                .map(|l| l.stats.total())
                .unwrap_or_default(),
            self.levels
                .last()
                .map(|l| l.stats.total())
                .unwrap_or_default(),
        )
    }
}

/// Simulate a whole trace through a two-level LRU/NINE hierarchy.
///
/// Panics with the [`ConfigError`] message on an invalid shape; use
/// [`simulate_hierarchy_config`] for fallible construction.
pub fn simulate_hierarchy(trace: &Trace, l1: CacheConfig, llc: CacheConfig) -> HierarchyReport {
    let config = HierarchyConfig::two_level(l1, llc).expect("invalid two-level hierarchy");
    simulate_hierarchy_config(trace, &config)
}

/// Simulate a whole trace through an arbitrary validated hierarchy.
pub fn simulate_hierarchy_config(trace: &Trace, config: &HierarchyConfig) -> HierarchyReport {
    let mut h = CacheHierarchy::from_config(config.clone());
    h.replay(&trace.refs);
    h.into_report()
}

/// Fan a trace across a grid of hierarchy shapes, one report per shape.
///
/// The trace is shared by reference across scoped worker threads — never
/// cloned — and reports come back in job order, bit-identical to running
/// [`simulate_hierarchy_config`] per shape sequentially.
pub fn simulate_hierarchy_many(trace: &Trace, configs: &[HierarchyConfig]) -> Vec<HierarchyReport> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    simulate_hierarchy_many_with_threads(trace, configs, threads)
}

/// [`simulate_hierarchy_many`] with an explicit worker-thread cap
/// (`threads == 1` degenerates to a plain sequential loop).
pub fn simulate_hierarchy_many_with_threads(
    trace: &Trace,
    configs: &[HierarchyConfig],
    threads: usize,
) -> Vec<HierarchyReport> {
    let workers = threads.max(1).min(configs.len().max(1));
    let _span = dvf_obs::span("cachesim.hier.par");
    dvf_obs::add("cachesim.hier.par.jobs", configs.len() as u64);
    dvf_obs::add("cachesim.hier.par.workers", workers as u64);
    if workers <= 1 || configs.len() <= 1 {
        return configs
            .iter()
            .map(|c| simulate_hierarchy_config(trace, c))
            .collect();
    }
    let chunk = configs.len().div_ceil(workers);
    let mut results: Vec<Option<HierarchyReport>> = (0..configs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot_chunk, cfg_chunk) in results.chunks_mut(chunk).zip(configs.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, cfg) in slot_chunk.iter_mut().zip(cfg_chunk) {
                    *slot = Some(simulate_hierarchy_config(trace, cfg));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every hierarchy slot filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, simulate_with_policy};
    use std::collections::VecDeque;

    fn l1() -> CacheConfig {
        CacheConfig::new(2, 16, 32).unwrap() // 1 KiB
    }

    fn llc() -> CacheConfig {
        CacheConfig::new(4, 64, 32).unwrap() // 8 KiB
    }

    fn streaming_trace(bytes: u64) -> Trace {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for addr in (0..bytes).step_by(8) {
            t.push(MemRef::read(a, addr));
        }
        t
    }

    /// Deterministic mixed read/write trace with reuse (SplitMix64).
    fn mixed_trace(len: usize, seed: u64, addr_space: u64) -> Trace {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        let b = t.registry.register("B");
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..len {
            let r = next();
            let ds = if r & 1 == 0 { a } else { b };
            let kind = if (r >> 1) & 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            t.push(MemRef::new(ds, (r >> 8) % addr_space, kind));
        }
        t
    }

    #[test]
    fn streaming_sees_same_dram_traffic_as_llc_alone() {
        // Pure streaming: L1 filters nothing at line granularity; DRAM
        // loads equal the single-level LLC count.
        let trace = streaming_trace(64 * 1024);
        let hier = simulate_hierarchy(&trace, l1(), llc());
        let single = simulate(&trace, llc());
        let a = trace.registry.id("A").unwrap();
        assert_eq!(hier.mem_accesses(a), single.ds(a).mem_accesses());
    }

    #[test]
    fn l1_absorbs_hot_working_set() {
        // A tiny working set reused many times: after the first pass
        // everything hits in L1 and the LLC sees almost nothing.
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for _ in 0..100 {
            for addr in (0..512u64).step_by(8) {
                t.push(MemRef::read(a, addr));
            }
        }
        let report = simulate_hierarchy(&t, l1(), llc());
        let a_id = t.registry.id("A").unwrap();
        assert_eq!(report.levels[0].stats.ds(a_id).misses, 512 / 32);
        assert_eq!(report.levels[1].stats.ds(a_id).reads, 512 / 32);
        assert_eq!(report.mem_accesses(a_id), 512 / 32);
    }

    #[test]
    fn dram_traffic_never_exceeds_l1_misses_plus_writebacks() {
        let trace = streaming_trace(32 * 1024);
        let report = simulate_hierarchy(&trace, l1(), llc());
        let (l1_total, llc_total) = report.totals();
        assert!(llc_total.misses <= l1_total.misses);
        assert_eq!(l1_total.accesses(), trace.len() as u64);
        assert!(report.total_mem_accesses() <= l1_total.misses + l1_total.writebacks);
    }

    #[test]
    fn writes_propagate_as_writebacks() {
        // Write a region larger than both caches; every line must
        // eventually be written back to memory.
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for addr in (0..32 * 1024u64).step_by(8) {
            t.push(MemRef::write(a, addr));
        }
        let report = simulate_hierarchy(&t, l1(), llc());
        let a_id = t.registry.id("A").unwrap();
        let lines = 32 * 1024 / 32;
        assert_eq!(report.levels[1].stats.ds(a_id).writebacks, lines);
        assert_eq!(report.dram.ds(a_id).misses, lines);
        assert_eq!(report.dram.ds(a_id).writebacks, lines);
        assert_eq!(report.mem_accesses(a_id), 2 * lines); // load + store each line
    }

    #[test]
    fn rejects_inverted_hierarchy() {
        let err = CacheHierarchy::new(llc(), l1()).unwrap_err();
        assert_eq!(
            err,
            ConfigError::InvertedHierarchy {
                level: 1,
                upper_bytes: 8192,
                lower_bytes: 1024,
            }
        );
        // The message names the offending level and sizes.
        assert!(err.to_string().contains("smaller than the level above"));
    }

    #[test]
    fn rejects_empty_and_shrinking_line_hierarchies() {
        assert_eq!(
            HierarchyConfig::new(vec![]).unwrap_err(),
            ConfigError::EmptyHierarchy
        );
        let wide = CacheConfig::new(2, 16, 64).unwrap();
        let narrow = CacheConfig::new(4, 64, 32).unwrap();
        assert_eq!(
            HierarchyConfig::new(vec![LevelSpec::new(wide), LevelSpec::new(narrow)]).unwrap_err(),
            ConfigError::ShrinkingLineBytes {
                level: 1,
                upper_bytes: 64,
                lower_bytes: 32,
            }
        );
    }

    /// The headline bugfix: a dirty L1 victim whose line the LLC already
    /// evicted must forward to DRAM as ONE write — not read-allocate in
    /// the LLC, which charged a phantom DRAM read (and perturbed LLC
    /// recency) in the old two-level stub.
    ///
    /// Shape: L1 = 1-way x 2 sets, LLC = 2-way x 1 set, 16 B lines (equal
    /// 32 B capacity, which validation allows). X stays hot in L1 via a
    /// write hit (invisible to the LLC), reads stream through the shared
    /// LLC set and evict X's stale-clean LLC copy, then a conflicting
    /// read forces X's dirty eviction from L1.
    #[test]
    fn victim_writeback_forwards_to_dram_without_phantom_read() {
        let small_l1 = CacheConfig::new(1, 2, 16).unwrap();
        let small_llc = CacheConfig::new(2, 1, 16).unwrap();
        let mut t = Trace::new();
        let a = t.registry.register("A");
        t.push(MemRef::write(a, 0)); // X: L1 set 0, dirty
        t.push(MemRef::read(a, 16)); // L1 set 1
        t.push(MemRef::read(a, 48)); // L1 set 1; LLC evicts X (clean there)
        t.push(MemRef::write(a, 0)); // X hits in L1; LLC sees nothing
        t.push(MemRef::read(a, 32)); // L1 set 0: evicts X dirty -> LLC miss
        let report = simulate_hierarchy(&t, small_l1, small_llc);
        // Demand reads: lines 0, 16, 48, 32 — and nothing for the
        // writeback of X (the old code charged a fifth, phantom read).
        assert_eq!(report.dram.ds(a).misses, 4);
        // X's writeback reaches DRAM exactly once, at eviction time.
        assert_eq!(report.dram.ds(a).writebacks, 1);
        assert_eq!(report.mem_accesses(a), 5);
        // The LLC never observed the writeback as an access.
        assert_eq!(report.levels[1].stats.ds(a).accesses(), 4);
    }

    /// Reference two-level hierarchy: per-set VecDeques (front = MRU),
    /// LRU + NINE + equal line sizes, mirroring the documented semantics
    /// — fill during the walk, victims routed after, write-no-fill
    /// absorption, forward-to-DRAM otherwise.
    struct RefHierarchy {
        line: u64,
        sets: [usize; 2],
        assoc: [usize; 2],
        levels: [Vec<VecDeque<(u64, bool)>>; 2], // (block, dirty)
        hits: [u64; 2],
        misses: [u64; 2],
        dram_reads: u64,
        dram_writes: u64,
    }

    impl RefHierarchy {
        fn new(l1: CacheConfig, llc: CacheConfig) -> Self {
            assert_eq!(l1.line_bytes, llc.line_bytes);
            Self {
                line: l1.line_bytes as u64,
                sets: [l1.num_sets, llc.num_sets],
                assoc: [l1.associativity, llc.associativity],
                levels: [
                    vec![VecDeque::new(); l1.num_sets],
                    vec![VecDeque::new(); llc.num_sets],
                ],
                hits: [0; 2],
                misses: [0; 2],
                dram_reads: 0,
                dram_writes: 0,
            }
        }

        /// Demand lookup at level `i`; on miss, fill and return victim.
        fn demand(&mut self, i: usize, block: u64, write: bool) -> (bool, Option<(u64, bool)>) {
            let set = (block % self.sets[i] as u64) as usize;
            let ways = &mut self.levels[i][set];
            if let Some(pos) = ways.iter().position(|&(b, _)| b == block) {
                self.hits[i] += 1;
                let (b, d) = ways.remove(pos).unwrap();
                ways.push_front((b, d || write));
                return (true, None);
            }
            self.misses[i] += 1;
            let victim = if ways.len() == self.assoc[i] {
                ways.pop_back()
            } else {
                None
            };
            ways.push_front((block, write));
            (false, victim)
        }

        /// Absorb a dirty writeback at the LLC or forward it to DRAM.
        fn writeback(&mut self, block: u64) {
            let set = (block % self.sets[1] as u64) as usize;
            let ways = &mut self.levels[1][set];
            if let Some(pos) = ways.iter().position(|&(b, _)| b == block) {
                let (b, _) = ways.remove(pos).unwrap();
                ways.push_front((b, true));
            } else {
                self.dram_writes += 1;
            }
        }

        fn access(&mut self, r: MemRef) {
            let block = r.addr / self.line;
            let write = r.kind == AccessKind::Write;
            let (hit, v1) = self.demand(0, block, write);
            if hit {
                return;
            }
            let (hit2, v2) = self.demand(1, block, false);
            if !hit2 {
                self.dram_reads += 1;
            }
            if let Some((b, dirty)) = v1 {
                if dirty {
                    self.writeback(b);
                }
            }
            if let Some((_, dirty)) = v2 {
                if dirty {
                    self.dram_writes += 1;
                }
            }
        }

        fn flush(&mut self) {
            for set in 0..self.sets[0] {
                while let Some((b, dirty)) = self.levels[0][set].pop_front() {
                    if dirty {
                        self.writeback(b);
                    }
                }
            }
            for set in 0..self.sets[1] {
                while let Some((_, dirty)) = self.levels[1][set].pop_front() {
                    if dirty {
                        self.dram_writes += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn matches_reference_model_on_seeded_traces() {
        for (seed, space) in [(1u64, 4 * 1024), (7, 16 * 1024), (42, 64 * 1024)] {
            let trace = mixed_trace(20_000, seed, space);
            let report = simulate_hierarchy(&trace, l1(), llc());
            let mut reference = RefHierarchy::new(l1(), llc());
            for &r in &trace.refs {
                reference.access(r);
            }
            reference.flush();
            let (l1_total, llc_total) = report.totals();
            assert_eq!(l1_total.hits, reference.hits[0], "seed {seed}");
            assert_eq!(l1_total.misses, reference.misses[0], "seed {seed}");
            assert_eq!(llc_total.hits, reference.hits[1], "seed {seed}");
            assert_eq!(llc_total.misses, reference.misses[1], "seed {seed}");
            assert_eq!(
                report.dram.total().misses,
                reference.dram_reads,
                "seed {seed}"
            );
            assert_eq!(
                report.dram.total().writebacks,
                reference.dram_writes,
                "seed {seed}"
            );
        }
    }

    /// With a hit-insensitive policy (FIFO) every same-geometry level
    /// shadows level 0 exactly, so the stack degenerates to the
    /// single-level simulator bit-identically — writebacks included,
    /// because a dirty L1 victim always finds its lower copies evicted in
    /// the same breath and forwards straight to DRAM.
    #[test]
    fn same_geometry_fifo_stack_degenerates_to_single_level() {
        let cfg = CacheConfig::new(4, 16, 32).unwrap();
        let trace = mixed_trace(30_000, 3, 8 * 1024);
        for depth in [2usize, 3] {
            let levels = vec![LevelSpec::new(cfg).with_policy(PolicyKind::Fifo); depth];
            let hier = simulate_hierarchy_config(&trace, &HierarchyConfig::new(levels).unwrap());
            let single = simulate_with_policy(&trace, cfg, PolicyKind::Fifo);
            assert_eq!(
                hier.levels[0].stats.total(),
                single.total(),
                "depth {depth}"
            );
            assert_eq!(hier.dram.total().misses, single.total().misses);
            assert_eq!(hier.dram.total().writebacks, single.total().writebacks);
        }
    }

    /// Single-pass streaming never revisits a line, so no policy has
    /// anything to decide: every policy's same-geometry stack degenerates
    /// bit-identically.
    #[test]
    fn same_geometry_streaming_degenerates_for_all_policies() {
        let cfg = CacheConfig::new(2, 8, 32).unwrap();
        let mut trace = Trace::new();
        let a = trace.registry.register("A");
        for addr in (0..16 * 1024u64).step_by(16) {
            let kind = if addr % 64 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            trace.push(MemRef::new(a, addr, kind));
        }
        for kind in PolicyKind::ALL {
            let levels = vec![LevelSpec::new(cfg).with_policy(kind); 3];
            let hier = simulate_hierarchy_config(&trace, &HierarchyConfig::new(levels).unwrap());
            let single = simulate_with_policy(&trace, cfg, kind);
            assert_eq!(
                hier.levels[0].stats.total(),
                single.total(),
                "{}",
                kind.name()
            );
            assert_eq!(hier.dram.total().misses, single.total().misses);
            assert_eq!(hier.dram.total().writebacks, single.total().writebacks);
        }
    }

    #[test]
    fn inclusive_eviction_back_invalidates_and_merges_dirty() {
        // L1 and inclusive LLC both 2-way x 1 set, 16 B lines. A write
        // hit keeps X most-recent in L1 but is invisible to the LLC, so
        // the LLC's stale recency evicts X while L1 still holds it dirty:
        // back-invalidation must remove L1's copy and merge its dirtiness
        // into one DRAM write.
        let cfg = CacheConfig::new(2, 1, 16).unwrap();
        let config = HierarchyConfig::new(vec![
            LevelSpec::new(cfg),
            LevelSpec::new(cfg).with_inclusion(InclusionPolicy::Inclusive),
        ])
        .unwrap();
        let mut t = Trace::new();
        let a = t.registry.register("A");
        t.push(MemRef::write(a, 0)); // X dirty in L1, clean in LLC
        t.push(MemRef::read(a, 16)); // both levels: {X, 16}
        t.push(MemRef::write(a, 0)); // L1 hit: X MRU in L1, still LRU in LLC
        t.push(MemRef::read(a, 32)); // LLC evicts X -> back-invalidates dirty L1 copy
        t.push(MemRef::read(a, 0)); // X must MISS everywhere now
        let report = simulate_hierarchy_config(&t, &config);
        // Reads: X, 16, 32, X-again. Without back-invalidation the last
        // read would hit L1's (stale) copy and only 3 would be charged.
        assert_eq!(report.dram.ds(a).misses, 4);
        // X's dirty data reached DRAM exactly once, via the merged
        // back-invalidation writeback; nothing is dirty at flush.
        assert_eq!(report.dram.ds(a).writebacks, 1);
    }

    #[test]
    fn exclusive_level_acts_as_victim_cache() {
        // L1 = 1-way x 1 set; exclusive L2 = 2-way x 1 set. L2 is filled
        // only by L1's victims (clean ones included) and extracts on hit.
        let cfg_l1 = CacheConfig::new(1, 1, 16).unwrap();
        let cfg_l2 = CacheConfig::new(2, 1, 16).unwrap();
        let config = HierarchyConfig::new(vec![
            LevelSpec::new(cfg_l1),
            LevelSpec::new(cfg_l2).with_inclusion(InclusionPolicy::Exclusive),
        ])
        .unwrap();
        let mut h = CacheHierarchy::from_config(config);
        let a = DsId(0);
        h.access(MemRef::read(a, 0)); // miss both; DRAM read; L2 NOT filled
        assert_eq!(h.dram.total().misses, 1);
        h.access(MemRef::read(a, 16)); // L1 evicts clean 0 -> installs into L2
        assert_eq!(h.dram.total().misses, 2);
        h.access(MemRef::read(a, 0)); // L1 miss, L2 HIT: extracted, no DRAM
        assert_eq!(h.dram.total().misses, 2);
        let report = h.into_report();
        assert_eq!(report.levels[1].stats.total().hits, 1);
        // After extraction the line lives above only; L2 held at most the
        // victims in flight, so its demand misses are the other lookups.
        assert_eq!(report.levels[1].stats.total().misses, 2);
    }

    #[test]
    fn exclusive_extraction_migrates_dirty_upward() {
        let cfg_l1 = CacheConfig::new(1, 1, 16).unwrap();
        let cfg_l2 = CacheConfig::new(2, 1, 16).unwrap();
        let config = HierarchyConfig::new(vec![
            LevelSpec::new(cfg_l1),
            LevelSpec::new(cfg_l2).with_inclusion(InclusionPolicy::Exclusive),
        ])
        .unwrap();
        let mut h = CacheHierarchy::from_config(config);
        let a = DsId(0);
        h.access(MemRef::write(a, 0)); // dirty in L1
        h.access(MemRef::read(a, 16)); // dirty 0 -> L2
        h.access(MemRef::read(a, 0)); // extracted: dirtiness back in L1
        let report = h.into_report(); // flush must write 0 back once
        assert_eq!(report.dram.total().writebacks, 1);
    }

    #[test]
    fn next_line_prefetch_covers_a_stream_without_polluting_demand_stats() {
        // Unit-stride read stream with a degree-1 prefetcher at the LLC:
        // after the first compulsory miss the prefetcher stays one line
        // ahead, so the LLC's *demand* misses stay at 1 while every
        // remaining line arrives on the prefetch account.
        let cfg_llc = llc();
        let config = HierarchyConfig::new(vec![
            LevelSpec::new(l1()),
            LevelSpec::new(cfg_llc).with_prefetch(1),
        ])
        .unwrap();
        let trace = streaming_trace(32 * 1024);
        let a = trace.registry.id("A").unwrap();
        let lines = 32 * 1024 / 32;
        let report = simulate_hierarchy_config(&trace, &config);
        assert_eq!(report.levels[1].stats.ds(a).misses, 1);
        // One fill per observed line (the last one overshoots the stream
        // end by a line — the price of staying one line ahead).
        assert_eq!(report.levels[1].prefetch.filled, lines);
        assert_eq!(report.dram_prefetch.ds(a).misses, lines);
        // Conservation: demand + prefetch DRAM reads = lines + overshoot.
        assert_eq!(report.mem_accesses(a), lines + 1);
        // Without the prefetcher the same DRAM total arrives as demand.
        let plain = simulate_hierarchy(&trace, l1(), cfg_llc);
        assert_eq!(plain.mem_accesses(a), lines);
        assert_eq!(plain.levels[1].stats.ds(a).misses, lines);
    }

    #[test]
    fn stride_prefetcher_locks_onto_constant_stride() {
        // Read every 4th line with a degree-1 level-0 prefetcher: two
        // deltas prime the stride, after which every demand hits a line
        // the prefetcher already pulled in.
        let cfg = CacheConfig::new(4, 16, 32).unwrap();
        let config = HierarchyConfig::new(vec![LevelSpec::new(cfg).with_prefetch(1)]).unwrap();
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for i in 0..256u64 {
            t.push(MemRef::read(a, i * 4 * 32));
        }
        let report = simulate_hierarchy_config(&t, &config);
        // Misses: line 0 (cold), line 4 (next-line guess missed), line 8
        // (stride locks here); everything after is prefetched in time.
        assert_eq!(report.levels[0].stats.ds(a).misses, 3);
        assert!(report.levels[0].prefetch.filled >= 253);
    }

    #[test]
    fn hierarchy_fanout_matches_sequential() {
        let trace = mixed_trace(10_000, 11, 16 * 1024);
        let cfg_small = CacheConfig::new(2, 8, 32).unwrap();
        let configs: Vec<HierarchyConfig> = vec![
            HierarchyConfig::two_level(l1(), llc()).unwrap(),
            HierarchyConfig::new(vec![
                LevelSpec::new(cfg_small).with_policy(PolicyKind::Fifo),
                LevelSpec::new(l1()),
                LevelSpec::new(llc()).with_inclusion(InclusionPolicy::Inclusive),
            ])
            .unwrap(),
            HierarchyConfig::new(vec![
                LevelSpec::new(cfg_small),
                LevelSpec::new(llc()).with_prefetch(2),
            ])
            .unwrap(),
        ];
        let par = simulate_hierarchy_many_with_threads(&trace, &configs, 3);
        let seq: Vec<HierarchyReport> = configs
            .iter()
            .map(|c| simulate_hierarchy_config(&trace, c))
            .collect();
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.refs, s.refs);
            assert_eq!(p.dram.total(), s.dram.total());
            assert_eq!(p.dram_prefetch.total(), s.dram_prefetch.total());
            for (pl, sl) in p.levels.iter().zip(&s.levels) {
                assert_eq!(pl.stats.total(), sl.stats.total());
                assert_eq!(pl.prefetch, sl.prefetch);
            }
        }
    }

    #[test]
    fn flush_cascades_dirty_lines_to_dram_once() {
        let mut h = CacheHierarchy::new(l1(), llc()).unwrap();
        let a = DsId(0);
        h.access(MemRef::write(a, 0));
        let report = h.into_report();
        // One dirty line: L1 drains it into the LLC copy, the LLC drain
        // writes it to DRAM — exactly one memory write, two level-local
        // writeback charges.
        assert_eq!(report.dram.ds(a).writebacks, 1);
        assert_eq!(report.levels[0].stats.ds(a).writebacks, 1);
        assert_eq!(report.levels[1].stats.ds(a).writebacks, 1);
    }

    #[test]
    fn label_is_stable_and_parseable() {
        let config = HierarchyConfig::new(vec![
            LevelSpec::new(l1()),
            LevelSpec::new(llc())
                .with_policy(PolicyKind::Fifo)
                .with_inclusion(InclusionPolicy::Exclusive)
                .with_prefetch(2),
        ])
        .unwrap();
        assert_eq!(
            config.label(),
            "2w16s32B:lru:nine+4w64s32B:fifo:exclusive:pf2"
        );
        assert_eq!(
            "incl".parse::<InclusionPolicy>().unwrap(),
            InclusionPolicy::Inclusive
        );
        assert!("mesi".parse::<InclusionPolicy>().is_err());
    }
}
