//! Two-level cache hierarchy (extension).
//!
//! The paper models the LLC only ("it has the largest impact on the
//! number of main memory accesses", §III-C) and leaves richer hierarchies
//! as ongoing work. This module provides the substrate for that study: an
//! L1 in front of the LLC, with write-back/write-allocate at both levels
//! and a NINE (non-inclusive, non-exclusive) relationship — fills go to
//! both levels, LLC evictions do not back-invalidate L1.
//!
//! Main-memory accesses are what DVF cares about: `llc` misses plus `llc`
//! writebacks, exactly as in the single-level model, now additionally
//! filtered by L1.

use crate::cache::SetAssociativeCache;
use crate::config::CacheConfig;
use crate::replacement::Lru;
use crate::stats::{CacheStats, DsStats};
use crate::trace::{AccessKind, DsId, MemRef, Trace};

/// A two-level (L1 + LLC) write-back hierarchy with LRU at both levels.
#[derive(Debug)]
pub struct CacheHierarchy {
    l1: SetAssociativeCache<Lru>,
    llc: SetAssociativeCache<Lru>,
}

/// Per-level statistics of a hierarchy run.
#[derive(Debug, Clone)]
pub struct HierarchyReport {
    /// L1 statistics (every reference goes here).
    pub l1: CacheStats,
    /// LLC statistics (only L1 misses and writebacks reach it).
    pub llc: CacheStats,
}

impl HierarchyReport {
    /// Main-memory accesses attributed to `ds`: LLC misses + writebacks.
    pub fn mem_accesses(&self, ds: DsId) -> u64 {
        self.llc.ds(ds).mem_accesses()
    }

    /// Aggregate main-memory accesses.
    pub fn total_mem_accesses(&self) -> u64 {
        self.llc.total().mem_accesses()
    }

    /// Aggregate per-level summary `(l1, llc)`.
    pub fn totals(&self) -> (DsStats, DsStats) {
        (self.l1.total(), self.llc.total())
    }
}

impl CacheHierarchy {
    /// Build a hierarchy. `l1` should be smaller than `llc` (asserted
    /// loosely: capacity must not exceed the LLC's).
    pub fn new(l1: CacheConfig, llc: CacheConfig) -> Self {
        assert!(
            l1.capacity() <= llc.capacity(),
            "L1 ({} B) larger than LLC ({} B)",
            l1.capacity(),
            llc.capacity()
        );
        Self {
            l1: SetAssociativeCache::new(l1),
            llc: SetAssociativeCache::new(llc),
        }
    }

    /// Issue one reference.
    pub fn access(&mut self, mref: MemRef) {
        let outcome = self.l1.access(mref);
        if let crate::cache::AccessOutcome::Miss { writeback } = outcome {
            // L1's dirty victim is written back into the LLC at the
            // victim's own line address.
            if let Some(wb) = writeback {
                let _ = self
                    .llc
                    .access(MemRef::new(wb.owner, wb.addr, AccessKind::Write));
            }
            // The fill itself: read the line from the LLC.
            let _ = self
                .llc
                .access(MemRef::new(mref.ds, mref.addr, AccessKind::Read));
        }
    }

    /// Flush both levels: L1 dirty lines drain into the LLC (possibly
    /// dirtying it), then LLC dirty lines count as main-memory writebacks.
    pub fn flush(&mut self) {
        for wb in self.l1.drain_dirty() {
            let _ = self
                .llc
                .access(MemRef::new(wb.owner, wb.addr, AccessKind::Write));
        }
        self.llc.flush();
    }

    /// Finish and report.
    pub fn into_report(mut self) -> HierarchyReport {
        self.flush();
        HierarchyReport {
            l1: self.l1.stats().clone(),
            llc: self.llc.into_stats(),
        }
    }
}

/// Simulate a whole trace through an L1+LLC hierarchy.
pub fn simulate_hierarchy(trace: &Trace, l1: CacheConfig, llc: CacheConfig) -> HierarchyReport {
    let mut h = CacheHierarchy::new(l1, llc);
    for &r in &trace.refs {
        h.access(r);
    }
    h.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;

    fn l1() -> CacheConfig {
        CacheConfig::new(2, 16, 32).unwrap() // 1 KiB
    }

    fn llc() -> CacheConfig {
        CacheConfig::new(4, 64, 32).unwrap() // 8 KiB
    }

    fn streaming_trace(bytes: u64) -> Trace {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for addr in (0..bytes).step_by(8) {
            t.push(MemRef::read(a, addr));
        }
        t
    }

    #[test]
    fn streaming_sees_same_dram_traffic_as_llc_alone() {
        // Pure streaming: L1 filters nothing at line granularity; DRAM
        // loads equal the single-level LLC count.
        let trace = streaming_trace(64 * 1024);
        let hier = simulate_hierarchy(&trace, l1(), llc());
        let single = simulate(&trace, llc());
        let a = trace.registry.id("A").unwrap();
        assert_eq!(hier.mem_accesses(a), single.ds(a).mem_accesses());
    }

    #[test]
    fn l1_absorbs_hot_working_set() {
        // A tiny working set reused many times: after the first pass
        // everything hits in L1 and the LLC sees almost nothing.
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for _ in 0..100 {
            for addr in (0..512u64).step_by(8) {
                t.push(MemRef::read(a, addr));
            }
        }
        let report = simulate_hierarchy(&t, l1(), llc());
        let a_id = t.registry.id("A").unwrap();
        let l1_stats = report.l1.ds(a_id);
        assert_eq!(l1_stats.misses, 512 / 32); // compulsory only
        assert_eq!(report.llc.ds(a_id).reads, 512 / 32); // one fill each
        assert_eq!(report.mem_accesses(a_id), 512 / 32);
    }

    #[test]
    fn dram_traffic_never_exceeds_l1_misses_plus_writebacks() {
        let trace = streaming_trace(32 * 1024);
        let report = simulate_hierarchy(&trace, l1(), llc());
        let (l1_total, llc_total) = report.totals();
        assert!(llc_total.misses <= l1_total.misses);
        assert_eq!(l1_total.accesses(), trace.len() as u64);
    }

    #[test]
    fn writes_propagate_as_writebacks() {
        // Write a region larger than both caches; every line must
        // eventually be written back to memory.
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for addr in (0..32 * 1024u64).step_by(8) {
            t.push(MemRef::write(a, addr));
        }
        let report = simulate_hierarchy(&t, l1(), llc());
        let a_id = t.registry.id("A").unwrap();
        let lines = 32 * 1024 / 32;
        assert_eq!(report.llc.ds(a_id).writebacks, lines);
        assert_eq!(report.mem_accesses(a_id), 2 * lines); // load + store each line
    }

    #[test]
    #[should_panic(expected = "larger than LLC")]
    fn rejects_inverted_hierarchy() {
        let _ = CacheHierarchy::new(llc(), l1());
    }
}
