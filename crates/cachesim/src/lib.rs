//! # dvf-cachesim
//!
//! A configurable, set-associative last-level cache (LLC) simulator with
//! **per-data-structure accounting**, built as the validation substrate for
//! the Data Vulnerability Factor (DVF) analytical models of
//! *Yu, Li, Mittal, Vetter — "Quantitatively Modeling Application Resilience
//! with the Data Vulnerability Factor", SC 2014*.
//!
//! The paper validates its coarse-grained memory-access models (CGPMAC) by
//! comparing against a Pin-based memory trace fed through an in-house LRU
//! cache simulator (paper §IV). This crate is that simulator:
//!
//! * set-associative organization with configurable capacity, associativity,
//!   set count and line length (paper Table IV configurations are provided
//!   as constants in [`config`]),
//! * write-back + write-allocate policy, counting both **misses** (line
//!   fills from main memory) and **writebacks** (dirty evictions to main
//!   memory),
//! * LRU replacement as used by the paper, plus FIFO, pseudo-LRU and random
//!   variants for ablation studies,
//! * every cache line remembers which *data structure* it belongs to, so
//!   misses and writebacks can be attributed to individual data structures —
//!   the granularity at which DVF is defined.
//!
//! ## Quick example
//!
//! ```
//! use dvf_cachesim::{CacheConfig, Simulator, MemRef, AccessKind, DsRegistry};
//!
//! // Paper Table IV "Small (Verification)" cache: 4-way, 64 sets, 32 B lines.
//! let config = CacheConfig::new(4, 64, 32).unwrap();
//! let mut registry = DsRegistry::new();
//! let a = registry.register("A");
//!
//! let mut sim = Simulator::new(config);
//! // Stream sequentially over 1 KiB of data structure A.
//! for offset in (0..1024).step_by(8) {
//!     sim.access(MemRef::new(a, offset, AccessKind::Read));
//! }
//! let report = sim.finish();
//! // 1024 B / 32 B lines = 32 compulsory misses, no reuse.
//! assert_eq!(report.ds(a).misses, 32);
//! assert_eq!(report.ds(a).mem_accesses(), 32);
//! ```

pub mod binio;
pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod replacement;
pub mod sim;
pub mod stats;
pub mod trace;

pub use binio::{read_binary, write_binary, write_binary_v2, TraceReader, TraceWriter};
pub use cache::{AccessOutcome, DemandOutcome, SetAssociativeCache, Victim, Writeback};
pub use config::{CacheConfig, CacheGeometry, ConfigError};
pub use hierarchy::{
    simulate_hierarchy, simulate_hierarchy_config, simulate_hierarchy_many,
    simulate_hierarchy_many_with_threads, CacheHierarchy, HierarchyConfig, HierarchyReport,
    InclusionPolicy, LevelReport, LevelSpec, PrefetchStats, MAX_PREFETCH_DEGREE,
};
pub use replacement::{Fifo, Lru, PolicyKind, RandomEvict, ReplacementPolicy, TreePlru};
pub use sim::{
    simulate, simulate_many, simulate_many_with_threads, simulate_with_policy, AnySimulator,
    SimJob, SimReport, Simulator,
};
pub use stats::{CacheStats, DsStats};
pub use trace::{AccessKind, DsId, DsRegistry, MemRef, Trace};
