//! Replacement policies.
//!
//! The paper's simulator uses LRU ("The cache simulation is based on the
//! popular LRU algorithm", §IV), and the analytical models assume LRU
//! behaviour (e.g. Eq. 11's argument about which blocks are evicted first).
//! FIFO, tree-PLRU and random variants are provided for the ablation study
//! quantifying how sensitive the models are to that assumption.

/// A per-set replacement policy.
///
/// The cache owns one `SetState` per set; the policy is stateless apart
/// from that (so a single policy value can serve the whole cache).
pub trait ReplacementPolicy {
    /// Bookkeeping carried per cache set.
    type SetState: Clone + std::fmt::Debug;

    /// Fresh state for a set with `ways` ways, distinguished by `set_index`
    /// (used to seed per-set randomness deterministically).
    fn new_set(&self, ways: usize, set_index: usize) -> Self::SetState;

    /// Called when `way` hits.
    fn on_hit(&self, state: &mut Self::SetState, way: usize);

    /// Called when a line is filled into `way` (after a miss).
    fn on_fill(&self, state: &mut Self::SetState, way: usize);

    /// Choose the way to evict. Only called when every way is occupied.
    fn victim(&self, state: &mut Self::SetState) -> usize;

    /// Human-readable policy name.
    fn name(&self) -> &'static str;
}

/// Least-recently-used. The paper's baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lru;

/// Recency stamps per way; larger = more recent.
#[derive(Debug, Clone)]
pub struct LruState {
    stamps: Vec<u64>,
    clock: u64,
}

impl ReplacementPolicy for Lru {
    type SetState = LruState;

    fn new_set(&self, ways: usize, _set_index: usize) -> LruState {
        LruState {
            stamps: vec![0; ways],
            clock: 0,
        }
    }

    fn on_hit(&self, state: &mut LruState, way: usize) {
        state.clock += 1;
        state.stamps[way] = state.clock;
    }

    fn on_fill(&self, state: &mut LruState, way: usize) {
        state.clock += 1;
        state.stamps[way] = state.clock;
    }

    fn victim(&self, state: &mut LruState) -> usize {
        let (way, _) = state
            .stamps
            .iter()
            .enumerate()
            .min_by_key(|&(_, s)| s)
            .expect("set has at least one way");
        way
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// First-in first-out: evicts the oldest *fill*, ignoring hits.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl ReplacementPolicy for Fifo {
    type SetState = LruState; // same shape: fill stamps only

    fn new_set(&self, ways: usize, _set_index: usize) -> LruState {
        LruState {
            stamps: vec![0; ways],
            clock: 0,
        }
    }

    fn on_hit(&self, _state: &mut LruState, _way: usize) {}

    fn on_fill(&self, state: &mut LruState, way: usize) {
        state.clock += 1;
        state.stamps[way] = state.clock;
    }

    fn victim(&self, state: &mut LruState) -> usize {
        let (way, _) = state
            .stamps
            .iter()
            .enumerate()
            .min_by_key(|&(_, s)| s)
            .expect("set has at least one way");
        way
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Tree-based pseudo-LRU (the common hardware approximation).
///
/// Maintains a binary tree of direction bits over the ways; a hit flips the
/// bits along its path to point *away* from the accessed way, and the victim
/// is found by following the bits from the root. Non-power-of-two way counts
/// use the ceiling tree with out-of-range leaves folded back into range.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreePlru;

/// Direction bits of the PLRU tree, heap-ordered (`node 0` is the root).
#[derive(Debug, Clone)]
pub struct PlruState {
    bits: Vec<bool>,
    ways: usize,
    /// `ways` rounded up to a power of two: the leaf count of the bit tree.
    virtual_ways: usize,
}

impl ReplacementPolicy for TreePlru {
    type SetState = PlruState;

    fn new_set(&self, ways: usize, _set_index: usize) -> PlruState {
        let virtual_ways = ways.next_power_of_two();
        PlruState {
            bits: vec![false; virtual_ways.saturating_sub(1)],
            ways,
            virtual_ways,
        }
    }

    fn on_hit(&self, state: &mut PlruState, way: usize) {
        touch(state, way);
    }

    fn on_fill(&self, state: &mut PlruState, way: usize) {
        touch(state, way);
    }

    fn victim(&self, state: &mut PlruState) -> usize {
        if state.ways == 1 {
            return 0;
        }
        // Follow direction bits from the root: bit == false -> go left.
        let mut node = 0;
        let levels = state.virtual_ways.trailing_zeros();
        let mut way = 0;
        for _ in 0..levels {
            let go_right = state.bits[node];
            way = (way << 1) | usize::from(go_right);
            node = 2 * node + 1 + usize::from(go_right);
        }
        // Fold virtual leaves beyond the real way count back into range.
        way % state.ways
    }

    fn name(&self) -> &'static str {
        "plru"
    }
}

/// Update the PLRU tree so every bit on `way`'s root path points away from
/// it.
fn touch(state: &mut PlruState, way: usize) {
    if state.ways == 1 {
        return;
    }
    let levels = state.virtual_ways.trailing_zeros();
    let mut node = 0;
    for level in (0..levels).rev() {
        let went_right = (way >> level) & 1 == 1;
        // Point away from the branch we took.
        state.bits[node] = !went_right;
        node = 2 * node + 1 + usize::from(went_right);
    }
}

/// Uniform random eviction, deterministic per (seed, set) via SplitMix64.
#[derive(Debug, Clone, Copy)]
pub struct RandomEvict {
    seed: u64,
}

impl RandomEvict {
    /// Policy whose per-set streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Default for RandomEvict {
    fn default() -> Self {
        Self::new(0x9E37_79B9_7F4A_7C15)
    }
}

/// SplitMix64 stream state for one set.
#[derive(Debug, Clone)]
pub struct RandState {
    x: u64,
    ways: usize,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ReplacementPolicy for RandomEvict {
    type SetState = RandState;

    fn new_set(&self, ways: usize, set_index: usize) -> RandState {
        RandState {
            x: self.seed ^ (set_index as u64).wrapping_mul(0xA24B_AED4_963E_E407),
            ways,
        }
    }

    fn on_hit(&self, _state: &mut RandState, _way: usize) {}

    fn on_fill(&self, _state: &mut RandState, _way: usize) {}

    fn victim(&self, state: &mut RandState) -> usize {
        (splitmix64(&mut state.x) % state.ways as u64) as usize
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Dynamic policy selector for command-line tools and sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// [`Lru`].
    Lru,
    /// [`Fifo`].
    Fifo,
    /// [`TreePlru`].
    Plru,
    /// [`RandomEvict`] with its default seed.
    Random,
}

impl PolicyKind {
    /// All selectable policies.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Plru,
        PolicyKind::Random,
    ];

    /// Stable name (matches each policy's `name()`).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Plru => "plru",
            PolicyKind::Random => "random",
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lru" => Ok(PolicyKind::Lru),
            "fifo" => Ok(PolicyKind::Fifo),
            "plru" => Ok(PolicyKind::Plru),
            "random" => Ok(PolicyKind::Random),
            other => Err(format!("unknown replacement policy {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<P: ReplacementPolicy>(policy: &P, ways: usize, hits: &[usize]) -> usize {
        let mut state = policy.new_set(ways, 0);
        for (i, &w) in hits.iter().enumerate() {
            if i < ways {
                policy.on_fill(&mut state, w);
            } else {
                policy.on_hit(&mut state, w);
            }
        }
        policy.victim(&mut state)
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Fill ways 0..4, then touch 0 and 1 again: victim must be 2.
        assert_eq!(drive(&Lru, 4, &[0, 1, 2, 3, 0, 1]), 2);
    }

    #[test]
    fn fifo_ignores_hits() {
        // Fill order 0,1,2,3, then hit 0 repeatedly: victim is still 0.
        assert_eq!(drive(&Fifo, 4, &[0, 1, 2, 3, 0, 0, 0]), 0);
    }

    #[test]
    fn plru_victim_avoids_most_recent() {
        let policy = TreePlru;
        let mut state = policy.new_set(4, 0);
        for w in 0..4 {
            policy.on_fill(&mut state, w);
        }
        let v = policy.victim(&mut state);
        // The most recently touched way (3) is never the PLRU victim.
        assert_ne!(v, 3);
    }

    #[test]
    fn plru_single_way() {
        let policy = TreePlru;
        let mut state = policy.new_set(1, 0);
        policy.on_fill(&mut state, 0);
        assert_eq!(policy.victim(&mut state), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let policy = RandomEvict::new(42);
        let mut s1 = policy.new_set(8, 3);
        let mut s2 = policy.new_set(8, 3);
        let v1: Vec<usize> = (0..16).map(|_| policy.victim(&mut s1)).collect();
        let v2: Vec<usize> = (0..16).map(|_| policy.victim(&mut s2)).collect();
        assert_eq!(v1, v2);
        assert!(v1.iter().all(|&w| w < 8));
    }

    #[test]
    fn random_differs_across_sets() {
        let policy = RandomEvict::new(42);
        let mut s1 = policy.new_set(8, 0);
        let mut s2 = policy.new_set(8, 1);
        let v1: Vec<usize> = (0..32).map(|_| policy.victim(&mut s1)).collect();
        let v2: Vec<usize> = (0..32).map(|_| policy.victim(&mut s2)).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn policy_kind_parses() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.name().parse::<PolicyKind>().unwrap(), kind);
        }
        assert!("mru".parse::<PolicyKind>().is_err());
    }
}
