//! Replacement policies.
//!
//! The paper's simulator uses LRU ("The cache simulation is based on the
//! popular LRU algorithm", §IV), and the analytical models assume LRU
//! behaviour (e.g. Eq. 11's argument about which blocks are evicted first).
//! FIFO, tree-PLRU and random variants are provided for the ablation study
//! quantifying how sensitive the models are to that assumption.

/// A per-set replacement policy over flat struct-of-arrays state.
///
/// The cache owns one [`SetState`] per set plus one [`WayState`] per line,
/// stored in a single contiguous array indexed `set * assoc + way` — the
/// same layout as the tag/dirty/owner arrays, so a policy update touches
/// the cache line the tag probe already pulled in instead of chasing a
/// per-set heap allocation. The policy value itself is stateless.
///
/// [`SetState`]: ReplacementPolicy::SetState
/// [`WayState`]: ReplacementPolicy::WayState
pub trait ReplacementPolicy {
    /// Per-way bookkeeping word (e.g. an LRU recency stamp). Policies
    /// without per-way state use `()`, which occupies no memory.
    type WayState: Clone + Copy + Default + std::fmt::Debug;
    /// Per-set residue (clock, direction bits, RNG stream, ...).
    type SetState: Clone + std::fmt::Debug;

    /// Fresh state for a set with `ways` ways, distinguished by `set_index`
    /// (used to seed per-set randomness deterministically).
    fn new_set(&self, ways: usize, set_index: usize) -> Self::SetState;

    /// Called when `way` hits. `ways` is the set's slice of way state.
    fn on_hit(&self, state: &mut Self::SetState, ways: &mut [Self::WayState], way: usize);

    /// Called when a line is filled into `way` (after a miss).
    fn on_fill(&self, state: &mut Self::SetState, ways: &mut [Self::WayState], way: usize);

    /// Choose the way to evict. Only called when every way is occupied.
    fn victim(&self, state: &mut Self::SetState, ways: &mut [Self::WayState]) -> usize;

    /// Called when the line in `way` is removed *outside* the fill path
    /// (hierarchy back-invalidation or exclusive extraction). `occupied`
    /// is the number of occupied ways before the removal. Implementations
    /// must restore their cold-start invariant so a later fill into the
    /// freed way behaves exactly as if the way had never been occupied.
    /// The default resets the way's state word, which is sufficient for
    /// policies whose per-way state is stateless or approximate.
    fn on_invalidate(
        &self,
        _state: &mut Self::SetState,
        ways: &mut [Self::WayState],
        way: usize,
        _occupied: usize,
    ) {
        ways[way] = Self::WayState::default();
    }

    /// Human-readable policy name.
    fn name(&self) -> &'static str;
}

/// Least-recently-used. The paper's baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lru;

/// Promote `way` to most-recent in a set of recency ranks.
///
/// Ranks order the ways of one set: `0` is the eviction candidate,
/// `len - 1` the most recent. Promotion closes the gap the promoted way
/// leaves behind by decrementing every rank above it — a branch-free
/// full-slice pass the compiler vectorizes, and for realistic
/// associativities the whole rank slice (2 bytes per way) lives in the
/// single cache line the set's metadata already occupies.
#[inline(always)]
fn promote(ranks: &mut [u16], way: usize) {
    // Dispatch the common associativities to fixed-size bodies: with the
    // length known at compile time the pass fully unrolls and vectorizes,
    // where the runtime-length loop stays scalar and branchy.
    match ranks.len() {
        2 => promote_fixed::<2>(ranks, way),
        4 => promote_fixed::<4>(ranks, way),
        8 => promote_fixed::<8>(ranks, way),
        16 => promote_fixed::<16>(ranks, way),
        _ => {
            let r = ranks[way];
            for w in ranks.iter_mut() {
                *w -= u16::from(*w > r);
            }
            ranks[way] = (ranks.len() - 1) as u16;
        }
    }
}

#[inline(always)]
fn promote_fixed<const N: usize>(ranks: &mut [u16], way: usize) {
    let ranks: &mut [u16; N] = ranks.try_into().expect("dispatched on len");
    let r = ranks[way];
    for w in ranks.iter_mut() {
        *w -= u16::from(*w > r);
    }
    ranks[way] = (N - 1) as u16;
}

/// The way holding rank `0` (only meaningful once the set is full).
#[inline(always)]
fn rank_zero_way(ranks: &[u16]) -> usize {
    match ranks.len() {
        2 => rank_zero_fixed::<2>(ranks),
        4 => rank_zero_fixed::<4>(ranks),
        8 => rank_zero_fixed::<8>(ranks),
        16 => rank_zero_fixed::<16>(ranks),
        _ => ranks.iter().position(|&r| r == 0).unwrap_or(0),
    }
}

#[inline(always)]
fn rank_zero_fixed<const N: usize>(ranks: &[u16]) -> usize {
    let ranks: &[u16; N] = ranks.try_into().expect("dispatched on len");
    // Branch-free bitmask scan, same shape as the tag scan in `cache.rs`.
    let mut zero = 0u32;
    for (way, &r) in ranks.iter().enumerate() {
        zero |= u32::from(r == 0) << way;
    }
    if zero != 0 {
        zero.trailing_zeros() as usize
    } else {
        0
    }
}

/// Remove `way`'s rank from a rank order, restoring the cold-start shape.
///
/// Rank invariant for rank-based policies (LRU, FIFO): empty ways hold
/// rank `0`, and the `occupied` ways hold the dense top-aligned ranks
/// `len - occupied .. len`, so a fill into an empty way (stale rank `0`)
/// promotes into exactly the dense order `len - occupied - 1 .. len`.
/// Retiring rank `r` re-establishes that shape by shifting every occupied
/// rank below `r` up one and zeroing the freed way — the surviving lines
/// keep their relative order, i.e. the result is bit-identical to never
/// having inserted the removed line between them.
#[inline]
fn retire_rank(ranks: &mut [u16], way: usize, occupied: usize) {
    let r = ranks[way];
    let lo = (ranks.len() - occupied) as u16; // smallest occupied rank
    for w in ranks.iter_mut() {
        *w += u16::from(*w >= lo && *w < r);
    }
    ranks[way] = 0;
}

impl ReplacementPolicy for Lru {
    type WayState = u16; // recency rank: 0 = LRU, len - 1 = MRU
    type SetState = ();

    fn new_set(&self, _ways: usize, _set_index: usize) {}

    fn on_hit(&self, _state: &mut (), ways: &mut [u16], way: usize) {
        promote(ways, way);
    }

    fn on_fill(&self, _state: &mut (), ways: &mut [u16], way: usize) {
        promote(ways, way);
    }

    fn victim(&self, _state: &mut (), ways: &mut [u16]) -> usize {
        rank_zero_way(ways)
    }

    fn on_invalidate(&self, _state: &mut (), ways: &mut [u16], way: usize, occupied: usize) {
        retire_rank(ways, way, occupied);
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// First-in first-out: evicts the oldest *fill*, ignoring hits.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl ReplacementPolicy for Fifo {
    type WayState = u16; // fill rank: 0 = oldest fill
    type SetState = ();

    fn new_set(&self, _ways: usize, _set_index: usize) {}

    fn on_hit(&self, _state: &mut (), _ways: &mut [u16], _way: usize) {}

    fn on_fill(&self, _state: &mut (), ways: &mut [u16], way: usize) {
        promote(ways, way);
    }

    fn victim(&self, _state: &mut (), ways: &mut [u16]) -> usize {
        rank_zero_way(ways)
    }

    fn on_invalidate(&self, _state: &mut (), ways: &mut [u16], way: usize, occupied: usize) {
        retire_rank(ways, way, occupied);
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Tree-based pseudo-LRU (the common hardware approximation).
///
/// Maintains a binary tree of direction bits over the ways; a hit flips the
/// bits along its path to point *away* from the accessed way, and the victim
/// is found by following the bits from the root. Non-power-of-two way counts
/// use the ceiling tree with out-of-range leaves folded back into range.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreePlru;

/// Direction bits of the PLRU tree, heap-ordered (`node 0` is the root).
///
/// The bits pack into one inline `u64` word (a tree over up to 64 ways
/// has at most 63 nodes — single-register shifts, unlike `u128`), so
/// per-set state is `Copy`-sized and the sets array stays a flat
/// allocation with no per-set heap indirection. Wider sets — far beyond
/// any hardware PLRU — spill to a boxed slice.
#[derive(Debug, Clone)]
pub struct PlruState {
    bits: PlruBits,
    ways: u32,
    /// `ways` rounded up to a power of two: the leaf count of the bit tree.
    virtual_ways: u32,
}

/// Bit storage for [`PlruState`].
#[derive(Debug, Clone)]
enum PlruBits {
    /// Tree with ≤ 63 nodes, heap-ordered in one word.
    Packed(u64),
    /// Degenerately wide set; `Vec<bool>` heap-ordered.
    Heap(Vec<bool>),
}

impl PlruState {
    #[inline(always)]
    fn get(&self, node: usize) -> bool {
        match &self.bits {
            PlruBits::Packed(w) => (w >> node) & 1 == 1,
            PlruBits::Heap(v) => v[node],
        }
    }

    #[inline(always)]
    fn set(&mut self, node: usize, value: bool) {
        match &mut self.bits {
            PlruBits::Packed(w) => *w = (*w & !(1u64 << node)) | (u64::from(value) << node),
            PlruBits::Heap(v) => v[node] = value,
        }
    }
}

impl ReplacementPolicy for TreePlru {
    type WayState = ();
    type SetState = PlruState;

    fn new_set(&self, ways: usize, _set_index: usize) -> PlruState {
        let virtual_ways = ways.next_power_of_two();
        let bits = if virtual_ways <= 64 {
            PlruBits::Packed(0)
        } else {
            PlruBits::Heap(vec![false; virtual_ways - 1])
        };
        PlruState {
            bits,
            ways: ways as u32,
            virtual_ways: virtual_ways as u32,
        }
    }

    fn on_hit(&self, state: &mut PlruState, _ways: &mut [()], way: usize) {
        touch(state, way);
    }

    fn on_fill(&self, state: &mut PlruState, _ways: &mut [()], way: usize) {
        touch(state, way);
    }

    fn victim(&self, state: &mut PlruState, _ways: &mut [()]) -> usize {
        if state.ways == 1 {
            return 0;
        }
        // Follow direction bits from the root: bit == false -> go left.
        let mut node = 0;
        let levels = state.virtual_ways.trailing_zeros();
        let mut way = 0;
        for _ in 0..levels {
            let go_right = state.get(node);
            way = (way << 1) | usize::from(go_right);
            node = 2 * node + 1 + usize::from(go_right);
        }
        // Fold virtual leaves beyond the real way count back into range.
        way % state.ways as usize
    }

    fn name(&self) -> &'static str {
        "plru"
    }
}

/// Update the PLRU tree so every bit on `way`'s root path points away from
/// it.
fn touch(state: &mut PlruState, way: usize) {
    if state.ways == 1 {
        return;
    }
    let levels = state.virtual_ways.trailing_zeros();
    let mut node = 0;
    for level in (0..levels).rev() {
        let went_right = (way >> level) & 1 == 1;
        // Point away from the branch we took.
        state.set(node, !went_right);
        node = 2 * node + 1 + usize::from(went_right);
    }
}

/// Uniform random eviction, deterministic per (seed, set) via SplitMix64.
#[derive(Debug, Clone, Copy)]
pub struct RandomEvict {
    seed: u64,
}

impl RandomEvict {
    /// Policy whose per-set streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Default for RandomEvict {
    fn default() -> Self {
        Self::new(0x9E37_79B9_7F4A_7C15)
    }
}

/// SplitMix64 stream state for one set.
#[derive(Debug, Clone)]
pub struct RandState {
    x: u64,
    ways: usize,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ReplacementPolicy for RandomEvict {
    type WayState = ();
    type SetState = RandState;

    fn new_set(&self, ways: usize, set_index: usize) -> RandState {
        RandState {
            x: self.seed ^ (set_index as u64).wrapping_mul(0xA24B_AED4_963E_E407),
            ways,
        }
    }

    fn on_hit(&self, _state: &mut RandState, _ways: &mut [()], _way: usize) {}

    fn on_fill(&self, _state: &mut RandState, _ways: &mut [()], _way: usize) {}

    fn victim(&self, state: &mut RandState, _ways: &mut [()]) -> usize {
        (splitmix64(&mut state.x) % state.ways as u64) as usize
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Dynamic policy selector for command-line tools and sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// [`Lru`].
    Lru,
    /// [`Fifo`].
    Fifo,
    /// [`TreePlru`].
    Plru,
    /// [`RandomEvict`] with its default seed.
    Random,
}

impl PolicyKind {
    /// All selectable policies.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Plru,
        PolicyKind::Random,
    ];

    /// Stable name (matches each policy's `name()`).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Plru => "plru",
            PolicyKind::Random => "random",
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lru" => Ok(PolicyKind::Lru),
            "fifo" => Ok(PolicyKind::Fifo),
            "plru" => Ok(PolicyKind::Plru),
            "random" => Ok(PolicyKind::Random),
            other => Err(format!("unknown replacement policy {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<P: ReplacementPolicy>(policy: &P, ways: usize, hits: &[usize]) -> usize {
        let mut state = policy.new_set(ways, 0);
        let mut way_state = vec![P::WayState::default(); ways];
        for (i, &w) in hits.iter().enumerate() {
            if i < ways {
                policy.on_fill(&mut state, &mut way_state, w);
            } else {
                policy.on_hit(&mut state, &mut way_state, w);
            }
        }
        policy.victim(&mut state, &mut way_state)
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Fill ways 0..4, then touch 0 and 1 again: victim must be 2.
        assert_eq!(drive(&Lru, 4, &[0, 1, 2, 3, 0, 1]), 2);
    }

    #[test]
    fn fifo_ignores_hits() {
        // Fill order 0,1,2,3, then hit 0 repeatedly: victim is still 0.
        assert_eq!(drive(&Fifo, 4, &[0, 1, 2, 3, 0, 0, 0]), 0);
    }

    #[test]
    fn plru_victim_avoids_most_recent() {
        let policy = TreePlru;
        let mut state = policy.new_set(4, 0);
        let mut ways = [(); 4];
        for w in 0..4 {
            policy.on_fill(&mut state, &mut ways, w);
        }
        let v = policy.victim(&mut state, &mut ways);
        // The most recently touched way (3) is never the PLRU victim.
        assert_ne!(v, 3);
    }

    #[test]
    fn plru_single_way() {
        let policy = TreePlru;
        let mut state = policy.new_set(1, 0);
        let mut ways = [(); 1];
        policy.on_fill(&mut state, &mut ways, 0);
        assert_eq!(policy.victim(&mut state, &mut ways), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let policy = RandomEvict::new(42);
        let mut s1 = policy.new_set(8, 3);
        let mut s2 = policy.new_set(8, 3);
        let mut ways = [(); 8];
        let v1: Vec<usize> = (0..16).map(|_| policy.victim(&mut s1, &mut ways)).collect();
        let v2: Vec<usize> = (0..16).map(|_| policy.victim(&mut s2, &mut ways)).collect();
        assert_eq!(v1, v2);
        assert!(v1.iter().all(|&w| w < 8));
    }

    #[test]
    fn random_differs_across_sets() {
        let policy = RandomEvict::new(42);
        let mut s1 = policy.new_set(8, 0);
        let mut s2 = policy.new_set(8, 1);
        let mut ways = [(); 8];
        let v1: Vec<usize> = (0..32).map(|_| policy.victim(&mut s1, &mut ways)).collect();
        let v2: Vec<usize> = (0..32).map(|_| policy.victim(&mut s2, &mut ways)).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn policy_kind_parses() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.name().parse::<PolicyKind>().unwrap(), kind);
        }
        assert!("mru".parse::<PolicyKind>().is_err());
    }
}
