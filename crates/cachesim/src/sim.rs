//! One-shot simulation driver.

use crate::cache::SetAssociativeCache;
use crate::config::CacheConfig;
use crate::replacement::{Fifo, Lru, PolicyKind, RandomEvict, ReplacementPolicy, TreePlru};
use crate::stats::{CacheStats, DsStats};
use crate::trace::{DsId, MemRef, Trace};

/// Final report of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Cache geometry the run used.
    pub config: CacheConfig,
    /// Name of the replacement policy.
    pub policy: &'static str,
    /// Number of references replayed.
    pub refs: u64,
    stats: CacheStats,
}

impl SimReport {
    /// Stats for one data structure.
    pub fn ds(&self, ds: DsId) -> DsStats {
        self.stats.ds(ds)
    }

    /// Aggregate stats.
    pub fn total(&self) -> DsStats {
        self.stats.total()
    }

    /// Underlying per-structure table.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

/// Streaming simulator: feed references one at a time, then [`finish`].
///
/// [`finish`]: Simulator::finish
#[derive(Debug)]
pub struct Simulator<P: ReplacementPolicy = Lru> {
    cache: SetAssociativeCache<P>,
    refs: u64,
    policy_name: &'static str,
    /// Whether `finish` flushes resident dirty lines (default: true, so
    /// that the end-of-run state reaches main memory as on a real system).
    pub flush_at_end: bool,
}

impl Simulator<Lru> {
    /// LRU simulator (the paper's configuration).
    pub fn new(config: CacheConfig) -> Self {
        Self::with_policy(config, Lru)
    }
}

impl<P: ReplacementPolicy> Simulator<P> {
    /// Simulator with an explicit replacement policy.
    pub fn with_policy(config: CacheConfig, policy: P) -> Self {
        let policy_name = policy.name();
        Self {
            cache: SetAssociativeCache::with_policy(config, policy),
            refs: 0,
            policy_name,
            flush_at_end: true,
        }
    }

    /// Replay one reference.
    #[inline]
    pub fn access(&mut self, r: MemRef) {
        self.refs += 1;
        self.cache.access(r);
    }

    /// Replay a slice of references.
    pub fn run(&mut self, refs: &[MemRef]) {
        for &r in refs {
            self.access(r);
        }
    }

    /// Statistics accumulated so far (mid-run snapshotting; resident dirty
    /// lines are not yet counted as writebacks).
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Flush (if enabled) and produce the report.
    pub fn finish(mut self) -> SimReport {
        if self.flush_at_end {
            self.cache.flush();
        }
        let report = SimReport {
            config: self.cache.config(),
            policy: self.policy_name,
            refs: self.refs,
            stats: self.cache.into_stats(),
        };
        // Observability: one batched update per run, so the per-reference
        // hot path stays instrumentation-free.
        if dvf_obs::enabled() {
            let total = report.total();
            dvf_obs::add("cachesim.refs", report.refs);
            dvf_obs::add("cachesim.hits", total.hits);
            dvf_obs::add("cachesim.misses", total.misses);
            dvf_obs::add("cachesim.writebacks", total.writebacks);
        }
        report
    }
}

/// Simulate a whole trace under one configuration with LRU replacement.
///
/// This is the paper's verification path: kernel trace in, per-data-structure
/// main-memory access counts out.
pub fn simulate(trace: &Trace, config: CacheConfig) -> SimReport {
    simulate_with_policy(trace, config, PolicyKind::Lru)
}

/// Simulate a whole trace under a selectable replacement policy.
pub fn simulate_with_policy(trace: &Trace, config: CacheConfig, policy: PolicyKind) -> SimReport {
    fn go<P: ReplacementPolicy>(trace: &Trace, config: CacheConfig, policy: P) -> SimReport {
        let mut sim = Simulator::with_policy(config, policy);
        sim.run(&trace.refs);
        sim.finish()
    }
    match policy {
        PolicyKind::Lru => go(trace, config, Lru),
        PolicyKind::Fifo => go(trace, config, Fifo),
        PolicyKind::Plru => go(trace, config, TreePlru),
        PolicyKind::Random => go(trace, config, RandomEvict::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::table4;
    use crate::trace::AccessKind;

    fn streaming_trace(bytes: u64, stride: u64) -> Trace {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for addr in (0..bytes).step_by(stride as usize) {
            t.push(MemRef::new(a, addr, AccessKind::Read));
        }
        t
    }

    #[test]
    fn simulate_counts_compulsory_misses() {
        let t = streaming_trace(4096, 8);
        let cfg = table4::SMALL_VERIFICATION; // 32 B lines
        let report = simulate(&t, cfg);
        let a = t.registry.id("A").unwrap();
        assert_eq!(report.ds(a).misses, 4096 / 32);
        assert_eq!(report.refs, 4096 / 8);
        assert_eq!(report.policy, "lru");
    }

    #[test]
    fn finish_flushes_dirty_lines() {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        t.push(MemRef::write(a, 0));
        let report = simulate(&t, table4::SMALL_VERIFICATION);
        // one miss + flush writeback
        assert_eq!(report.ds(a).mem_accesses(), 2);
    }

    #[test]
    fn flush_can_be_disabled() {
        let cfg = table4::SMALL_VERIFICATION;
        let mut sim = Simulator::new(cfg);
        sim.flush_at_end = false;
        sim.access(MemRef::write(DsId(0), 0));
        let report = sim.finish();
        assert_eq!(report.ds(DsId(0)).mem_accesses(), 1);
    }

    #[test]
    fn policies_are_selectable() {
        let t = streaming_trace(1024, 8);
        for kind in PolicyKind::ALL {
            let r = simulate_with_policy(&t, table4::SMALL_VERIFICATION, kind);
            assert_eq!(r.policy, kind.name());
            // streaming: identical compulsory misses under every policy
            assert_eq!(r.total().misses, 1024 / 32);
        }
    }
}
