//! One-shot simulation driver.

use crate::cache::SetAssociativeCache;
use crate::config::CacheConfig;
use crate::replacement::{Fifo, Lru, PolicyKind, RandomEvict, ReplacementPolicy, TreePlru};
use crate::stats::{CacheStats, DsStats};
use crate::trace::{DsId, MemRef, Trace};

/// Final report of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Cache geometry the run used.
    pub config: CacheConfig,
    /// Name of the replacement policy.
    pub policy: &'static str,
    /// Number of references replayed.
    pub refs: u64,
    stats: CacheStats,
}

impl SimReport {
    /// Stats for one data structure.
    pub fn ds(&self, ds: DsId) -> DsStats {
        self.stats.ds(ds)
    }

    /// Aggregate stats.
    pub fn total(&self) -> DsStats {
        self.stats.total()
    }

    /// Underlying per-structure table.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

/// Streaming simulator: feed references one at a time, then [`finish`].
///
/// [`finish`]: Simulator::finish
#[derive(Debug)]
pub struct Simulator<P: ReplacementPolicy = Lru> {
    cache: SetAssociativeCache<P>,
    refs: u64,
    policy_name: &'static str,
    /// Whether `finish` flushes resident dirty lines (default: true, so
    /// that the end-of-run state reaches main memory as on a real system).
    pub flush_at_end: bool,
}

impl Simulator<Lru> {
    /// LRU simulator (the paper's configuration).
    pub fn new(config: CacheConfig) -> Self {
        Self::with_policy(config, Lru)
    }
}

impl<P: ReplacementPolicy> Simulator<P> {
    /// Simulator with an explicit replacement policy.
    pub fn with_policy(config: CacheConfig, policy: P) -> Self {
        let policy_name = policy.name();
        Self {
            cache: SetAssociativeCache::with_policy(config, policy),
            refs: 0,
            policy_name,
            flush_at_end: true,
        }
    }

    /// Replay one reference.
    #[inline]
    pub fn access(&mut self, r: MemRef) {
        self.refs += 1;
        self.cache.access(r);
    }

    /// Replay a slice of references (prefetching replay loop).
    pub fn run(&mut self, refs: &[MemRef]) {
        self.refs += refs.len() as u64;
        self.cache.replay(refs);
    }

    /// Statistics accumulated so far (mid-run snapshotting; resident dirty
    /// lines are not yet counted as writebacks).
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Flush (if enabled) and produce the report.
    pub fn finish(mut self) -> SimReport {
        if self.flush_at_end {
            self.cache.flush();
        }
        let report = SimReport {
            config: self.cache.config(),
            policy: self.policy_name,
            refs: self.refs,
            stats: self.cache.into_stats(),
        };
        // Observability: one batched update per run, so the per-reference
        // hot path stays instrumentation-free. Also fires when only a
        // per-request trace is active, so fused-path simulations
        // attribute their reference counts to the requesting trace.
        if dvf_obs::enabled() || dvf_obs::trace::active() {
            let total = report.total();
            dvf_obs::add("cachesim.refs", report.refs);
            dvf_obs::add("cachesim.hits", total.hits);
            dvf_obs::add("cachesim.misses", total.misses);
            dvf_obs::add("cachesim.writebacks", total.writebacks);
        }
        report
    }
}

/// Simulate a whole trace under one configuration with LRU replacement.
///
/// This is the paper's verification path: kernel trace in, per-data-structure
/// main-memory access counts out.
pub fn simulate(trace: &Trace, config: CacheConfig) -> SimReport {
    simulate_with_policy(trace, config, PolicyKind::Lru)
}

/// Simulate a whole trace under a selectable replacement policy.
pub fn simulate_with_policy(trace: &Trace, config: CacheConfig, policy: PolicyKind) -> SimReport {
    fn go<P: ReplacementPolicy>(trace: &Trace, config: CacheConfig, policy: P) -> SimReport {
        let mut sim = Simulator::with_policy(config, policy);
        sim.run(&trace.refs);
        sim.finish()
    }
    match policy {
        PolicyKind::Lru => go(trace, config, Lru),
        PolicyKind::Fifo => go(trace, config, Fifo),
        PolicyKind::Plru => go(trace, config, TreePlru),
        PolicyKind::Random => go(trace, config, RandomEvict::default()),
    }
}

/// One (geometry, policy) replay job for [`simulate_many`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimJob {
    /// Cache geometry for this job.
    pub config: CacheConfig,
    /// Replacement policy for this job.
    pub policy: PolicyKind,
}

impl SimJob {
    /// Job with the given geometry and LRU replacement (the paper's setup).
    pub fn lru(config: CacheConfig) -> Self {
        Self {
            config,
            policy: PolicyKind::Lru,
        }
    }
}

/// Policy-erased streaming simulator: one variant per [`PolicyKind`].
///
/// Lets heterogeneous job grids (mixed geometries *and* policies) be
/// driven chunk-by-chunk from a single reference stream — the fused
/// record→simulate path — without generics at the call site.
#[derive(Debug)]
pub enum AnySimulator {
    /// LRU replacement (the paper's configuration).
    Lru(Simulator<Lru>),
    /// FIFO replacement.
    Fifo(Simulator<Fifo>),
    /// Tree pseudo-LRU replacement.
    Plru(Simulator<TreePlru>),
    /// Random replacement.
    Random(Simulator<RandomEvict>),
}

impl AnySimulator {
    /// Simulator for one job's geometry + policy.
    pub fn new(job: SimJob) -> Self {
        match job.policy {
            PolicyKind::Lru => AnySimulator::Lru(Simulator::with_policy(job.config, Lru)),
            PolicyKind::Fifo => AnySimulator::Fifo(Simulator::with_policy(job.config, Fifo)),
            PolicyKind::Plru => AnySimulator::Plru(Simulator::with_policy(job.config, TreePlru)),
            PolicyKind::Random => {
                AnySimulator::Random(Simulator::with_policy(job.config, RandomEvict::default()))
            }
        }
    }

    /// Replay one reference.
    #[inline]
    pub fn access(&mut self, r: MemRef) {
        match self {
            AnySimulator::Lru(s) => s.access(r),
            AnySimulator::Fifo(s) => s.access(r),
            AnySimulator::Plru(s) => s.access(r),
            AnySimulator::Random(s) => s.access(r),
        }
    }

    /// Replay a slice of references (prefetching replay loop).
    pub fn run(&mut self, refs: &[MemRef]) {
        match self {
            AnySimulator::Lru(s) => s.run(refs),
            AnySimulator::Fifo(s) => s.run(refs),
            AnySimulator::Plru(s) => s.run(refs),
            AnySimulator::Random(s) => s.run(refs),
        }
    }

    /// Flush (if enabled) and produce the report.
    pub fn finish(self) -> SimReport {
        match self {
            AnySimulator::Lru(s) => s.finish(),
            AnySimulator::Fifo(s) => s.finish(),
            AnySimulator::Plru(s) => s.finish(),
            AnySimulator::Random(s) => s.finish(),
        }
    }
}

/// Replay one borrowed trace through every job in parallel.
///
/// The trace is shared by reference across `std::thread::scope` workers —
/// never cloned — so fanning a multi-million-reference trace across a
/// config × policy grid costs one trace, not N. Reports come back in job
/// order and are bit-identical to running [`simulate_with_policy`] per
/// job sequentially (each job owns its cache; no shared mutable state).
///
/// Worker count defaults to `available_parallelism`, capped at the job
/// count. Use [`simulate_many_with_threads`] to pin it.
pub fn simulate_many(trace: &Trace, jobs: &[SimJob]) -> Vec<SimReport> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    simulate_many_with_threads(trace, jobs, threads)
}

/// [`simulate_many`] with an explicit worker-thread cap (`threads == 1`
/// degenerates to a plain sequential loop with no thread spawns).
pub fn simulate_many_with_threads(
    trace: &Trace,
    jobs: &[SimJob],
    threads: usize,
) -> Vec<SimReport> {
    let workers = threads.max(1).min(jobs.len().max(1));
    let _span = dvf_obs::span("cachesim.par");
    dvf_obs::add("cachesim.par.jobs", jobs.len() as u64);
    dvf_obs::add("cachesim.par.workers", workers as u64);
    if workers <= 1 || jobs.len() <= 1 {
        return jobs
            .iter()
            .map(|j| simulate_with_policy(trace, j.config, j.policy))
            .collect();
    }
    // Scoped-thread fan-out with ordered result slots (same pattern as
    // dvf-core's `sweep::par_map`, which we cannot depend on from here
    // without inverting the crate graph).
    let chunk = jobs.len().div_ceil(workers);
    let mut results: Vec<Option<SimReport>> = (0..jobs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot_chunk, job_chunk) in results.chunks_mut(chunk).zip(jobs.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, job) in slot_chunk.iter_mut().zip(job_chunk) {
                    *slot = Some(simulate_with_policy(trace, job.config, job.policy));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job slot filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::table4;
    use crate::trace::AccessKind;

    fn streaming_trace(bytes: u64, stride: u64) -> Trace {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        for addr in (0..bytes).step_by(stride as usize) {
            t.push(MemRef::new(a, addr, AccessKind::Read));
        }
        t
    }

    #[test]
    fn simulate_counts_compulsory_misses() {
        let t = streaming_trace(4096, 8);
        let cfg = table4::SMALL_VERIFICATION; // 32 B lines
        let report = simulate(&t, cfg);
        let a = t.registry.id("A").unwrap();
        assert_eq!(report.ds(a).misses, 4096 / 32);
        assert_eq!(report.refs, 4096 / 8);
        assert_eq!(report.policy, "lru");
    }

    #[test]
    fn finish_flushes_dirty_lines() {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        t.push(MemRef::write(a, 0));
        let report = simulate(&t, table4::SMALL_VERIFICATION);
        // one miss + flush writeback
        assert_eq!(report.ds(a).mem_accesses(), 2);
    }

    #[test]
    fn flush_can_be_disabled() {
        let cfg = table4::SMALL_VERIFICATION;
        let mut sim = Simulator::new(cfg);
        sim.flush_at_end = false;
        sim.access(MemRef::write(DsId(0), 0));
        let report = sim.finish();
        assert_eq!(report.ds(DsId(0)).mem_accesses(), 1);
    }

    #[test]
    fn policies_are_selectable() {
        let t = streaming_trace(1024, 8);
        for kind in PolicyKind::ALL {
            let r = simulate_with_policy(&t, table4::SMALL_VERIFICATION, kind);
            assert_eq!(r.policy, kind.name());
            // streaming: identical compulsory misses under every policy
            assert_eq!(r.total().misses, 1024 / 32);
        }
    }

    #[test]
    fn simulate_many_matches_sequential_in_job_order() {
        let t = streaming_trace(64 * 1024, 8);
        let mut jobs = Vec::new();
        for kind in PolicyKind::ALL {
            jobs.push(SimJob {
                config: table4::SMALL_VERIFICATION,
                policy: kind,
            });
            jobs.push(SimJob {
                config: table4::PROFILE_16KB,
                policy: kind,
            });
        }
        let par = simulate_many(&t, &jobs);
        assert_eq!(par.len(), jobs.len());
        for (job, report) in jobs.iter().zip(&par) {
            let seq = simulate_with_policy(&t, job.config, job.policy);
            assert_eq!(*report, seq, "{} on {}", job.policy.name(), job.config);
        }
    }

    #[test]
    fn simulate_many_handles_edge_thread_counts() {
        let t = streaming_trace(4096, 16);
        let jobs = [SimJob::lru(table4::SMALL_VERIFICATION)];
        for threads in [0, 1, 7] {
            let out = simulate_many_with_threads(&t, &jobs, threads);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].total().misses, 4096 / 32);
        }
        assert!(simulate_many(&t, &[]).is_empty());
    }
}
