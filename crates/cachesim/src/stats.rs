//! Per-data-structure and aggregate cache statistics.

use crate::trace::{DsId, DsRegistry};
use std::fmt;

/// Counters for one data structure.
///
/// The paper's simulator "can report the number of cache misses and
/// writebacks" (§IV); a data structure's main-memory access count is the
/// sum of the two (each miss loads one line from DRAM, each writeback
/// stores one line to DRAM).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsStats {
    /// Load references issued.
    pub reads: u64,
    /// Store references issued.
    pub writes: u64,
    /// References that hit in the cache.
    pub hits: u64,
    /// References that missed (line fills from main memory).
    pub misses: u64,
    /// Dirty lines of this data structure evicted to main memory.
    pub writebacks: u64,
}

impl DsStats {
    /// Total references (`reads + writes`).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Main-memory accesses attributed to this data structure:
    /// `misses + writebacks` (paper §IV, `N_ha` measured).
    pub fn mem_accesses(&self) -> u64 {
        self.misses + self.writebacks
    }

    /// Miss ratio over all references; `0.0` for an untouched structure.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &DsStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
    }
}

impl fmt::Display for DsStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r={} w={} hit={} miss={} wb={} mem={}",
            self.reads,
            self.writes,
            self.hits,
            self.misses,
            self.writebacks,
            self.mem_accesses()
        )
    }
}

/// Aggregate statistics for a full simulation, indexed by [`DsId`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    per_ds: Vec<DsStats>,
}

impl CacheStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable counters for `ds`, growing the table on demand.
    #[inline]
    pub fn ds_mut(&mut self, ds: DsId) -> &mut DsStats {
        let idx = ds.index();
        if idx >= self.per_ds.len() {
            self.per_ds.resize(idx + 1, DsStats::default());
        }
        &mut self.per_ds[idx]
    }

    /// Counters for `ds` (zero if never touched).
    pub fn ds(&self, ds: DsId) -> DsStats {
        self.per_ds.get(ds.index()).copied().unwrap_or_default()
    }

    /// Sum over all data structures.
    pub fn total(&self) -> DsStats {
        let mut acc = DsStats::default();
        for s in &self.per_ds {
            acc.merge(s);
        }
        acc
    }

    /// Iterate `(DsId, stats)` for every tracked structure.
    pub fn iter(&self) -> impl Iterator<Item = (DsId, &DsStats)> {
        self.per_ds
            .iter()
            .enumerate()
            .map(|(i, s)| (DsId(i as u16), s))
    }

    /// Render a table with names resolved through `registry`.
    pub fn render(&self, registry: &DsRegistry) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "data", "reads", "writes", "misses", "writebacks", "mem"
        );
        for (id, s) in self.iter() {
            let name = if id.index() < registry.len() {
                registry.name(id)
            } else {
                "?"
            };
            let _ = writeln!(
                out,
                "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}",
                name,
                s.reads,
                s.writes,
                s.misses,
                s.writebacks,
                s.mem_accesses()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_accesses_is_misses_plus_writebacks() {
        let s = DsStats {
            reads: 10,
            writes: 5,
            hits: 9,
            misses: 6,
            writebacks: 2,
        };
        assert_eq!(s.mem_accesses(), 8);
        assert_eq!(s.accesses(), 15);
        assert!((s.miss_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn miss_ratio_of_empty_is_zero() {
        assert_eq!(DsStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn stats_grow_on_demand() {
        let mut st = CacheStats::new();
        st.ds_mut(DsId(3)).misses = 7;
        assert_eq!(st.ds(DsId(3)).misses, 7);
        assert_eq!(st.ds(DsId(0)), DsStats::default());
        assert_eq!(st.ds(DsId(9)), DsStats::default());
    }

    #[test]
    fn total_merges_all() {
        let mut st = CacheStats::new();
        st.ds_mut(DsId(0)).misses = 3;
        st.ds_mut(DsId(1)).misses = 4;
        st.ds_mut(DsId(1)).writebacks = 1;
        let t = st.total();
        assert_eq!(t.misses, 7);
        assert_eq!(t.mem_accesses(), 8);
    }

    #[test]
    fn render_contains_names() {
        let mut reg = DsRegistry::new();
        let a = reg.register("A");
        let mut st = CacheStats::new();
        st.ds_mut(a).reads = 1;
        let table = st.render(&reg);
        assert!(table.contains('A'));
        assert!(table.contains("misses"));
    }
}
