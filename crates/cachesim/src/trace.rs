//! Memory reference traces.
//!
//! The paper collects memory references with a Pin-based instrumentation
//! tool and feeds them to the cache simulator (§IV). Here the traced kernels
//! in `dvf-kernels` produce the same logical stream: a sequence of
//! [`MemRef`]s, each attributed to a named *data structure* — the unit at
//! which DVF is defined.

use std::fmt;
use std::str::FromStr;

/// Identifier of a registered data structure within a [`DsRegistry`].
///
/// Small and `Copy` so that every traced access stays cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DsId(pub u16);

impl DsId {
    /// Index into per-data-structure stats tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ds#{}", self.0)
    }
}

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load from memory.
    Read,
    /// A store to memory.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

impl FromStr for AccessKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "R" | "r" => Ok(AccessKind::Read),
            "W" | "w" => Ok(AccessKind::Write),
            other => Err(format!("unknown access kind {other:?}")),
        }
    }
}

/// One memory reference: a byte address touched on behalf of a data
/// structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Owning data structure.
    pub ds: DsId,
    /// Byte address (within the traced process's virtual layout).
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
}

impl MemRef {
    /// Construct a reference.
    #[inline]
    pub fn new(ds: DsId, addr: u64, kind: AccessKind) -> Self {
        Self { ds, addr, kind }
    }

    /// Shorthand for a read.
    #[inline]
    pub fn read(ds: DsId, addr: u64) -> Self {
        Self::new(ds, addr, AccessKind::Read)
    }

    /// Shorthand for a write.
    #[inline]
    pub fn write(ds: DsId, addr: u64) -> Self {
        Self::new(ds, addr, AccessKind::Write)
    }
}

/// Registry mapping data-structure names (e.g. `"A"`, `"T"`, `"Grid"`) to
/// compact [`DsId`]s.
#[derive(Debug, Clone, Default)]
pub struct DsRegistry {
    names: Vec<String>,
}

impl DsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a data structure, returning its id. Registering the same
    /// name twice returns the existing id.
    pub fn register(&mut self, name: &str) -> DsId {
        if let Some(pos) = self.names.iter().position(|n| n == name) {
            return DsId(pos as u16);
        }
        assert!(
            self.names.len() < u16::MAX as usize,
            "too many data structures"
        );
        self.names.push(name.to_owned());
        DsId((self.names.len() - 1) as u16)
    }

    /// Look up an id by name.
    pub fn id(&self, name: &str) -> Option<DsId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|p| DsId(p as u16))
    }

    /// Name of a registered id.
    pub fn name(&self, id: DsId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered data structures.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(DsId, name)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (DsId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (DsId(i as u16), n.as_str()))
    }
}

/// An in-memory reference trace plus the registry naming its data
/// structures.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Names of the data structures appearing in `refs`.
    pub registry: DsRegistry,
    /// The reference stream, in program order.
    pub refs: Vec<MemRef>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of references.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the trace holds no references.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Append a reference.
    #[inline]
    pub fn push(&mut self, r: MemRef) {
        self.refs.push(r);
    }

    /// Serialize to the simple line format `name kind addr` (one reference
    /// per line, addresses in hex). Useful for debugging and for feeding
    /// external tools.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.refs.len() * 16);
        for r in &self.refs {
            let _ = writeln!(out, "{} {} {:#x}", self.registry.name(r.ds), r.kind, r.addr);
        }
        out
    }

    /// Parse the format produced by [`Trace::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut trace = Trace::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (name, kind, addr) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(k), Some(a)) => (n, k, a),
                _ => return Err(format!("line {}: expected `name kind addr`", lineno + 1)),
            };
            let kind: AccessKind = kind
                .parse()
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let addr = if let Some(hex) = addr.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                addr.parse()
            }
            .map_err(|e| format!("line {}: bad address: {e}", lineno + 1))?;
            let ds = trace.registry.register(name);
            trace.push(MemRef::new(ds, addr, kind));
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_deduplicates() {
        let mut reg = DsRegistry::new();
        let a = reg.register("A");
        let b = reg.register("B");
        let a2 = reg.register("A");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(reg.name(a), "A");
        assert_eq!(reg.id("B"), Some(b));
        assert_eq!(reg.id("C"), None);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn registry_iterates_in_order() {
        let mut reg = DsRegistry::new();
        reg.register("x");
        reg.register("y");
        let names: Vec<_> = reg.iter().map(|(_, n)| n).collect();
        assert_eq!(names, ["x", "y"]);
    }

    #[test]
    fn trace_text_roundtrip() {
        let mut t = Trace::new();
        let a = t.registry.register("A");
        let b = t.registry.register("B");
        t.push(MemRef::read(a, 0x1000));
        t.push(MemRef::write(b, 0x2008));
        t.push(MemRef::read(a, 0x1008));

        let text = t.to_text();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(back.refs, t.refs);
        assert_eq!(back.registry.name(a), "A");
    }

    #[test]
    fn trace_text_rejects_garbage() {
        assert!(Trace::from_text("A R").is_err());
        assert!(Trace::from_text("A X 0x10").is_err());
        assert!(Trace::from_text("A R zz").is_err());
    }

    #[test]
    fn trace_text_skips_comments_and_blanks() {
        let t = Trace::from_text("# comment\n\nA R 0x10\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn access_kind_parses() {
        assert_eq!("R".parse::<AccessKind>().unwrap(), AccessKind::Read);
        assert_eq!("w".parse::<AccessKind>().unwrap(), AccessKind::Write);
        assert!("q".parse::<AccessKind>().is_err());
    }
}
