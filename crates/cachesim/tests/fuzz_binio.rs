//! Byte-level fuzzing of the DVFT binary-trace reader.
//!
//! `TraceReader` decodes untrusted files. These properties feed it raw
//! byte soup and mutated well-formed traces: every input must either
//! decode or fail with an `io::Error` — never panic, never allocate
//! proportionally to a length *claim* the input doesn't back with bytes.

use dvf_cachesim::binio::{read_binary, write_binary, TraceReader};
use dvf_cachesim::{AccessKind, MemRef, Trace};
use proptest::prelude::*;

/// A well-formed trace to mutate: two structures, mixed kinds, addresses
/// spanning the full u64 range.
fn sample_trace(refs: usize) -> Vec<u8> {
    let mut t = Trace::new();
    let a = t.registry.register("A");
    let b = t.registry.register("Grid");
    for i in 0..refs as u64 {
        let ds = if i % 3 == 0 { b } else { a };
        let kind = if i % 5 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        t.push(MemRef::new(ds, i.wrapping_mul(0x9e37_79b9_7f4a_7c15), kind));
    }
    let mut buf = Vec::new();
    write_binary(&t, &mut buf).unwrap();
    buf
}

/// Decode `bytes` fully through the chunked reader; errors are fine,
/// panics are not. Exercises several chunk sizes including the
/// carry-buffer path (`max` below the record count).
fn drain(bytes: &[u8], max: usize) {
    let Ok(mut reader) = TraceReader::new(bytes) else {
        return;
    };
    let mut chunk = Vec::new();
    loop {
        match reader.read_chunk(&mut chunk, max) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

proptest! {
    /// Raw byte soup never panics the header parser or record decoder.
    #[test]
    fn reader_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255u8, 0..512),
        max in 1usize..64,
    ) {
        let _ = read_binary(bytes.as_slice());
        drain(&bytes, max);
    }

    /// Byte soup behind a valid magic+version prefix reaches the header
    /// fields (count, name lengths, UTF-8) far more often.
    #[test]
    fn reader_never_panics_behind_valid_magic(
        bytes in prop::collection::vec(0u8..=255u8, 0..512),
        max in 1usize..64,
    ) {
        let mut buf = b"DVFT\x01".to_vec();
        buf.extend_from_slice(&bytes);
        let _ = read_binary(buf.as_slice());
        drain(&buf, max);
    }

    /// Mutations of a well-formed trace (overwrites, truncations,
    /// insertions, deletions) decode or error — and when nothing was
    /// mutated, still decode to the original record count.
    #[test]
    fn reader_never_panics_on_mutated_traces(
        refs in 0usize..200,
        ops in prop::collection::vec((0u8..4, 0u16..4096, 0u8..=255u8), 0..12),
        max in 1usize..64,
    ) {
        let mut bytes = sample_trace(refs);
        for &(kind, pos, byte) in &ops {
            if bytes.is_empty() {
                break;
            }
            let i = pos as usize % bytes.len();
            match kind {
                0 => bytes[i] = byte,
                1 => bytes.truncate(i),
                2 => bytes.insert(i, byte),
                _ => {
                    bytes.remove(i);
                }
            }
        }
        let _ = read_binary(bytes.as_slice());
        drain(&bytes, max);
    }

    /// Headers whose count / name-length fields claim far more data than
    /// the input holds are rejected with a descriptive error instead of
    /// being trusted (the old code allocated `len` bytes up front).
    #[test]
    fn oversized_header_claims_are_rejected(
        count in 1u16..=u16::MAX,
        len in 256u16..=u16::MAX,
        filler in prop::collection::vec(0u8..=255u8, 0..64),
    ) {
        let mut buf = b"DVFT\x01".to_vec();
        buf.extend_from_slice(&count.to_le_bytes());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&filler);
        let err = TraceReader::new(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        prop_assert!(
            msg.contains("claims") || msg.contains("truncated") || msg.contains("UTF-8"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn unmutated_sample_roundtrips_through_drain_paths() {
    // Sanity-pin the fuzz fixtures themselves: the unmutated sample must
    // decode identically through every chunk size the properties use.
    let bytes = sample_trace(100);
    let full = read_binary(bytes.as_slice()).unwrap();
    assert_eq!(full.len(), 100);
    for max in [1usize, 7, 33, 100, 1000] {
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        let mut refs = Vec::new();
        let mut chunk = Vec::new();
        while reader.read_chunk(&mut chunk, max).unwrap() > 0 {
            refs.extend_from_slice(&chunk);
        }
        assert_eq!(refs, full.refs, "max = {max}");
    }
}
