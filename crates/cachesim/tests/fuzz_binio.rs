//! Byte-level fuzzing of the DVFT binary-trace reader.
//!
//! `TraceReader` decodes untrusted files. These properties feed it raw
//! byte soup and mutated well-formed traces: every input must either
//! decode or fail with an `io::Error` — never panic, never allocate
//! proportionally to a length *claim* the input doesn't back with bytes.

use dvf_cachesim::binio::{read_binary, write_binary, write_binary_v2, TraceReader};
use dvf_cachesim::{AccessKind, MemRef, Trace};
use proptest::prelude::*;

/// The two-structure mixed trace all fixtures serialize.
fn sample(refs: usize) -> Trace {
    let mut t = Trace::new();
    let a = t.registry.register("A");
    let b = t.registry.register("Grid");
    for i in 0..refs as u64 {
        let ds = if i % 3 == 0 { b } else { a };
        let kind = if i % 5 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        t.push(MemRef::new(ds, i.wrapping_mul(0x9e37_79b9_7f4a_7c15), kind));
    }
    t
}

/// A well-formed v1 trace to mutate: two structures, mixed kinds,
/// addresses spanning the full u64 range.
fn sample_trace(refs: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    write_binary(&sample(refs), &mut buf).unwrap();
    buf
}

/// The same trace in the compressed block-indexed v2 format.
fn sample_trace_v2(refs: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    write_binary_v2(&sample(refs), &mut buf).unwrap();
    buf
}

/// Append an unsigned LEB128 varint (the v2 wire primitive).
fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            break;
        }
        buf.push(b | 0x80);
    }
}

/// Assemble a syntactically complete single-block DVFT2 file around a
/// hand-crafted block payload, so properties can target the record
/// decoder with the container (trailer, index, magics) held valid.
fn craft_v2(payload: &[u8], record_count: u64, names: &[&str]) -> Vec<u8> {
    let mut buf = b"DVFT\x02".to_vec();
    buf.push(0x01); // block marker
    push_varint(&mut buf, record_count);
    push_varint(&mut buf, payload.len() as u64);
    buf.extend_from_slice(payload);

    let mut trailer = Vec::new();
    push_varint(&mut trailer, names.len() as u64);
    for n in names {
        push_varint(&mut trailer, n.len() as u64);
        trailer.extend_from_slice(n.as_bytes());
    }
    push_varint(&mut trailer, 1); // block count
    push_varint(&mut trailer, 0); // body offset of block 0
    push_varint(&mut trailer, record_count);

    buf.push(0x00); // end-of-blocks sentinel
    buf.extend_from_slice(&trailer);
    buf.extend_from_slice(&(1 + trailer.len() as u32).to_le_bytes());
    buf.extend_from_slice(b"2TFV");
    buf
}

/// Decode `bytes` fully through the chunked reader; errors are fine,
/// panics are not. Exercises several chunk sizes including the
/// carry-buffer path (`max` below the record count).
fn drain(bytes: &[u8], max: usize) {
    let Ok(mut reader) = TraceReader::new(bytes) else {
        return;
    };
    let mut chunk = Vec::new();
    loop {
        match reader.read_chunk(&mut chunk, max) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

proptest! {
    /// Raw byte soup never panics the header parser or record decoder.
    #[test]
    fn reader_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255u8, 0..512),
        max in 1usize..64,
    ) {
        let _ = read_binary(bytes.as_slice());
        drain(&bytes, max);
    }

    /// Byte soup behind a valid magic+version prefix reaches the header
    /// fields (count, name lengths, UTF-8) far more often.
    #[test]
    fn reader_never_panics_behind_valid_magic(
        bytes in prop::collection::vec(0u8..=255u8, 0..512),
        max in 1usize..64,
    ) {
        let mut buf = b"DVFT\x01".to_vec();
        buf.extend_from_slice(&bytes);
        let _ = read_binary(buf.as_slice());
        drain(&buf, max);
    }

    /// Mutations of a well-formed trace (overwrites, truncations,
    /// insertions, deletions) decode or error — and when nothing was
    /// mutated, still decode to the original record count.
    #[test]
    fn reader_never_panics_on_mutated_traces(
        refs in 0usize..200,
        ops in prop::collection::vec((0u8..4, 0u16..4096, 0u8..=255u8), 0..12),
        max in 1usize..64,
    ) {
        let mut bytes = sample_trace(refs);
        for &(kind, pos, byte) in &ops {
            if bytes.is_empty() {
                break;
            }
            let i = pos as usize % bytes.len();
            match kind {
                0 => bytes[i] = byte,
                1 => bytes.truncate(i),
                2 => bytes.insert(i, byte),
                _ => {
                    bytes.remove(i);
                }
            }
        }
        let _ = read_binary(bytes.as_slice());
        drain(&bytes, max);
    }

    /// v2 byte soup behind a valid magic+version prefix reaches the
    /// trailer/index parser and block decoder without panicking.
    #[test]
    fn v2_reader_never_panics_behind_valid_magic(
        bytes in prop::collection::vec(0u8..=255u8, 0..512),
        max in 1usize..64,
    ) {
        let mut buf = b"DVFT\x02".to_vec();
        buf.extend_from_slice(&bytes);
        let _ = read_binary(buf.as_slice());
        drain(&buf, max);
    }

    /// Mutations of a well-formed v2 trace (overwrites, truncations,
    /// insertions, deletions) decode or error — never panic. This walks
    /// every corruption class at once: corrupt varint continuation bits,
    /// broken block markers, a damaged index, sheared run tokens.
    #[test]
    fn v2_reader_never_panics_on_mutated_traces(
        refs in 0usize..400,
        ops in prop::collection::vec((0u8..4, 0u16..8192, 0u8..=255u8), 0..12),
        max in 1usize..64,
    ) {
        let mut bytes = sample_trace_v2(refs);
        for &(kind, pos, byte) in &ops {
            if bytes.is_empty() {
                break;
            }
            let i = pos as usize % bytes.len();
            match kind {
                0 => bytes[i] = byte,
                1 => bytes.truncate(i),
                2 => bytes.insert(i, byte),
                _ => {
                    bytes.remove(i);
                }
            }
        }
        let _ = read_binary(bytes.as_slice());
        drain(&bytes, max);
    }

    /// Truncating anywhere inside the block-index trailer must produce a
    /// clean error: the end magic or trailer bytes are gone, and nothing
    /// the index *claimed* may be trusted.
    #[test]
    fn v2_truncated_block_index_is_rejected(
        refs in 1usize..300,
        cut in 1usize..64,
    ) {
        let full = sample_trace_v2(refs);
        // Trailer length (including sentinel) is stored 8 bytes from the
        // end; the trailer region spans tlen + 8 trailing bytes.
        let n = full.len();
        let tlen = u32::from_le_bytes(full[n - 8..n - 4].try_into().unwrap()) as usize;
        let cut = cut % (tlen + 8) + 1; // 1 ..= tlen + 8 bytes removed
        let mut bytes = full;
        bytes.truncate(n - cut);
        prop_assert!(read_binary(bytes.as_slice()).is_err(), "cut {cut} decoded");
        let streamed = TraceReader::new(bytes.as_slice()).and_then(|mut r| {
            let mut chunk = Vec::new();
            while r.read_chunk(&mut chunk, 64)? > 0 {}
            Ok(())
        });
        prop_assert!(streamed.is_err(), "cut {cut} streamed");
    }

    /// Setting a continuation bit on a body byte can run a varint past
    /// its field or off the payload end; either way the decoder must
    /// error or produce records — never panic or hang.
    #[test]
    fn v2_corrupt_varint_continuation_never_panics(
        refs in 1usize..300,
        pos in 0u16..8192,
        max in 1usize..64,
    ) {
        let mut bytes = sample_trace_v2(refs);
        // Corrupt only body bytes (after magic+version, before trailer);
        // the continuation bit is the varint wire's length signal.
        let body = 5..bytes.len().saturating_sub(8);
        if body.is_empty() {
            return Ok(());
        }
        let i = body.start + pos as usize % body.len();
        bytes[i] |= 0x80;
        let _ = read_binary(bytes.as_slice());
        drain(&bytes, max);
    }

    /// A record whose escaped structure id points past the dictionary is
    /// rejected with a descriptive error (a raw index would read out of
    /// bounds in the per-structure delta state).
    #[test]
    fn v2_out_of_range_ds_id_is_rejected(ds in 2u64..1_000_000) {
        // Tag 0x3e = escape-ds marker (id 31 in bits 1-5), read access;
        // the real id follows as a varint, then the address delta.
        let mut payload = vec![0x3e];
        push_varint(&mut payload, ds);
        push_varint(&mut payload, 0); // zigzag delta 0
        let bytes = craft_v2(&payload, 1, &["A", "B"]);
        let err = read_binary(bytes.as_slice()).unwrap_err();
        prop_assert!(
            err.to_string().contains("out-of-range"),
            "unexpected error: {err}"
        );
    }

    /// Headers whose count / name-length fields claim far more data than
    /// the input holds are rejected with a descriptive error instead of
    /// being trusted (the old code allocated `len` bytes up front).
    #[test]
    fn oversized_header_claims_are_rejected(
        count in 1u16..=u16::MAX,
        len in 256u16..=u16::MAX,
        filler in prop::collection::vec(0u8..=255u8, 0..64),
    ) {
        let mut buf = b"DVFT\x01".to_vec();
        buf.extend_from_slice(&count.to_le_bytes());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&filler);
        let err = TraceReader::new(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        prop_assert!(
            msg.contains("claims") || msg.contains("truncated") || msg.contains("UTF-8"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn crafted_v2_fixture_decodes_when_well_formed() {
    // Sanity-pin `craft_v2` itself: the same escaped-id record with an
    // in-range id must decode, so the rejection property above is testing
    // the id bound and not an accident of the fixture.
    let mut payload = vec![0x3e];
    push_varint(&mut payload, 1); // ds id 1: in range
    push_varint(&mut payload, 2); // zigzag(2) = +1
    let bytes = craft_v2(&payload, 1, &["A", "B"]);
    let trace = read_binary(bytes.as_slice()).unwrap();
    assert_eq!(
        trace.refs,
        vec![MemRef::new(dvf_cachesim::DsId(1), 1, AccessKind::Read)]
    );
}

#[test]
fn unmutated_v2_sample_roundtrips_through_drain_paths() {
    // The v2 fixture must decode identically through every chunk size the
    // properties use, and match the v1 encoding of the same trace.
    let trace = sample(300);
    let bytes = sample_trace_v2(300);
    let full = read_binary(bytes.as_slice()).unwrap();
    assert_eq!(full.refs, trace.refs);
    for max in [1usize, 7, 33, 100, 1000] {
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        let mut refs = Vec::new();
        let mut chunk = Vec::new();
        while reader.read_chunk(&mut chunk, max).unwrap() > 0 {
            refs.extend_from_slice(&chunk);
        }
        assert_eq!(refs, full.refs, "max = {max}");
    }
}

#[test]
fn unmutated_sample_roundtrips_through_drain_paths() {
    // Sanity-pin the fuzz fixtures themselves: the unmutated sample must
    // decode identically through every chunk size the properties use.
    let bytes = sample_trace(100);
    let full = read_binary(bytes.as_slice()).unwrap();
    assert_eq!(full.len(), 100);
    for max in [1usize, 7, 33, 100, 1000] {
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        let mut refs = Vec::new();
        let mut chunk = Vec::new();
        while reader.read_chunk(&mut chunk, max).unwrap() > 0 {
            refs.extend_from_slice(&chunk);
        }
        assert_eq!(refs, full.refs, "max = {max}");
    }
}
