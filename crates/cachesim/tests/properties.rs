//! Property-based tests for the cache simulator invariants.

use dvf_cachesim::{
    simulate, simulate_hierarchy_config, simulate_hierarchy_many_with_threads,
    simulate_many_with_threads, simulate_with_policy, AccessKind, CacheConfig, HierarchyConfig,
    InclusionPolicy, LevelSpec, MemRef, PolicyKind, SimJob, Simulator, Trace,
};
use proptest::prelude::*;

/// Strategy: a random but well-formed cache geometry.
fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (1usize..=8, 0u32..=6, 3u32..=7).prop_map(|(assoc, sets_log2, line_log2)| {
        CacheConfig::new(assoc, 1 << sets_log2, 1 << line_log2).unwrap()
    })
}

/// Strategy: a trace over up to 4 data structures within a 64 KiB region.
fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u16..4, 0u64..65536, prop::bool::ANY), 1..max_len).prop_map(|refs| {
        let mut t = Trace::new();
        for name in ["A", "B", "C", "D"] {
            t.registry.register(name);
        }
        for (ds, addr, write) in refs {
            let kind = if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            t.push(MemRef::new(dvf_cachesim::DsId(ds), addr, kind));
        }
        t
    })
}

proptest! {
    /// Misses never exceed references; hits + misses == references.
    #[test]
    fn conservation_of_references(cfg in arb_config(), trace in arb_trace(200)) {
        let report = simulate(&trace, cfg);
        let total = report.total();
        prop_assert_eq!(total.accesses(), trace.len() as u64);
        prop_assert_eq!(total.hits + total.misses, total.accesses());
    }

    /// Writebacks can never exceed the number of write misses + write hits
    /// (a line only becomes dirty via a write, and each dirtying write can
    /// produce at most one eventual writeback per fill).
    #[test]
    fn writebacks_bounded_by_writes(cfg in arb_config(), trace in arb_trace(200)) {
        let report = simulate(&trace, cfg);
        let total = report.total();
        prop_assert!(total.writebacks <= total.writes);
    }

    /// The number of misses is at least the number of distinct blocks
    /// touched (compulsory misses) and at most the number of references.
    #[test]
    fn miss_bounds(cfg in arb_config(), trace in arb_trace(200)) {
        let report = simulate(&trace, cfg);
        let mut blocks: Vec<u64> = trace.refs.iter().map(|r| cfg.block_of(r.addr)).collect();
        blocks.sort_unstable();
        blocks.dedup();
        let total = report.total();
        prop_assert!(total.misses >= blocks.len() as u64);
        prop_assert!(total.misses <= trace.len() as u64);
    }

    /// A fully-associative-equivalent bigger cache never has more misses
    /// than a smaller cache with the same line size under LRU (inclusion
    /// property of LRU stacks holds per set when sets are identical and
    /// associativity grows).
    #[test]
    fn lru_inclusion_across_associativity(trace in arb_trace(300)) {
        let small = CacheConfig::new(2, 16, 32).unwrap();
        let large = CacheConfig::new(8, 16, 32).unwrap();
        let rs = simulate(&trace, small);
        let rl = simulate(&trace, large);
        prop_assert!(rl.total().misses <= rs.total().misses);
    }

    /// Replaying the same trace twice through an untouched simulator gives
    /// identical statistics (determinism), for every policy.
    #[test]
    fn deterministic_replay(cfg in arb_config(), trace in arb_trace(150)) {
        for kind in PolicyKind::ALL {
            let r1 = simulate_with_policy(&trace, cfg, kind);
            let r2 = simulate_with_policy(&trace, cfg, kind);
            prop_assert_eq!(r1.total(), r2.total());
        }
    }

    /// Per-data-structure stats sum to the totals.
    #[test]
    fn per_ds_sums_to_total(cfg in arb_config(), trace in arb_trace(200)) {
        let report = simulate(&trace, cfg);
        let mut sum = dvf_cachesim::DsStats::default();
        for (_, s) in report.stats().iter() {
            sum.merge(s);
        }
        prop_assert_eq!(sum, report.total());
    }

    /// Trace text round-trip preserves the simulation outcome.
    #[test]
    fn text_roundtrip_same_simulation(cfg in arb_config(), trace in arb_trace(100)) {
        let back = Trace::from_text(&trace.to_text()).unwrap();
        let r1 = simulate(&trace, cfg);
        let r2 = simulate(&back, cfg);
        prop_assert_eq!(r1.total(), r2.total());
    }

    /// Parallel fan-out is bit-identical to per-job sequential replay for
    /// every policy, any geometry mix, and any worker count.
    #[test]
    fn simulate_many_matches_sequential(
        cfg_a in arb_config(),
        cfg_b in arb_config(),
        trace in arb_trace(200),
        threads in 1usize..6,
    ) {
        let jobs: Vec<SimJob> = PolicyKind::ALL
            .iter()
            .flat_map(|&policy| {
                [SimJob { config: cfg_a, policy }, SimJob { config: cfg_b, policy }]
            })
            .collect();
        let par = simulate_many_with_threads(&trace, &jobs, threads);
        prop_assert_eq!(par.len(), jobs.len());
        for (job, report) in jobs.iter().zip(&par) {
            let seq = simulate_with_policy(&trace, job.config, job.policy);
            prop_assert_eq!(report, &seq);
        }
    }
}

proptest! {
    /// Hierarchy invariants over random traces: every reference hits L1;
    /// the LLC sees at most L1's misses + writebacks; LLC misses are at
    /// least the compulsory minimum (distinct blocks actually forwarded).
    ///
    /// Note what is *not* asserted: hierarchy DRAM misses can exceed the
    /// LLC-only count by a little — L1 filtering thins the LLC's reference
    /// stream, perturbing its LRU history (the classic non-inclusive
    /// hierarchy anomaly) — so no inclusion property holds across
    /// configurations.
    #[test]
    fn hierarchy_invariants(trace in arb_trace(250)) {
        let l1 = CacheConfig::new(2, 8, 32).unwrap();
        let llc = CacheConfig::new(4, 64, 32).unwrap();
        let report = dvf_cachesim::simulate_hierarchy(&trace, l1, llc);
        let (l1_total, llc_total) = report.totals();
        prop_assert_eq!(l1_total.accesses(), trace.len() as u64);
        prop_assert!(llc_total.accesses() <= l1_total.misses + l1_total.writebacks);
        // Compulsory lower bound: every distinct block the program touches
        // must be loaded from DRAM at least once.
        let mut blocks: Vec<u64> = trace.refs.iter().map(|r| llc.block_of(r.addr)).collect();
        blocks.sort_unstable();
        blocks.dedup();
        prop_assert!(llc_total.misses >= blocks.len() as u64);
    }

    /// A stack of identical levels under a *hit-insensitive* policy
    /// (FIFO, seeded random — victim choice ignores hits) degenerates to
    /// the single cache bit-for-bit, writes included: each lower level
    /// sees exactly the upper level's miss stream and, starting cold with
    /// the same geometry, replays the same fills and evictions, so its
    /// content shadows the upper level's at every step. DRAM traffic per
    /// data structure must therefore equal the single-level run's misses
    /// and writebacks exactly. (LRU and PLRU do *not* degenerate: hits
    /// promote in the upper level only, so recency orders diverge.)
    #[test]
    fn same_geometry_stack_degenerates_for_hit_insensitive_policies(
        cfg in arb_config(),
        trace in arb_trace(250),
        depth in 2usize..=3,
    ) {
        for policy in [PolicyKind::Fifo, PolicyKind::Random] {
            let single = simulate_with_policy(&trace, cfg, policy);
            let stack = HierarchyConfig::new(
                (0..depth).map(|_| LevelSpec::new(cfg).with_policy(policy)).collect(),
            ).unwrap();
            let hier = simulate_hierarchy_config(&trace, &stack);
            for (id, _) in trace.registry.iter() {
                prop_assert_eq!(hier.dram.ds(id).misses, single.ds(id).misses);
                prop_assert_eq!(hier.dram.ds(id).writebacks, single.ds(id).writebacks);
            }
        }
    }

    /// A single pass over distinct lines (no reuse) degenerates for
    /// *every* policy: with nothing to re-reference, replacement order is
    /// unobservable and each line costs exactly one DRAM read (plus one
    /// writeback if written).
    #[test]
    fn streaming_degenerates_for_all_policies(
        cfg in arb_config(),
        writes in prop::collection::vec(prop::bool::ANY, 1..300),
    ) {
        let mut trace = Trace::new();
        let id = trace.registry.register("A");
        for (i, &w) in writes.iter().enumerate() {
            let addr = i as u64 * cfg.line_bytes as u64;
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            trace.push(MemRef::new(id, addr, kind));
        }
        let dirty_lines = writes.iter().filter(|&&w| w).count() as u64;
        for policy in PolicyKind::ALL {
            let single = simulate_with_policy(&trace, cfg, policy);
            prop_assert_eq!(single.ds(id).misses, writes.len() as u64);
            prop_assert_eq!(single.ds(id).writebacks, dirty_lines);
            let stack = HierarchyConfig::new(vec![
                LevelSpec::new(cfg).with_policy(policy),
                LevelSpec::new(cfg).with_policy(policy),
            ]).unwrap();
            let hier = simulate_hierarchy_config(&trace, &stack);
            prop_assert_eq!(hier.dram.ds(id).misses, writes.len() as u64);
            prop_assert_eq!(hier.dram.ds(id).writebacks, dirty_lines);
        }
    }

    /// Hierarchy fan-out over scoped threads is bit-identical to running
    /// each stack sequentially, for any worker count and a shape mix
    /// covering every inclusion policy and a prefetcher.
    #[test]
    fn hierarchy_fanout_matches_sequential(
        trace in arb_trace(200),
        threads in 1usize..6,
    ) {
        let l1 = CacheConfig::new(2, 8, 32).unwrap();
        let l2 = CacheConfig::new(4, 32, 32).unwrap();
        let configs: Vec<HierarchyConfig> = [
            InclusionPolicy::Nine,
            InclusionPolicy::Inclusive,
            InclusionPolicy::Exclusive,
        ]
        .iter()
        .map(|&incl| {
            HierarchyConfig::new(vec![
                LevelSpec::new(l1).with_prefetch(1),
                LevelSpec::new(l2).with_inclusion(incl),
            ])
            .unwrap()
        })
        .collect();
        let par = simulate_hierarchy_many_with_threads(&trace, &configs, threads);
        prop_assert_eq!(par.len(), configs.len());
        for (config, report) in configs.iter().zip(&par) {
            let seq = simulate_hierarchy_config(&trace, config);
            prop_assert_eq!(report.refs, seq.refs);
            prop_assert_eq!(&report.dram, &seq.dram);
            prop_assert_eq!(&report.dram_prefetch, &seq.dram_prefetch);
            for (a, b) in report.levels.iter().zip(&seq.levels) {
                prop_assert_eq!(&a.stats, &b.stats);
                prop_assert_eq!(a.prefetch, b.prefetch);
            }
        }
    }

    /// Binary serialization round-trips any trace.
    #[test]
    fn binio_roundtrip(trace in arb_trace(300)) {
        let mut buf = Vec::new();
        dvf_cachesim::binio::write_binary(&trace, &mut buf).unwrap();
        let back = dvf_cachesim::binio::read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(back.refs, trace.refs);
        prop_assert_eq!(back.registry.len(), trace.registry.len());
    }
}

#[test]
fn streaming_exactness() {
    // Deterministic check used by Fig. 4's streaming validation: a pure
    // sequential read of D bytes causes exactly ceil(D/CL) misses.
    for (d, cl) in [(4096u64, 32usize), (1000, 64), (7, 8)] {
        let cfg = CacheConfig::new(4, 64, cl).unwrap();
        let mut sim = Simulator::new(cfg);
        let ds = dvf_cachesim::DsId(0);
        for addr in 0..d {
            sim.access(MemRef::read(ds, addr));
        }
        let report = sim.finish();
        assert_eq!(report.ds(ds).misses, d.div_ceil(cl as u64));
    }
}
