//! Exact-to-double-precision combinatorics in log space.
//!
//! The random-access model (paper Eq. 5) and the data-reuse model (paper
//! Eqs. 8 and 12) need binomial coefficients with arguments up to the number
//! of elements in a data structure (10⁵ and beyond for the profiling inputs
//! of Table VI). Those overflow `f64` catastrophically if evaluated
//! directly, so every probability here is assembled from log-gamma.
//!
//! Eq. 12 additionally evaluates a "binomial coefficient" at a *non-integer*
//! first argument (the expected combined footprint `I`); the gamma-function
//! continuation handles that uniformly.

/// Natural log of the gamma function, Lanczos approximation (g = 7, 9
/// coefficients). Accurate to ~15 significant digits for `x > 0`.
///
/// # Domain
///
/// Defined for `x > 0` only. At zero and the negative integers Γ has
/// poles, and for other negative `x` the *sign* of Γ(x) alternates, so a
/// real-valued `ln Γ` does not exist; the reflection formula used below
/// for `x < 0.5` would silently return `-inf` (at the poles) or NaN
/// (where `sin(πx) < 0`) with no indication of misuse. Debug builds
/// assert `x > 0`; release builds remain garbage-in/garbage-out for
/// non-positive input, matching every internal caller's established
/// `x ≥ 1` usage.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(
        x > 0.0,
        "ln_gamma is only defined for x > 0 (called with x = {x})"
    );
    // Coefficients for g=7, n=9 (Godfrey / numerical recipes lineage).
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Arguments covered by the precomputed `ln(n!)` table. Binomial pmf/tail
/// sums (Eqs. 5, 8, 12) call `ln_factorial` millions of times during a
/// sweep, almost always with footprint-in-blocks arguments well below this
/// bound; the table turns each such call into a load.
const LN_FACTORIAL_TABLE_LEN: usize = 4097;

/// `ln(n!)` for `n < LN_FACTORIAL_TABLE_LEN`, precomputed on first use with
/// [`ln_factorial_direct`] — table entries are bit-identical to what the
/// direct computation returns, so the fast path changes no result.
static LN_FACTORIAL_TABLE: std::sync::LazyLock<Vec<f64>> = std::sync::LazyLock::new(|| {
    (0..LN_FACTORIAL_TABLE_LEN as u64)
        .map(ln_factorial_direct)
        .collect()
});

/// The uncached `ln(n!)`: exact u64 factorial for `n ≤ 20` (where `n!`
/// fits), log-gamma above.
fn ln_factorial_direct(n: u64) -> f64 {
    if n <= 20 {
        let mut f: u64 = 1;
        for i in 2..=n {
            f *= i;
        }
        (f as f64).ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln(n!)` for integer `n`; precomputed table for small `n`, log-gamma
/// above.
pub fn ln_factorial(n: u64) -> f64 {
    match LN_FACTORIAL_TABLE.get(n as usize) {
        Some(&v) => v,
        None => ln_gamma(n as f64 + 1.0),
    }
}

/// `ln C(n, k)` for integers. Returns `f64::NEG_INFINITY` when the
/// coefficient is zero (`k > n`).
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `C(n, k)` for integers, computed through logs. Values above ~1e308
/// return `f64::INFINITY`.
pub fn binomial(n: u64, k: u64) -> f64 {
    ln_binomial(n, k).exp()
}

/// Generalized `ln C(n, k)` for real `n ≥ 0` and integer `k`:
/// `Γ(n+1) / (Γ(k+1) Γ(n−k+1))`. Returns `NEG_INFINITY` when `k > n`
/// (the natural zero of the coefficient as `n-k+1` approaches a pole).
pub fn ln_binomial_real(n: f64, k: f64) -> f64 {
    if k < 0.0 || k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n + 1.0) - ln_gamma(k + 1.0) - ln_gamma(n - k + 1.0)
}

/// Probability mass of the hypergeometric distribution:
/// drawing `m` items from a population of `n` that contains `k` marked
/// items, the probability that exactly `j` drawn items are marked.
///
/// Zero outside the support `max(0, m+k-n) ≤ j ≤ min(k, m)`.
pub fn hypergeometric_pmf(n: u64, k: u64, m: u64, j: u64) -> f64 {
    if m > n || k > n {
        return 0.0;
    }
    let lo = (m + k).saturating_sub(n);
    let hi = k.min(m);
    if j < lo || j > hi {
        return 0.0;
    }
    (ln_binomial(k, j) + ln_binomial(n - k, m - j) - ln_binomial(n, m)).exp()
}

/// Mean of the hypergeometric distribution: `m * k / n`.
pub fn hypergeometric_mean(n: u64, k: u64, m: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        m as f64 * k as f64 / n as f64
    }
}

/// Probability mass of the binomial distribution `B(n, p)` at `j`.
pub fn binomial_pmf(n: u64, p: f64, j: u64) -> f64 {
    if j > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if j == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if j == n { 1.0 } else { 0.0 };
    }
    (ln_binomial(n, j) + j as f64 * p.ln() + (n - j) as f64 * (1.0 - p).ln()).exp()
}

/// Upper tail of the binomial distribution: `P(X ≥ j)` for `X ~ B(n, p)`.
pub fn binomial_tail_ge(n: u64, p: f64, j: u64) -> f64 {
    if j == 0 {
        return 1.0;
    }
    if j > n {
        return 0.0;
    }
    // Direct summation; n here is a footprint in cache blocks (≤ millions),
    // but the tail beyond j is dominated by terms near n*p, so sum from j.
    let mut acc = 0.0;
    for x in j..=n {
        let t = binomial_pmf(n, p, x);
        acc += t;
        // Terms decay geometrically well past the mean; cut off when
        // negligible and past the mode.
        if t < 1e-18 && (x as f64) > n as f64 * p + 10.0 {
            break;
        }
    }
    acc.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..=15u64 {
            let mut f = 1.0f64;
            for i in 2..=n {
                f *= i as f64;
            }
            assert_close(ln_gamma(n as f64 + 1.0), f.ln(), 1e-12);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert_close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
    }

    #[test]
    fn binomial_small_exact() {
        assert_close(binomial(10, 3), 120.0, 1e-12);
        assert_close(binomial(52, 5), 2_598_960.0, 1e-10);
        assert_eq!(binomial(5, 6), 0.0);
        assert_close(binomial(0, 0), 1.0, 1e-15);
    }

    #[test]
    fn binomial_large_no_overflow() {
        // C(100000, 50000) is astronomically large; its log must be finite.
        let ln = ln_binomial(100_000, 50_000);
        assert!(ln.is_finite());
        assert!(ln > 69_000.0 && ln < 69_400.0); // ~ 1e5 * ln 2
    }

    #[test]
    fn binomial_real_extends_integer() {
        for (n, k) in [(10u64, 4u64), (30, 17), (100, 3)] {
            assert_close(
                ln_binomial_real(n as f64, k as f64),
                ln_binomial(n, k),
                1e-12,
            );
        }
    }

    #[test]
    fn hypergeometric_sums_to_one() {
        let (n, k, m) = (50u64, 13, 20);
        let total: f64 = (0..=k.min(m)).map(|j| hypergeometric_pmf(n, k, m, j)).sum();
        assert_close(total, 1.0, 1e-12);
    }

    #[test]
    fn hypergeometric_mean_matches_sum() {
        let (n, k, m) = (1000u64, 80, 120);
        let mean: f64 = (0..=k.min(m))
            .map(|j| j as f64 * hypergeometric_pmf(n, k, m, j))
            .sum();
        assert_close(mean, hypergeometric_mean(n, k, m), 1e-10);
    }

    #[test]
    fn hypergeometric_support_edges() {
        // Drawing all items: every marked item is drawn.
        assert_close(hypergeometric_pmf(10, 4, 10, 4), 1.0, 1e-12);
        assert_eq!(hypergeometric_pmf(10, 4, 10, 3), 0.0);
        // Out of range parameters.
        assert_eq!(hypergeometric_pmf(10, 12, 5, 3), 0.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let (n, p) = (64u64, 1.0 / 64.0);
        let total: f64 = (0..=n).map(|j| binomial_pmf(n, p, j)).sum();
        assert_close(total, 1.0, 1e-12);
    }

    #[test]
    fn binomial_pmf_degenerate() {
        assert_eq!(binomial_pmf(10, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(10, 0.0, 1), 0.0);
        assert_eq!(binomial_pmf(10, 1.0, 10), 1.0);
    }

    #[test]
    fn binomial_tail_complements_head() {
        let (n, p, j) = (40u64, 0.3, 15u64);
        let head: f64 = (0..j).map(|x| binomial_pmf(n, p, x)).sum();
        assert_close(binomial_tail_ge(n, p, j), 1.0 - head, 1e-10);
        assert_eq!(binomial_tail_ge(n, p, 0), 1.0);
        assert_eq!(binomial_tail_ge(4, 0.5, 5), 0.0);
    }

    #[test]
    fn ln_factorial_transition_is_smooth() {
        // The table/gamma switchover at n = 20 must agree.
        assert_close(ln_factorial(20), ln_gamma(21.0), 1e-12);
        assert_close(ln_factorial(21), ln_gamma(22.0), 1e-12);
    }

    #[test]
    fn ln_factorial_table_is_bit_identical_to_direct() {
        // Inside the table, at its edge, and beyond it.
        for n in (0..64)
            .chain([1000, 4095, 4096, 4097, 5000, 100_000])
            .map(|n| n as u64)
        {
            assert_eq!(
                ln_factorial(n).to_bits(),
                ln_factorial_direct(n).to_bits(),
                "n = {n}"
            );
        }
    }
}
