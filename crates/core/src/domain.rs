//! DVF for hardware components beyond main memory.
//!
//! The paper limits its study to DRAM but notes that "the definition of
//! DVF is also applicable to other hardware components (e.g., cache
//! hierarchy, register file and network interface card)" (§I). This
//! module provides that generalization: a [`HardwareDomain`] carries a
//! component's failure rate, and a structure's per-domain access profile
//! supplies the exposure (`S_d` = bytes resident *in that component*,
//! `N_ha` = accesses *to that component*).
//!
//! For example, a structure that fits in cache has few main-memory
//! accesses (low DRAM DVF) but every reference hits SRAM (high cache
//! exposure) — selective protection must weigh both.

use crate::dvf::n_error;
use crate::fit::{EccScheme, FitRate};

/// A hardware component with its own failure characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareDomain {
    /// Component name (`"dram"`, `"llc"`, …).
    pub name: String,
    /// Failure rate of the component per Mbit.
    pub fit: FitRate,
}

impl HardwareDomain {
    /// Main-memory domain with the given ECC scheme (Table VII rates).
    pub fn main_memory(ecc: EccScheme) -> Self {
        Self {
            name: "dram".to_owned(),
            fit: FitRate::of(ecc),
        }
    }

    /// An SRAM cache domain. SRAM soft-error rates are typically around
    /// 10⁻³–10⁻¹ FIT/Mbit after interleaving and SECDED; the rate is a
    /// parameter because it varies by node and process.
    pub fn cache(fit_per_mbit: f64) -> Self {
        Self {
            name: "llc".to_owned(),
            fit: FitRate(fit_per_mbit),
        }
    }
}

/// A data structure's exposure within one domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainExposure {
    /// Bytes of the structure resident in the component (for DRAM, the
    /// full footprint `S_d`; for a cache, at most the structure's share
    /// of the capacity).
    pub resident_bytes: u64,
    /// Accesses to the component caused by the structure (for DRAM,
    /// `N_ha`; for a cache, every load/store that reaches it).
    pub accesses: f64,
}

/// Per-domain DVF: Eq. 1 with the domain's failure rate and the
/// structure's exposure in that domain.
pub fn dvf_in(domain: &HardwareDomain, time_s: f64, exposure: DomainExposure) -> f64 {
    n_error(domain.fit, time_s, exposure.resident_bytes) * exposure.accesses
}

/// Cross-domain DVF: the sum over every domain the structure occupies
/// (errors in any component corrupt the same logical data).
pub fn dvf_across(domains: &[(HardwareDomain, DomainExposure)], time_s: f64) -> f64 {
    domains.iter().map(|(d, e)| dvf_in(d, time_s, *e)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_domain_matches_plain_dvf() {
        let domain = HardwareDomain::main_memory(EccScheme::None);
        let exposure = DomainExposure {
            resident_bytes: 1 << 20,
            accesses: 1e4,
        };
        let via_domain = dvf_in(&domain, 10.0, exposure);
        let direct = crate::dvf::dvf_d(FitRate::of(EccScheme::None), 10.0, 1 << 20, 1e4);
        assert_eq!(via_domain, direct);
    }

    #[test]
    fn cache_resident_structure_shifts_vulnerability() {
        // A 32 KiB structure fitting a protected cache: DRAM sees only the
        // compulsory fills, the cache sees every reference.
        let dram = HardwareDomain::main_memory(EccScheme::None);
        let llc = HardwareDomain::cache(0.1);
        let t = 1.0;
        let dram_dvf = dvf_in(
            &dram,
            t,
            DomainExposure {
                resident_bytes: 32 << 10,
                accesses: 512.0, // fills only
            },
        );
        let llc_dvf = dvf_in(
            &llc,
            t,
            DomainExposure {
                resident_bytes: 32 << 10,
                accesses: 1e7, // every reference
            },
        );
        // Despite SRAM's far lower FIT, the access-count asymmetry keeps
        // the cache exposure non-negligible: both must be considered.
        assert!(llc_dvf > 0.0 && dram_dvf > 0.0);
        let combined = dvf_across(
            &[
                (
                    dram.clone(),
                    DomainExposure {
                        resident_bytes: 32 << 10,
                        accesses: 512.0,
                    },
                ),
                (
                    llc.clone(),
                    DomainExposure {
                        resident_bytes: 32 << 10,
                        accesses: 1e7,
                    },
                ),
            ],
            t,
        );
        assert!((combined - (dram_dvf + llc_dvf)).abs() < 1e-18);
    }

    #[test]
    fn stronger_component_protection_lowers_domain_dvf() {
        let weak = HardwareDomain::cache(1.0);
        let strong = HardwareDomain::cache(0.001);
        let e = DomainExposure {
            resident_bytes: 4096,
            accesses: 1e6,
        };
        assert!(dvf_in(&strong, 1.0, e) < dvf_in(&weak, 1.0, e));
    }
}
