//! The Data Vulnerability Factor (paper §III-A, Eqs. 1–2).
//!
//! ```text
//! DVF_d = N_error · N_ha = FIT · T · S_d · N_ha        (Eq. 1)
//! DVF_a = Σ_i DVF_d_i                                  (Eq. 2)
//! ```
//!
//! Units (paper Table I): `FIT` is failures per 10⁹ hours per Mbit, `T` the
//! execution time, `S_d` the data-structure size. We take `T` in seconds
//! and `S_d` in bytes and normalize inside, so `N_error` is the expected
//! number of raw memory errors striking the structure during the run.

use crate::fit::FitRate;

/// Seconds per hour, for FIT normalization.
const SECONDS_PER_HOUR: f64 = 3600.0;
/// Bits per megabit.
const BITS_PER_MBIT: f64 = 1e6;

/// `N_error`: expected errors striking `size_bytes` of memory over
/// `time_s` seconds at the given failure rate.
pub fn n_error(fit: FitRate, time_s: f64, size_bytes: u64) -> f64 {
    let mbit = size_bytes as f64 * 8.0 / BITS_PER_MBIT;
    let hours = time_s / SECONDS_PER_HOUR;
    fit.expected_failures(mbit, hours)
}

/// `DVF_d` for one data structure (Eq. 1).
pub fn dvf_d(fit: FitRate, time_s: f64, size_bytes: u64, n_ha: f64) -> f64 {
    n_error(fit, time_s, size_bytes) * n_ha
}

/// One data structure's resilience profile: its footprint and the
/// main-memory access count the CGPMAC models estimated for it.
#[derive(Debug, Clone, PartialEq)]
pub struct DataStructureProfile {
    /// Name (e.g. `"A"`, `"T"`, `"Grid"`).
    pub name: String,
    /// Footprint `S_d` in bytes.
    pub size_bytes: u64,
    /// Estimated main-memory accesses `N_ha`.
    pub n_ha: f64,
}

impl DataStructureProfile {
    /// Build a profile.
    pub fn new(name: impl Into<String>, size_bytes: u64, n_ha: f64) -> Self {
        Self {
            name: name.into(),
            size_bytes,
            n_ha,
        }
    }

    /// `DVF_d` under the given failure rate and execution time.
    pub fn dvf(&self, fit: FitRate, time_s: f64) -> f64 {
        dvf_d(fit, time_s, self.size_bytes, self.n_ha)
    }
}

/// An application's DVF report: per-structure DVFs and their sum (Eq. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct DvfReport {
    /// Application name.
    pub app: String,
    /// Failure rate used.
    pub fit: FitRate,
    /// Execution time `T` in seconds.
    pub time_s: f64,
    /// Per-structure `(profile, DVF_d)` in declaration order.
    pub structures: Vec<(DataStructureProfile, f64)>,
}

impl DvfReport {
    /// Compute a report for an application's major data structures.
    pub fn compute(
        app: impl Into<String>,
        fit: FitRate,
        time_s: f64,
        profiles: Vec<DataStructureProfile>,
    ) -> Self {
        let structures = profiles
            .into_iter()
            .map(|p| {
                let v = p.dvf(fit, time_s);
                (p, v)
            })
            .collect();
        Self {
            app: app.into(),
            fit,
            time_s,
            structures,
        }
    }

    /// `DVF_a` (Eq. 2): sum over the major data structures.
    pub fn dvf_app(&self) -> f64 {
        self.structures.iter().map(|(_, v)| v).sum()
    }

    /// DVF of one structure by name.
    pub fn dvf_of(&self, name: &str) -> Option<f64> {
        self.structures
            .iter()
            .find(|(p, _)| p.name == name)
            .map(|(_, v)| *v)
    }

    /// The most vulnerable structure (largest DVF), if any.
    pub fn most_vulnerable(&self) -> Option<(&DataStructureProfile, f64)> {
        self.structures
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(p, v)| (p, *v))
    }

    /// Render the report as an aligned text table (one row per structure
    /// plus the application row, mirroring the paper's Fig. 5 bar groups).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>14} {:>16} {:>14}",
            "data", "size (bytes)", "N_ha", "DVF"
        );
        for (p, v) in &self.structures {
            let _ = writeln!(
                out,
                "{:<12} {:>14} {:>16.3e} {:>14.6e}",
                p.name, p.size_bytes, p.n_ha, v
            );
        }
        let _ = writeln!(
            out,
            "{:<12} {:>14} {:>16} {:>14.6e}",
            self.app,
            "",
            "",
            self.dvf_app()
        );
        out
    }
}

/// One execution phase's exposure of a data structure: how long the phase
/// runs and how often the structure's memory is accessed during it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseExposure {
    /// Phase duration in seconds.
    pub duration_s: f64,
    /// Main-memory accesses to the structure during the phase.
    pub n_ha: f64,
}

/// Time-resolved DVF (refinement): weight each phase's accesses by the
/// errors accumulated *up to that phase*.
///
/// Classic DVF (Eq. 1) multiplies total errors by total accesses, which
/// implicitly assumes every access is exposed to every error. Physically,
/// an access can only consume errors that struck *before* it; accesses
/// early in the run are safer. This refinement — an instance of the
/// weighting the paper's §III-A anticipates — computes
///
/// ```text
/// DVF_t = Σ_phases  N_error(FIT, t_mid(phase), S_d) · N_ha(phase)
/// ```
///
/// with `t_mid` the phase's midpoint. For a single uniform phase it
/// equals `DVF/2` (every access sees on average half the run's errors),
/// so compare values only against other time-resolved values.
///
/// Motivating case: the validation harness (`dvf-repro --bin
/// validate_dvf`) shows classic DVF mis-ranks MC's `G`/`E` because `G`'s
/// accesses are front-loaded; this refinement restores the physical
/// order.
pub fn timed_dvf_d(fit: FitRate, size_bytes: u64, phases: &[PhaseExposure]) -> f64 {
    let mut elapsed = 0.0;
    let mut acc = 0.0;
    for p in phases {
        let t_mid = elapsed + p.duration_s / 2.0;
        acc += n_error(fit, t_mid, size_bytes) * p.n_ha;
        elapsed += p.duration_s;
    }
    acc
}

/// The weighted refinement the paper anticipates (§III-A): "a further
/// refined definition of DVF could assign a weighting factor to each term".
///
/// `DVF_d = N_error^α · N_ha^β`; `α = β = 1` recovers Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedDvf {
    /// Exponent on `N_error`.
    pub alpha: f64,
    /// Exponent on `N_ha`.
    pub beta: f64,
}

impl Default for WeightedDvf {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 1.0,
        }
    }
}

impl WeightedDvf {
    /// Weighted DVF for one structure.
    pub fn dvf_d(&self, fit: FitRate, time_s: f64, size_bytes: u64, n_ha: f64) -> f64 {
        n_error(fit, time_s, size_bytes).powf(self.alpha) * n_ha.powf(self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::EccScheme;

    fn fit() -> FitRate {
        FitRate::of(EccScheme::None)
    }

    #[test]
    fn n_error_unit_conversion() {
        // 1 MiB for 3600 s at 5000 FIT/Mbit:
        // mbit = 2^20 * 8 / 1e6 = 8.388608; hours = 1.
        // N_error = 5000 * 1 * 8.388608 / 1e9.
        let expected = 5000.0 * 8.388_608 / 1e9;
        assert!((n_error(fit(), 3600.0, 1 << 20) - expected).abs() < 1e-15);
    }

    #[test]
    fn dvf_is_monotone_in_every_factor() {
        let base = dvf_d(fit(), 10.0, 1000, 500.0);
        assert!(dvf_d(fit(), 20.0, 1000, 500.0) > base);
        assert!(dvf_d(fit(), 10.0, 2000, 500.0) > base);
        assert!(dvf_d(fit(), 10.0, 1000, 900.0) > base);
        assert!(dvf_d(FitRate(9000.0), 10.0, 1000, 500.0) > base);
    }

    #[test]
    fn dvf_a_is_sum() {
        let report = DvfReport::compute(
            "vm",
            fit(),
            1.0,
            vec![
                DataStructureProfile::new("A", 1600, 62.5),
                DataStructureProfile::new("B", 1600, 50.0),
                DataStructureProfile::new("C", 1600, 50.0),
            ],
        );
        let total: f64 = report.structures.iter().map(|(_, v)| v).sum();
        assert!((report.dvf_app() - total).abs() < 1e-18);
        assert_eq!(report.structures.len(), 3);
    }

    #[test]
    fn most_vulnerable_picks_max() {
        let report = DvfReport::compute(
            "vm",
            fit(),
            1.0,
            vec![
                DataStructureProfile::new("A", 3200, 63.0),
                DataStructureProfile::new("B", 1600, 50.0),
            ],
        );
        assert_eq!(report.most_vulnerable().unwrap().0.name, "A");
        assert!(report.dvf_of("A").unwrap() > report.dvf_of("B").unwrap());
        assert!(report.dvf_of("Z").is_none());
    }

    #[test]
    fn timed_single_uniform_phase_is_half_classic() {
        let phases = [PhaseExposure {
            duration_s: 10.0,
            n_ha: 500.0,
        }];
        let timed = timed_dvf_d(fit(), 1 << 20, &phases);
        let classic = dvf_d(fit(), 10.0, 1 << 20, 500.0);
        assert!((timed - classic / 2.0).abs() < 1e-15 * classic);
    }

    #[test]
    fn timed_late_accesses_are_more_vulnerable() {
        // Same totals, but one structure's accesses come in the first
        // phase and the other's in the last: the late one is more exposed.
        let early = [
            PhaseExposure {
                duration_s: 1.0,
                n_ha: 100.0,
            },
            PhaseExposure {
                duration_s: 9.0,
                n_ha: 0.0,
            },
        ];
        let late = [
            PhaseExposure {
                duration_s: 1.0,
                n_ha: 0.0,
            },
            PhaseExposure {
                duration_s: 9.0,
                n_ha: 100.0,
            },
        ];
        let e = timed_dvf_d(fit(), 4096, &early);
        let l = timed_dvf_d(fit(), 4096, &late);
        assert!(l > 5.0 * e, "late {l} !>> early {e}");
        // Classic DVF cannot tell them apart.
        assert_eq!(
            dvf_d(fit(), 10.0, 4096, 100.0),
            dvf_d(fit(), 10.0, 4096, 100.0)
        );
    }

    #[test]
    fn timed_empty_is_zero() {
        assert_eq!(timed_dvf_d(fit(), 4096, &[]), 0.0);
    }

    #[test]
    fn weighted_default_matches_eq1() {
        let w = WeightedDvf::default();
        let a = w.dvf_d(fit(), 7.0, 4096, 123.0);
        let b = dvf_d(fit(), 7.0, 4096, 123.0);
        assert!((a - b).abs() < 1e-15 * b);
    }

    #[test]
    fn weighted_exponents_change_balance() {
        let w = WeightedDvf {
            alpha: 1.0,
            beta: 0.5,
        };
        // With beta < 1, quadrupling N_ha only doubles DVF.
        let base = w.dvf_d(fit(), 1.0, 1 << 20, 100.0);
        let quad = w.dvf_d(fit(), 1.0, 1 << 20, 400.0);
        assert!((quad / base - 2.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_rows() {
        let report = DvfReport::compute(
            "vm",
            fit(),
            1.0,
            vec![DataStructureProfile::new("A", 1600, 62.5)],
        );
        let table = report.render();
        assert!(table.contains("A"));
        assert!(table.contains("vm"));
        assert!(table.contains("DVF"));
    }
}
