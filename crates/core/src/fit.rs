//! Failure rates and ECC protection schemes (paper Table VII).
//!
//! FIT = failures in time: failures per 10⁹ device-hours, normalized per
//! Mbit of main memory. The paper's use case B plugs these rates into DVF
//! to quantify how much protection an ECC scheme buys, against the
//! performance it costs.

use std::fmt;

/// Hardware error-protection scheme for main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EccScheme {
    /// Unprotected DRAM.
    #[default]
    None,
    /// Single-error-correct, double-error-detect Hamming-class code.
    Secded,
    /// Chipkill-correct: tolerates a whole failed DRAM device.
    ChipkillCorrect,
}

impl EccScheme {
    /// Residual error rate in FIT/Mbit with the scheme in place
    /// (paper Table VII; sources: Li et al. SC'11, Li et al. ATC'10,
    /// Slayman IRW'06, Udipi et al. ISCA'12, Hsiao 1970, Dell 1997).
    pub fn fit_per_mbit(self) -> f64 {
        match self {
            EccScheme::None => 5000.0,
            EccScheme::Secded => 1300.0,
            EccScheme::ChipkillCorrect => 0.02,
        }
    }

    /// All schemes, in Table VII order.
    pub const ALL: [EccScheme; 3] = [
        EccScheme::None,
        EccScheme::ChipkillCorrect,
        EccScheme::Secded,
    ];

    /// Table VII row label.
    pub fn label(self) -> &'static str {
        match self {
            EccScheme::None => "No ECC",
            EccScheme::Secded => "SECDED",
            EccScheme::ChipkillCorrect => "Chipkill correct",
        }
    }
}

impl fmt::Display for EccScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for EccScheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "no-ecc" | "noecc" => Ok(EccScheme::None),
            "secded" => Ok(EccScheme::Secded),
            "chipkill" | "chipkill-correct" => Ok(EccScheme::ChipkillCorrect),
            other => Err(format!("unknown ECC scheme {other:?}")),
        }
    }
}

/// A failure rate, wrapped for unit safety.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct FitRate(pub f64);

impl FitRate {
    /// Rate of an ECC scheme.
    pub fn of(scheme: EccScheme) -> Self {
        Self(scheme.fit_per_mbit())
    }

    /// Expected failures for a memory of `size_mbit` Mbits over
    /// `hours` hours: `FIT · hours · Mbit / 10⁹`.
    pub fn expected_failures(self, size_mbit: f64, hours: f64) -> f64 {
        self.0 * hours * size_mbit / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_values() {
        assert_eq!(EccScheme::None.fit_per_mbit(), 5000.0);
        assert_eq!(EccScheme::Secded.fit_per_mbit(), 1300.0);
        assert_eq!(EccScheme::ChipkillCorrect.fit_per_mbit(), 0.02);
    }

    #[test]
    fn chipkill_is_strongest() {
        assert!(
            EccScheme::ChipkillCorrect.fit_per_mbit() < EccScheme::Secded.fit_per_mbit()
                && EccScheme::Secded.fit_per_mbit() < EccScheme::None.fit_per_mbit()
        );
    }

    #[test]
    fn expected_failures_units() {
        // 5000 FIT/Mbit * 1e9 hours * 1 Mbit / 1e9 = 5000 failures.
        let f = FitRate::of(EccScheme::None).expected_failures(1.0, 1e9);
        assert!((f - 5000.0).abs() < 1e-9);
        // Scales linearly in both axes.
        let f2 = FitRate::of(EccScheme::None).expected_failures(2.0, 0.5e9);
        assert!((f2 - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn parse_labels() {
        assert_eq!("secded".parse::<EccScheme>().unwrap(), EccScheme::Secded);
        assert_eq!(
            "chipkill".parse::<EccScheme>().unwrap(),
            EccScheme::ChipkillCorrect
        );
        assert_eq!("none".parse::<EccScheme>().unwrap(), EccScheme::None);
        assert!("rs".parse::<EccScheme>().is_err());
    }
}
