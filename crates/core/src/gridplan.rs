//! Deterministic partitioning of parameter-sweep grids into shard-affine
//! chunks — the planning half of the distributed sweep coordinator.
//!
//! A sweep grid is the cross product of one or more named dimensions
//! ([`GridSpec`]); every point has a stable index in row-major order
//! (last dimension fastest). [`ChunkPlan::plan`] splits those indices
//! into chunks and assigns each chunk to a shard:
//!
//! * [`Assignment::MemoAffine`] routes every *point* by a stable 64-bit
//!   fingerprint of the memo-relevant work it would evaluate (see
//!   [`crate::workflow::memo_fingerprint`]): points that share pattern
//!   evaluations land on the same shard, so each shard's striped memo
//!   cache stays hot and the shards' working sets stay disjoint. This is
//!   the distributed sweep's perf win — cache affinity, not just cores.
//! * [`Assignment::RoundRobin`] deals contiguous index runs to shards in
//!   turn — the baseline the memo-affinity benchmarks compare against.
//!
//! Both assignments are pure functions of `(grid, shards, chunk_points,
//! fingerprints)`: replanning the same sweep reproduces the same
//! chunk→shard map, which is what lets a rerun replay completed chunks
//! against still-warm shard caches. Chunk results merge back by grid
//! index, so the merged row order — and therefore the rendered output —
//! is byte-identical to a local sweep regardless of shard count, chunk
//! size, or completion order.
//!
//! The hashes here ([`StableHasher`], [`mix64`]) are fixed algorithms
//! (FNV-1a and the SplitMix64 finalizer), *not* [`std::hash::RandomState`]:
//! shard routing must agree across processes and runs.

/// Incremental FNV-1a over 64-bit words: a fixed, portable hash for
/// shard routing (deliberately not `RandomState`, which is seeded per
/// process and would reshuffle chunk→shard maps between runs).
#[derive(Debug, Clone, Copy)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Fold one 64-bit word (little-endian byte order) into the state.
    pub fn write(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.state ^= byte as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// SplitMix64 finalizer: full-avalanche mixing so `mix64(h) % shards`
/// uses all input bits (FNV-1a alone has weak low-bit diffusion).
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One hash of a word slice (FNV-1a fold, see [`StableHasher`]).
pub fn hash_words(words: &[u64]) -> u64 {
    let mut h = StableHasher::new();
    for &w in words {
        h.write(w);
    }
    h.finish()
}

/// A sweep grid: the cross product of named dimensions, each a list of
/// values in sweep order. Point indices are row-major with the *last*
/// dimension fastest, matching nested `for` loops over the dimensions in
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    dims: Vec<(String, Vec<f64>)>,
}

impl GridSpec {
    /// Build a grid from `(name, values)` dimensions. Rejects an empty
    /// dimension list, a dimension with no values, a duplicated name,
    /// and cross products that overflow `usize`.
    pub fn new(dims: Vec<(String, Vec<f64>)>) -> Result<Self, String> {
        if dims.is_empty() {
            return Err("a sweep grid needs at least one dimension".to_owned());
        }
        let mut total: usize = 1;
        for (i, (name, values)) in dims.iter().enumerate() {
            if values.is_empty() {
                return Err(format!("sweep dimension `{name}` has no values"));
            }
            if dims[..i].iter().any(|(n, _)| n == name) {
                return Err(format!("sweep dimension `{name}` given twice"));
            }
            total = total
                .checked_mul(values.len())
                .ok_or_else(|| "sweep grid size overflows usize".to_owned())?;
        }
        Ok(Self { dims })
    }

    /// Number of grid points (product of dimension sizes).
    pub fn len(&self) -> usize {
        self.dims.iter().map(|(_, v)| v.len()).product()
    }

    /// Whether the grid has no points (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimension names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.dims.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The dimensions themselves, in declaration order.
    pub fn dims(&self) -> &[(String, Vec<f64>)] {
        &self.dims
    }

    /// Coordinates of point `idx` (row-major, last dimension fastest),
    /// one value per dimension in declaration order.
    pub fn point(&self, idx: usize) -> Vec<f64> {
        debug_assert!(idx < self.len());
        let mut coords = vec![0.0; self.dims.len()];
        let mut rest = idx;
        for (slot, (_, values)) in self.dims.iter().enumerate().rev() {
            coords[slot] = values[rest % values.len()];
            rest /= values.len();
        }
        coords
    }
}

/// How chunks map to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Route each point by its stable memo fingerprint: points sharing
    /// pattern evaluations co-locate, keeping each shard's memo cache
    /// hot and disjoint.
    MemoAffine,
    /// Deal contiguous index runs to shards in turn — the affinity-blind
    /// baseline.
    RoundRobin,
}

impl Assignment {
    /// Parse a CLI spelling (`affine` / `round-robin`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "affine" | "memo-affine" => Some(Self::MemoAffine),
            "round-robin" | "rr" => Some(Self::RoundRobin),
            _ => None,
        }
    }

    /// Canonical spelling (the one `parse` accepts first).
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::MemoAffine => "affine",
            Self::RoundRobin => "round-robin",
        }
    }
}

/// One unit of distributable work: a set of grid-point indices bound for
/// one shard. Indices are ascending, so a chunk's rows merge back into
/// the grid by simple index addressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Chunk id, dense `0..plan.chunks.len()` in planning order.
    pub id: usize,
    /// Home shard (`0..plan.shards`); failover may execute the chunk
    /// elsewhere, but the *plan* is what reruns reproduce.
    pub shard: usize,
    /// Ascending grid-point indices.
    pub indices: Vec<usize>,
}

/// A complete, deterministic partition of a grid into shard-assigned
/// chunks (the coordinator's manifest).
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkPlan {
    /// Number of shards planned for.
    pub shards: usize,
    /// Requested chunk size ceiling (points per chunk).
    pub chunk_points: usize,
    /// Assignment strategy used.
    pub assignment: Assignment,
    /// Total grid points covered (sum of chunk sizes).
    pub total_points: usize,
    /// The chunks, id order.
    pub chunks: Vec<Chunk>,
}

impl ChunkPlan {
    /// Partition `grid` into chunks of at most `chunk_points` points
    /// across `shards` shards.
    ///
    /// `fingerprint(idx)` supplies the stable memo fingerprint of grid
    /// point `idx`; it is only called for [`Assignment::MemoAffine`].
    /// The plan is a pure function of its inputs: same grid + same
    /// fingerprints → same chunk ids, contents, and shard homes.
    pub fn plan(
        grid: &GridSpec,
        shards: usize,
        chunk_points: usize,
        assignment: Assignment,
        mut fingerprint: impl FnMut(usize) -> u64,
    ) -> Self {
        let shards = shards.max(1);
        let chunk_points = chunk_points.max(1);
        let n = grid.len();
        let mut chunks = Vec::new();
        match assignment {
            Assignment::MemoAffine => {
                let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); shards];
                for idx in 0..n {
                    let shard = (mix64(fingerprint(idx)) % shards as u64) as usize;
                    per_shard[shard].push(idx);
                }
                for (shard, indices) in per_shard.into_iter().enumerate() {
                    for run in indices.chunks(chunk_points) {
                        chunks.push(Chunk {
                            id: chunks.len(),
                            shard,
                            indices: run.to_vec(),
                        });
                    }
                }
            }
            Assignment::RoundRobin => {
                let all: Vec<usize> = (0..n).collect();
                for run in all.chunks(chunk_points) {
                    chunks.push(Chunk {
                        id: chunks.len(),
                        shard: chunks.len() % shards,
                        indices: run.to_vec(),
                    });
                }
            }
        }
        Self {
            shards,
            chunk_points,
            assignment,
            total_points: n,
            chunks,
        }
    }

    /// The chunks homed on `shard`, in id order.
    pub fn chunks_of_shard(&self, shard: usize) -> impl Iterator<Item = &Chunk> {
        self.chunks.iter().filter(move |c| c.shard == shard)
    }

    /// Render the plan *and* its grid as a self-contained resumable
    /// manifest (`dvf-sweep-manifest/1`): full chunk index lists plus the
    /// grid dimensions, so a later invocation can reload the exact
    /// partition with [`ChunkPlan::from_manifest_json`] instead of
    /// replanning — the `dvf sweep --manifest` resume contract.
    pub fn manifest_json_full(&self, grid: &GridSpec) -> String {
        let mut w = dvf_obs::JsonWriter::new();
        w.begin_object();
        w.key("schema").string("dvf-sweep-manifest/1");
        w.key("assignment").string(self.assignment.as_str());
        w.key("shards").u64(self.shards as u64);
        w.key("chunk_points").u64(self.chunk_points as u64);
        w.key("total_points").u64(self.total_points as u64);
        w.key("grid").begin_array();
        for (name, values) in grid.dims() {
            w.begin_object();
            w.key("name").string(name);
            w.key("values").begin_array();
            for &v in values {
                // Shortest-round-trip float text: values reload bit-exactly,
                // so a resumed grid compares equal to a freshly parsed one.
                w.f64(v);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.key("chunks").begin_array();
        for chunk in &self.chunks {
            w.begin_object();
            w.key("id").u64(chunk.id as u64);
            w.key("shard").u64(chunk.shard as u64);
            w.key("indices").begin_array();
            for &idx in &chunk.indices {
                w.u64(idx as u64);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Reload a [`manifest_json_full`](Self::manifest_json_full) manifest.
    /// Validates the schema, the chunk/grid shape, and index bounds; the
    /// reconstructed plan compares equal to the one that was saved.
    pub fn from_manifest_json(text: &str) -> Result<(Self, GridSpec), String> {
        use dvf_obs::jsonval::Json;
        let doc = Json::parse(text).map_err(|e| format!("manifest does not parse: {e}"))?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != "dvf-sweep-manifest/1" {
            return Err(format!(
                "unsupported manifest schema `{schema}` (expected dvf-sweep-manifest/1)"
            ));
        }
        let assignment = doc
            .get("assignment")
            .and_then(Json::as_str)
            .and_then(Assignment::parse)
            .ok_or("manifest has no valid `assignment`")?;
        let field = |key: &str| -> Result<usize, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("manifest has no numeric `{key}`"))
        };
        let shards = field("shards")?;
        let chunk_points = field("chunk_points")?;
        let total_points = field("total_points")?;

        let mut dims = Vec::new();
        for dim in doc
            .get("grid")
            .and_then(Json::as_arr)
            .ok_or("manifest has no `grid` array")?
        {
            let name = dim
                .get("name")
                .and_then(Json::as_str)
                .ok_or("grid dimension has no `name`")?;
            let values = dim
                .get("values")
                .and_then(Json::as_arr)
                .ok_or("grid dimension has no `values`")?
                .iter()
                .map(|v| v.as_f64().ok_or("non-numeric grid value"))
                .collect::<Result<Vec<f64>, _>>()?;
            dims.push((name.to_owned(), values));
        }
        let grid = GridSpec::new(dims)?;
        if grid.len() != total_points {
            return Err(format!(
                "manifest grid has {} point(s) but claims total_points={total_points}",
                grid.len()
            ));
        }

        let mut chunks = Vec::new();
        let mut covered = 0usize;
        for (pos, c) in doc
            .get("chunks")
            .and_then(Json::as_arr)
            .ok_or("manifest has no `chunks` array")?
            .iter()
            .enumerate()
        {
            let id = c
                .get("id")
                .and_then(Json::as_u64)
                .ok_or("chunk has no `id`")? as usize;
            if id != pos {
                return Err(format!(
                    "chunk ids must be dense (found {id} at position {pos})"
                ));
            }
            let shard = c
                .get("shard")
                .and_then(Json::as_u64)
                .ok_or("chunk has no `shard`")? as usize;
            if shard >= shards.max(1) {
                return Err(format!("chunk {id} is homed on out-of-range shard {shard}"));
            }
            let indices = c
                .get("indices")
                .and_then(Json::as_arr)
                .ok_or("chunk has no `indices`")?
                .iter()
                .map(|v| v.as_u64().map(|i| i as usize))
                .collect::<Option<Vec<usize>>>()
                .ok_or("non-numeric chunk index")?;
            if indices.is_empty() {
                return Err(format!("chunk {id} is empty"));
            }
            if indices.iter().any(|&i| i >= total_points) {
                return Err(format!("chunk {id} indexes past the grid"));
            }
            covered += indices.len();
            chunks.push(Chunk { id, shard, indices });
        }
        if covered != total_points {
            return Err(format!(
                "manifest chunks cover {covered} point(s) of {total_points}"
            ));
        }
        Ok((
            Self {
                shards,
                chunk_points,
                assignment,
                total_points,
                chunks,
            },
            grid,
        ))
    }

    /// Render the plan as a compact JSON manifest (shard homes and chunk
    /// sizes — enough to audit the partition without the point data).
    pub fn manifest_json(&self) -> String {
        let mut w = dvf_obs::JsonWriter::new();
        w.begin_object();
        w.key("schema").string("dvf-sweepplan/1");
        w.key("assignment").string(self.assignment.as_str());
        w.key("shards").u64(self.shards as u64);
        w.key("chunk_points").u64(self.chunk_points as u64);
        w.key("total_points").u64(self.total_points as u64);
        w.key("chunks").begin_array();
        for chunk in &self.chunks {
            w.begin_object();
            w.key("id").u64(chunk.id as u64);
            w.key("shard").u64(chunk.shard as u64);
            w.key("points").u64(chunk.indices.len() as u64);
            w.key("first").u64(chunk.indices[0] as u64);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2() -> GridSpec {
        GridSpec::new(vec![
            ("fit".to_owned(), vec![10.0, 20.0, 30.0]),
            ("n".to_owned(), vec![1.0, 2.0, 3.0, 4.0]),
        ])
        .unwrap()
    }

    #[test]
    fn grid_indexing_is_row_major_last_dim_fastest() {
        let g = grid2();
        assert_eq!(g.len(), 12);
        assert_eq!(g.point(0), vec![10.0, 1.0]);
        assert_eq!(g.point(1), vec![10.0, 2.0]);
        assert_eq!(g.point(4), vec![20.0, 1.0]);
        assert_eq!(g.point(11), vec![30.0, 4.0]);
        assert_eq!(g.names(), vec!["fit", "n"]);
    }

    #[test]
    fn grid_rejects_degenerate_shapes() {
        assert!(GridSpec::new(vec![]).is_err());
        assert!(GridSpec::new(vec![("a".to_owned(), vec![])]).is_err());
        assert!(GridSpec::new(vec![
            ("a".to_owned(), vec![1.0]),
            ("a".to_owned(), vec![2.0]),
        ])
        .is_err());
    }

    #[test]
    fn round_robin_covers_in_contiguous_runs() {
        let g = grid2();
        let plan = ChunkPlan::plan(&g, 3, 5, Assignment::RoundRobin, |_| 0);
        let sizes: Vec<usize> = plan.chunks.iter().map(|c| c.indices.len()).collect();
        assert_eq!(sizes, vec![5, 5, 2]);
        assert_eq!(plan.chunks[0].indices, (0..5).collect::<Vec<_>>());
        assert_eq!(plan.chunks[2].shard, 2);
    }

    #[test]
    fn affine_groups_equal_fingerprints() {
        let g = grid2();
        // Fingerprint = point index / 4 → three groups of four.
        let plan = ChunkPlan::plan(&g, 2, 64, Assignment::MemoAffine, |idx| (idx / 4) as u64);
        for chunk in &plan.chunks {
            assert!(
                chunk
                    .indices
                    .iter()
                    .all(|i| (mix64((i / 4) as u64) % 2) as usize == chunk.shard),
                "chunk mixes shards: {chunk:?}"
            );
        }
        // Equal fingerprints land on equal shards.
        let shard_of = |idx: usize| {
            plan.chunks
                .iter()
                .find(|c| c.indices.contains(&idx))
                .unwrap()
                .shard
        };
        assert_eq!(shard_of(0), shard_of(3));
        assert_eq!(shard_of(4), shard_of(7));
    }

    #[test]
    fn stable_hash_is_fixed_across_calls_and_orders_matter() {
        assert_eq!(hash_words(&[1, 2, 3]), hash_words(&[1, 2, 3]));
        assert_ne!(hash_words(&[1, 2, 3]), hash_words(&[3, 2, 1]));
        // Pinned value: the routing hash is part of the resume contract;
        // silently changing it would cold-start every warm rerun.
        assert_eq!(hash_words(&[]), FNV_OFFSET);
    }

    #[test]
    fn full_manifest_round_trips_plan_and_grid() {
        let g = GridSpec::new(vec![
            ("fit".to_owned(), vec![1000.0, 5000.0]),
            // An awkward double: shortest-round-trip text must reload
            // bit-exactly or resumed grids would spuriously mismatch.
            ("n".to_owned(), vec![0.1, 0.30000000000000004, 600.0]),
        ])
        .unwrap();
        let plan = ChunkPlan::plan(&g, 2, 2, Assignment::MemoAffine, |i| (i % 3) as u64);
        let json = plan.manifest_json_full(&g);
        let (reloaded, regrid) = ChunkPlan::from_manifest_json(&json).unwrap();
        assert_eq!(reloaded, plan);
        assert_eq!(regrid, g);
        // And the reload is itself re-serializable to the same bytes.
        assert_eq!(reloaded.manifest_json_full(&regrid), json);
    }

    #[test]
    fn manifest_load_rejects_corrupt_shapes() {
        let g = grid2();
        let plan = ChunkPlan::plan(&g, 2, 5, Assignment::RoundRobin, |_| 0);
        let json = plan.manifest_json_full(&g);
        assert!(ChunkPlan::from_manifest_json("not json").is_err());
        assert!(ChunkPlan::from_manifest_json("{\"schema\":\"nope/1\"}")
            .unwrap_err()
            .contains("schema"));
        // A manifest whose chunks do not cover the grid is rejected, not
        // silently resumed with holes.
        let truncated = json.replacen("{\"id\":0,\"shard\":0,\"indices\":[0,1,2,3,4]},", "", 1);
        assert_ne!(truncated, json, "test fixture must actually drop a chunk");
        assert!(ChunkPlan::from_manifest_json(&truncated).is_err());
    }

    #[test]
    fn manifest_renders_valid_shape() {
        let g = grid2();
        let plan = ChunkPlan::plan(&g, 2, 5, Assignment::RoundRobin, |_| 0);
        let json = plan.manifest_json();
        assert!(json.contains("\"dvf-sweepplan/1\""), "{json}");
        assert!(json.contains("\"total_points\":12"), "{json}");
    }
}
