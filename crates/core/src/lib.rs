//! # dvf-core
//!
//! Analytical modeling of application resilience with the **Data
//! Vulnerability Factor** — a from-scratch reproduction of
//! *Yu, Li, Mittal, Vetter: "Quantitatively Modeling Application Resilience
//! with the Data Vulnerability Factor", SC 2014*.
//!
//! DVF quantifies how vulnerable an individual *data structure* is to main
//! memory errors, combining hardware effects (the failure rate) with
//! application effects (execution time, footprint, and — crucially — the
//! number of main-memory accesses the structure causes after cache
//! filtering):
//!
//! ```text
//! DVF_d = FIT · T · S_d · N_ha
//! DVF_a = Σ DVF_d
//! ```
//!
//! The crate provides:
//!
//! * [`patterns`] — the four CGPMAC access-pattern models (streaming,
//!   random, template-based, data reuse) that estimate `N_ha` analytically
//!   from the last-level-cache geometry, in microseconds instead of the
//!   hours a trace-driven simulation takes;
//! * [`dvf`] — the metric itself, per structure and per application;
//! * [`fit`] — failure rates with and without ECC (paper Table VII);
//! * [`timemodel`] — an Aspen-style roofline time model supplying `T`;
//! * [`sweep`] — trade-off sweeps (ECC protection vs. performance,
//!   parallel parameter grids);
//! * [`workflow`] — the Fig. 3 pipeline: evaluate a resilience-extended
//!   Aspen program (parsed by `dvf-aspen`) into a [`dvf::DvfReport`];
//! * [`memo`] — the process-wide pattern-evaluation cache that makes
//!   repeated sweep-grid evaluations cheap;
//! * [`comb`] — the log-space combinatorics underpinning the probability
//!   models.
//!
//! ## Quick example: DVF of a streamed vector
//!
//! ```
//! use dvf_core::patterns::{CacheView, StreamingSpec};
//! use dvf_core::dvf::{DataStructureProfile, DvfReport};
//! use dvf_core::fit::{EccScheme, FitRate};
//! use dvf_cachesim::config::table4;
//!
//! let cache = CacheView::exclusive(table4::PROFILE_8MB);
//! let spec = StreamingSpec { element_bytes: 8, num_elements: 100_000, stride_elements: 1 };
//! let n_ha = spec.mem_accesses(&cache).unwrap();
//!
//! let report = DvfReport::compute(
//!     "vm",
//!     FitRate::of(EccScheme::None),
//!     0.5, // seconds
//!     vec![DataStructureProfile::new("A", 100_000 * 8, n_ha)],
//! );
//! assert!(report.dvf_app() > 0.0);
//! ```

pub mod comb;
pub mod domain;
pub mod dvf;
pub mod fit;
pub mod gridplan;
pub mod memo;
pub mod patterns;
pub mod predict;
pub mod protect;
pub mod sweep;
pub mod timemodel;
pub mod workflow;

pub use dvf::{dvf_d, n_error, DataStructureProfile, DvfReport, WeightedDvf};
pub use fit::{EccScheme, FitRate};
pub use patterns::{
    CacheView, InterferenceScenario, ModelError, RandomSpec, ReuseSpec, StreamingSpec, TemplateSpec,
};
pub use timemodel::{MachineModel, ResourceDemand};
pub use workflow::{
    account_hierarchy, evaluate_hierarchy, HierarchyAccounting, HierarchyDvf, WorkflowError,
};
