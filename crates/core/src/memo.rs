//! Memoized CGPMAC pattern-model evaluation.
//!
//! Parameter sweeps (`dvf sweep`, the figure harnesses, the `elasticities`
//! helper) evaluate the same log-gamma-heavy closed forms (Eqs. 3–15) at
//! many grid points, and most grid points share most of their pattern
//! evaluations — only the swept parameter changes. This module provides a
//! process-wide cache keyed by the *complete* input of one pattern-model
//! evaluation: the pattern's numeric parameters plus the cache view
//! (geometry and sharing ratio, keyed by exact bit pattern). Template
//! reference strings are interned to small ids so a key is always a few
//! machine words — hashing never re-walks a 10⁵-entry template.
//!
//! The cache is semantically invisible: a hit returns the exact `f64` the
//! miss path computed and stored, so cached and uncached sweeps are
//! bit-identical (asserted by the property tests in `tests/memo_sweep.rs`).
//! Hits and misses are counted in `dvf-obs` under `sweep.cache.hit` /
//! `sweep.cache.miss`.
//!
//! ## Striping
//!
//! The cache is striped: keys are routed to one of [`stripe_count`]
//! independent `Mutex<HashMap>` shards by key hash, so concurrent sweeps
//! (the `dvf-serve` worker pool, `par_map` fan-outs) contend only when
//! they touch the same stripe instead of serializing on one process-wide
//! lock. Hit/miss tallies live *inside* each stripe and are bumped under
//! the stripe lock, which makes [`stats`] a consistent cut: it holds
//! every stripe lock at once, so `hits + misses` equals the number of
//! enabled lookups that completed — no torn reads between two independent
//! atomics. The template interner is striped the same way (routed by
//! content hash, ids allocated from one shared counter), so interning
//! never funnels through a single lock either.

use crate::patterns::{CacheView, ModelError};
use std::collections::HashMap;
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, LazyLock, Mutex, MutexGuard, Once};

/// Hashable identity of a [`CacheView`]: geometry plus the exact bit
/// pattern of the sharing ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ViewKey {
    associativity: u64,
    sets: u64,
    line_bytes: u64,
    ratio_bits: u64,
}

impl ViewKey {
    /// Key of a view.
    pub fn of(view: &CacheView) -> Self {
        Self {
            associativity: view.config.associativity as u64,
            sets: view.config.num_sets as u64,
            line_bytes: view.config.line_bytes as u64,
            ratio_bits: view.ratio.to_bits(),
        }
    }
}

/// Interned id of a template reference string.
pub type TemplateId = u32;

/// Hashable identity of one pattern-model evaluation's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKey {
    /// `StreamingSpec::mem_accesses`.
    Streaming {
        /// Element size in bytes.
        element_bytes: u64,
        /// Number of elements.
        num_elements: u64,
        /// Stride in elements.
        stride_elements: u64,
    },
    /// `RandomSpec::mem_accesses`.
    Random {
        /// Number of elements.
        num_elements: u64,
        /// Element size in bytes.
        element_bytes: u64,
        /// Distinct elements visited per iteration.
        k: u64,
        /// Iterations.
        iterations: u64,
        /// Exact bit pattern of the spec's own cache ratio.
        ratio_bits: u64,
    },
    /// `TemplateSpec::mem_accesses_repeated` with an interned template.
    Template {
        /// Element size in bytes.
        element_bytes: u64,
        /// Interned reference string (see [`intern_template`]).
        template: TemplateId,
        /// Replay count.
        repeat: u64,
    },
    /// A learned-predictor evaluation (`crate::predict`): the
    /// fingerprint folds the pattern parameters, the target size and the
    /// model identity into one value, keeping predicted results in a key
    /// space disjoint from the closed forms'.
    Predicted {
        /// See [`crate::predict::memo_fingerprint`].
        fingerprint: u64,
    },
    /// `ReuseSpec::from_bytes(..).mem_accesses`.
    Reuse {
        /// Target structure size in bytes.
        size_bytes: u64,
        /// Interfering footprint in bytes.
        interfering_bytes: u64,
        /// Number of reuses.
        reuses: u64,
        /// Whether the interference is concurrent (vs. exclusive).
        concurrent: bool,
    },
}

/// Complete key of one evaluation: pattern parameters × cache view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvalKey {
    /// Pattern parameters.
    pub pattern: PatternKey,
    /// Cache view.
    pub view: ViewKey,
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Default number of lock stripes (cache and template interner alike).
const DEFAULT_STRIPES: usize = 16;

/// One shard of the evaluation cache. Hit/miss tallies are bumped under
/// the same lock that guards the map, so a full-cache snapshot taken with
/// every stripe locked is exactly consistent (tallies are lifetime
/// counters, tracked independently of `dvf-obs` — which only records when
/// profiling is enabled — so long-running consumers such as `dvf-serve`
/// can report per-request cache-effect deltas unconditionally).
#[derive(Debug, Default)]
struct Stripe {
    map: HashMap<EvalKey, f64>,
    hits: u64,
    misses: u64,
}

/// The striped cache plus the hasher that routes keys to stripes.
struct Striped {
    stripes: Box<[Mutex<Stripe>]>,
    hasher: RandomState,
}

impl Striped {
    fn stripe_of(&self, key: &EvalKey) -> &Mutex<Stripe> {
        let h = self.hasher.hash_one(key) as usize;
        &self.stripes[h % self.stripes.len()]
    }

    /// Lock every stripe, in index order (the only multi-stripe lock
    /// pattern in this module, so the order is trivially consistent).
    fn lock_all(&self) -> Vec<MutexGuard<'_, Stripe>> {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("memo cache poisoned"))
            .collect()
    }
}

/// Stripe count resolved once at first cache touch: the `DVF_MEMO_STRIPES`
/// environment variable (clamped to `1..=256`) or [`DEFAULT_STRIPES`].
/// The override exists for contention experiments (`stripes=1` reproduces
/// the old single-mutex behaviour in an otherwise identical binary).
///
/// A set-but-unparseable value (`0x10`, empty, `sixteen`) used to be
/// swallowed by an `ok()` chain and silently fall back to the default —
/// an operator who fat-fingers the variable now gets exactly one stderr
/// warning (the resolver is called from both the cache and the template
/// interner, hence the [`Once`]) and can confirm the resolved count via
/// `/v1/metrics` in `dvf-serve`.
fn parse_stripes(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().map(|n| n.clamp(1, 256))
}

fn configured_stripes() -> usize {
    match std::env::var("DVF_MEMO_STRIPES") {
        Ok(raw) => match parse_stripes(&raw) {
            Some(n) => n,
            None => {
                static WARN: Once = Once::new();
                WARN.call_once(|| {
                    eprintln!(
                        "warning: ignoring invalid DVF_MEMO_STRIPES value `{raw}` \
                         (expected an integer 1..=256); using {DEFAULT_STRIPES} stripes"
                    );
                });
                DEFAULT_STRIPES
            }
        },
        Err(std::env::VarError::NotUnicode(_)) => {
            static WARN: Once = Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "warning: ignoring non-unicode DVF_MEMO_STRIPES value; \
                     using {DEFAULT_STRIPES} stripes"
                );
            });
            DEFAULT_STRIPES
        }
        // Unset stays silent: the default is the normal case.
        Err(std::env::VarError::NotPresent) => DEFAULT_STRIPES,
    }
}

static CACHE: LazyLock<Striped> = LazyLock::new(|| Striped {
    stripes: (0..configured_stripes())
        .map(|_| Mutex::new(Stripe::default()))
        .collect(),
    hasher: RandomState::new(),
});

/// Striped template interner: content-hash routing (identical slices land
/// on the same stripe, hence see the same id) with ids allocated from one
/// shared counter so they stay unique across stripes.
/// One interner stripe: a content-keyed map from template slice to id.
type TemplateStripe = Mutex<HashMap<Arc<[u64]>, TemplateId>>;

struct TemplateInterner {
    stripes: Box<[TemplateStripe]>,
    hasher: RandomState,
    next_id: AtomicU32,
}

static TEMPLATES: LazyLock<TemplateInterner> = LazyLock::new(|| TemplateInterner {
    stripes: (0..configured_stripes())
        .map(|_| Mutex::new(HashMap::new()))
        .collect(),
    hasher: RandomState::new(),
    next_id: AtomicU32::new(0),
});

/// Number of lock stripes the cache was built with (fixed at first use).
pub fn stripe_count() -> usize {
    CACHE.stripes.len()
}

/// Whether memoization is active (default: on).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn memoization on or off (off = every evaluation recomputes).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Drop every cached evaluation and interned template.
pub fn clear() {
    // Lock order: every cache stripe (ascending), then every template
    // stripe (ascending) — the only place multiple locks are held at
    // once besides `stats`, which takes cache stripes only.
    let mut cache = CACHE.lock_all();
    let mut templates: Vec<_> = TEMPLATES
        .stripes
        .iter()
        .map(|s| s.lock().expect("template interner poisoned"))
        .collect();
    for stripe in &mut cache {
        stripe.map.clear();
    }
    for stripe in &mut templates {
        stripe.clear();
    }
    TEMPLATES.next_id.store(0, Ordering::Relaxed);
}

/// Number of cached evaluations.
pub fn len() -> usize {
    CACHE.lock_all().iter().map(|stripe| stripe.map.len()).sum()
}

/// Point-in-time view of the process-wide cache: resident entries plus
/// lifetime hit/miss tallies (monotonic — [`clear`] drops entries but not
/// the tallies). Consumers wanting the cache effect of one operation take
/// a snapshot before and after and subtract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lifetime lookup hits.
    pub hits: u64,
    /// Lifetime lookup misses (each populated one entry).
    pub misses: u64,
    /// Evaluations currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Hits and misses accumulated since `earlier` (entry count is the
    /// current one; it is a level, not a flow).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            entries: self.entries,
        }
    }
}

/// Current [`CacheStats`] of the shared cache.
///
/// The snapshot is a consistent cut: every stripe lock is held while
/// reading, and lookups tally under their stripe lock, so at quiescence
/// `hits + misses` equals the exact number of enabled lookups (the old
/// two-independent-atomics implementation could tear between the loads).
pub fn stats() -> CacheStats {
    let stripes = CACHE.lock_all();
    let mut out = CacheStats {
        hits: 0,
        misses: 0,
        entries: 0,
    };
    for stripe in &stripes {
        out.hits += stripe.hits;
        out.misses += stripe.misses;
        out.entries += stripe.map.len() as u64;
    }
    out
}

/// Intern a template reference string, returning a small stable id.
///
/// Identical slices (same length, same values) always map to the same id
/// within one interner generation ([`clear`] starts a new generation and
/// empties the evaluation cache with it).
pub fn intern_template(refs: &[u64]) -> TemplateId {
    let h = TEMPLATES.hasher.hash_one(refs) as usize;
    let stripe = &TEMPLATES.stripes[h % TEMPLATES.stripes.len()];
    let mut templates = stripe.lock().expect("template interner poisoned");
    if let Some(&id) = templates.get(refs) {
        return id;
    }
    // Ids come from one shared counter so they are unique across stripes;
    // uniqueness per *content* is the stripe map's job (same content
    // always hashes to the same stripe).
    let id = TEMPLATES.next_id.fetch_add(1, Ordering::Relaxed);
    assert_ne!(id, TemplateId::MAX, "more than u32::MAX distinct templates");
    templates.insert(Arc::from(refs), id);
    id
}

/// Evaluate a pattern model through the cache: return the stored value on
/// a hit, otherwise run `compute`, store an `Ok` result, and return it.
/// Model errors are never cached (they are cheap — validation fails before
/// any combinatorics run).
pub fn evaluate(
    key: EvalKey,
    compute: impl FnOnce() -> Result<f64, ModelError>,
) -> Result<f64, ModelError> {
    if !enabled() {
        return compute();
    }
    let stripe = CACHE.stripe_of(&key);
    {
        let mut guard = stripe.lock().expect("memo cache poisoned");
        if let Some(&v) = guard.map.get(&key) {
            guard.hits += 1;
            drop(guard);
            dvf_obs::add("sweep.cache.hit", 1);
            return Ok(v);
        }
        guard.misses += 1;
    }
    dvf_obs::add("sweep.cache.miss", 1);
    let v = compute()?;
    stripe
        .lock()
        .expect("memo cache poisoned")
        .map
        .insert(key, v);
    Ok(v)
}

/// Convenience: the key of a pattern evaluated under a view.
pub fn key(pattern: PatternKey, view: &CacheView) -> EvalKey {
    EvalKey {
        pattern,
        view: ViewKey::of(view),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::StreamingSpec;
    use dvf_cachesim::CacheConfig;

    /// Serializes tests that toggle the process-global enabled flag or
    /// clear the cache (other tests in this crate evaluate through the
    /// cache concurrently, but only these tests mutate its global state).
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn test_view() -> CacheView {
        CacheView::exclusive(CacheConfig::new(4, 64, 32).unwrap())
    }

    fn streaming_key(n: u64, view: &CacheView) -> EvalKey {
        key(
            PatternKey::Streaming {
                element_bytes: 8,
                num_elements: n,
                stride_elements: 1,
            },
            view,
        )
    }

    #[test]
    fn hit_returns_stored_value_bit_exactly() {
        let _guard = serial();
        set_enabled(true);
        let view = test_view();
        let spec = StreamingSpec {
            element_bytes: 8,
            num_elements: 77_777,
            stride_elements: 1,
        };
        let k = streaming_key(77_777, &view);
        let first = evaluate(k, || spec.mem_accesses(&view)).unwrap();
        // Second call must not recompute: a poisoned closure proves the hit.
        let second = evaluate(k, || panic!("cache should have hit")).unwrap();
        assert_eq!(first.to_bits(), second.to_bits());
        // After clear the key is gone and the closure runs again.
        clear();
        let recomputed = evaluate(k, || Ok(-1.0)).unwrap();
        assert_eq!(recomputed, -1.0);
    }

    #[test]
    fn disabled_cache_recomputes() {
        let _guard = serial();
        set_enabled(false);
        let view = test_view();
        let k = streaming_key(5, &view);
        let mut calls = 0;
        for _ in 0..3 {
            let _ = evaluate(k, || {
                calls += 1;
                Ok(1.0)
            });
        }
        set_enabled(true);
        assert_eq!(calls, 3);
        // The key was never stored: the first enabled evaluation misses.
        let probe = evaluate(k, || Ok(2.0)).unwrap();
        assert_eq!(probe, 2.0, "disabled evaluations must not populate");
    }

    #[test]
    fn errors_are_not_cached() {
        let _guard = serial();
        set_enabled(true);
        let view = test_view();
        let k = streaming_key(0, &view);
        let mut calls = 0;
        for _ in 0..2 {
            let r = evaluate(k, || {
                calls += 1;
                Err(ModelError::ZeroParameter("N"))
            });
            assert!(r.is_err());
        }
        assert_eq!(calls, 2);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let _guard = serial();
        set_enabled(true);
        let view = test_view();
        let spec = StreamingSpec {
            element_bytes: 8,
            num_elements: 31_337,
            stride_elements: 1,
        };
        let k = streaming_key(31_337, &view);
        clear();
        let before = stats();
        let _ = evaluate(k, || spec.mem_accesses(&view));
        let _ = evaluate(k, || spec.mem_accesses(&view));
        let delta = stats().since(&before);
        // Other tests may evaluate concurrently, so assert lower bounds.
        assert!(delta.misses >= 1, "{delta:?}");
        assert!(delta.hits >= 1, "{delta:?}");
        assert!(stats().entries >= 1);
    }

    #[test]
    fn template_interning_is_stable_and_content_addressed() {
        let a = intern_template(&[1, 2, 3]);
        let b = intern_template(&[1, 2, 3]);
        let c = intern_template(&[1, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn distinct_ratios_are_distinct_keys() {
        let cfg = CacheConfig::new(4, 64, 32).unwrap();
        let exclusive = ViewKey::of(&CacheView::exclusive(cfg));
        let shared = ViewKey::of(&CacheView::shared(cfg, 0.25));
        assert_ne!(exclusive, shared);
    }

    #[test]
    fn stripe_override_parsing_rejects_what_it_cannot_read() {
        // The values an operator plausibly exports: plain integers work
        // (with whitespace tolerated and out-of-range clamped) …
        assert_eq!(parse_stripes("16"), Some(16));
        assert_eq!(parse_stripes(" 8 "), Some(8));
        assert_eq!(parse_stripes("0"), Some(1));
        assert_eq!(parse_stripes("9999"), Some(256));
        // … while the historically-silent failure modes now surface as
        // `None`, which `configured_stripes` turns into a warning.
        assert_eq!(parse_stripes("0x10"), None);
        assert_eq!(parse_stripes(""), None);
        assert_eq!(parse_stripes("sixteen"), None);
        assert_eq!(parse_stripes("-4"), None);
    }
}
