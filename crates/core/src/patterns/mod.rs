//! The four CGPMAC memory-access-pattern models (paper §III-B/C).
//!
//! CGPMAC — *coarse grained, pseudocode-based memory access accounting* —
//! estimates the number of main-memory accesses (`N_ha`) a data structure
//! causes, from a high-level description of its access pattern plus the
//! last-level cache geometry. The paper classifies all HPC kernel accesses
//! into four composable patterns:
//!
//! | pattern | paper symbol | module |
//! |---------|--------------|--------|
//! | streaming        | `s` | [`streaming`] |
//! | random           | `r` | [`random`]    |
//! | template-based   | `t` | [`template`]  |
//! | data reuse       | `d` | [`reuse`]     |
//!
//! Every model consumes a [`CacheView`] — the LLC geometry of paper
//! Table III, optionally scaled by the cache-sharing ratio `r` used to
//! model interference between concurrently accessed data structures
//! ("Each data structure gets only a fraction of the cache according to
//! its size", §III-C).

pub mod random;
pub mod reuse;
pub mod streaming;
pub mod template;

pub use random::RandomSpec;
pub use reuse::{InterferenceScenario, ReuseSpec};
pub use streaming::StreamingSpec;
pub use template::TemplateSpec;

use dvf_cachesim::CacheConfig;

/// A data structure's view of the last-level cache: the full geometry plus
/// the fraction `r` of it this structure may occupy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheView {
    /// LLC geometry (`CA`, `NA`, `CL`, and derived `Cc`).
    pub config: CacheConfig,
    /// Cache-sharing ratio `r ∈ (0, 1]`: the fraction of cache blocks this
    /// data structure competes for. `1.0` means exclusive use.
    pub ratio: f64,
}

impl CacheView {
    /// Exclusive view (`r = 1`).
    pub fn exclusive(config: CacheConfig) -> Self {
        Self { config, ratio: 1.0 }
    }

    /// Shared view with ratio `r`.
    ///
    /// # Panics
    /// If `ratio` is not in `(0, 1]`.
    pub fn shared(config: CacheConfig, ratio: f64) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "cache ratio must be in (0, 1], got {ratio}"
        );
        Self { config, ratio }
    }

    /// Effective capacity in bytes (`Cc * r`).
    pub fn effective_capacity(&self) -> f64 {
        self.config.capacity() as f64 * self.ratio
    }

    /// Effective number of cache blocks (`CA * NA * r`).
    pub fn effective_blocks(&self) -> f64 {
        self.config.num_blocks() as f64 * self.ratio
    }

    /// Line length `CL` in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.config.line_bytes as u64
    }
}

/// Errors raised by the pattern models on invalid specifications.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A parameter that must be nonzero was zero.
    ZeroParameter(&'static str),
    /// `k` (distinct elements visited per iteration) exceeded `N`.
    KExceedsN {
        /// Provided `k`.
        k: u64,
        /// Provided `N`.
        n: u64,
    },
    /// Cache ratio outside `(0, 1]`.
    BadRatio(f64),
    /// Stride smaller than one element (the paper assumes `S ≥ E`).
    StrideBelowElement {
        /// Stride in bytes.
        stride: u64,
        /// Element size in bytes.
        element: u64,
    },
    /// Empty template.
    EmptyTemplate,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::ZeroParameter(p) => write!(f, "parameter {p} must be nonzero"),
            ModelError::KExceedsN { k, n } => {
                write!(f, "k = {k} distinct elements per iteration exceeds N = {n}")
            }
            ModelError::BadRatio(r) => write!(f, "cache ratio must be in (0, 1], got {r}"),
            ModelError::StrideBelowElement { stride, element } => write!(
                f,
                "stride ({stride} B) must be at least the element size ({element} B)"
            ),
            ModelError::EmptyTemplate => write!(f, "template must contain at least one reference"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dvf_cachesim::config::table4;

    #[test]
    fn cache_view_effective_scaling() {
        let v = CacheView::shared(table4::SMALL_VERIFICATION, 0.5);
        assert_eq!(v.effective_capacity(), 4.0 * 1024.0);
        assert_eq!(v.effective_blocks(), 128.0);
        assert_eq!(v.line_bytes(), 32);
    }

    #[test]
    #[should_panic(expected = "cache ratio")]
    fn cache_view_rejects_bad_ratio() {
        let _ = CacheView::shared(table4::SMALL_VERIFICATION, 0.0);
    }
}
