//! Random access pattern (paper §III-C, Eqs. 5–7).
//!
//! Models loop-based computations that visit `k` distinct, randomly chosen
//! elements of an `N`-element structure on each of `iter` iterations
//! (Barnes-Hut tree walks, Monte-Carlo cross-section lookups). The cache
//! holds `m = Cc·r/E` elements; the expected number of visited elements
//! *not* resident follows the hypergeometric distribution of Eq. 5.

use super::{CacheView, ModelError};
use crate::comb::{hypergeometric_mean, hypergeometric_pmf};

/// Specification of a random access pattern, matching the paper's Aspen
/// parameter tuple `(N, E, k, iter, r)` — e.g. `{(1000, 32, 200, 1000,
/// 1.0)}` for the Barnes-Hut tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomSpec {
    /// Number of elements `N` in the target data structure.
    pub num_elements: u64,
    /// Element size `E` in bytes.
    pub element_bytes: u64,
    /// Average number of distinct elements visited per iteration (`k`).
    pub k: u64,
    /// Number of iterations (`iter`).
    pub iterations: u64,
    /// Cache-sharing ratio `r` — fraction of the cache available to this
    /// structure when several structures are accessed concurrently.
    pub ratio: f64,
}

/// Decomposition of the random-model estimate, for inspection and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomBreakdown {
    /// Compulsory misses of the construction phase: `⌈E·N/CL⌉`.
    pub initial_loads: f64,
    /// Expected visited-but-evicted elements per iteration (`X_E`, Eq. 6).
    pub expected_missing: f64,
    /// Cache blocks reloaded per iteration (`B_reload`, Eq. 7).
    pub reload_per_iter: f64,
    /// Grand total over `iter` iterations.
    pub total: f64,
}

impl RandomSpec {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.num_elements == 0 {
            return Err(ModelError::ZeroParameter("num_elements"));
        }
        if self.element_bytes == 0 {
            return Err(ModelError::ZeroParameter("element_bytes"));
        }
        if self.k > self.num_elements {
            return Err(ModelError::KExceedsN {
                k: self.k,
                n: self.num_elements,
            });
        }
        if !(self.ratio > 0.0 && self.ratio <= 1.0) {
            return Err(ModelError::BadRatio(self.ratio));
        }
        Ok(())
    }

    /// Expected number of main-memory accesses (Eqs. 5–7), with the
    /// intermediate quantities exposed.
    ///
    /// The spec's own `ratio` overrides the view's ratio when the view is
    /// exclusive; if both are shared the products compose.
    pub fn breakdown(&self, cache: &CacheView) -> Result<RandomBreakdown, ModelError> {
        self.validate()?;
        let n = self.num_elements;
        let e = self.element_bytes;
        let cl = cache.line_bytes();
        let r = self.ratio * cache.ratio;
        let cc = cache.config.capacity() as f64;

        let initial_loads = (e * n).div_ceil(cl) as f64;

        // Case 1: the whole structure fits its cache share -> compulsory
        // misses only.
        let m = (cc * r / e as f64).floor() as u64; // elements resident at once
        if (e * n) as f64 <= cc * r {
            return Ok(RandomBreakdown {
                initial_loads,
                expected_missing: 0.0,
                reload_per_iter: 0.0,
                total: initial_loads,
            });
        }

        // Case 2: structure exceeds its share. Eq. 5/6: expected number of
        // the k visited elements that are not among the m resident ones.
        let expected_missing = expected_not_in_cache(n, self.k, m);

        // Convert missing elements to cache blocks (B_elm).
        let b_elm = if cl < e {
            e.div_ceil(cl) as f64 * expected_missing
        } else {
            expected_missing
        };
        // Upper bound: blocks of the structure that are out of cache
        // (B_out = E*N/CL - CA*NA*r).
        let total_blocks = (e * n) as f64 / cl as f64;
        let b_out = (total_blocks - cache.config.num_blocks() as f64 * r).max(0.0);
        let reload_per_iter = b_elm.min(b_out);

        let total = initial_loads + reload_per_iter * self.iterations as f64;
        Ok(RandomBreakdown {
            initial_loads,
            expected_missing,
            reload_per_iter,
            total,
        })
    }

    /// Expected number of main-memory accesses (`N_ha`).
    pub fn mem_accesses(&self, cache: &CacheView) -> Result<f64, ModelError> {
        Ok(self.breakdown(cache)?.total)
    }
}

/// `X_E` of Eq. 6: expected number of `k` visited elements that are absent
/// from a cache holding `m` uniformly random elements of `N`.
///
/// Evaluates the paper's explicit sum over the hypergeometric pmf
/// (`P(X = x)`, Eq. 5). The sum telescopes to the closed form
/// `k·(1 − m/N)` — see `closed_form_matches_sum` below — but we keep the
/// summation to mirror the paper and guard it with the closed form.
pub fn expected_not_in_cache(n: u64, k: u64, m: u64) -> f64 {
    if m >= n {
        return 0.0;
    }
    // X = k - j where j ~ Hypergeom(population n, marked k, draws m) counts
    // the visited elements that are resident.
    let hi = (n - m).min(k);
    let mut acc = 0.0;
    for x in 1..=hi {
        let j = k - x;
        acc += x as f64 * hypergeometric_pmf(n, k, m, j);
    }
    acc
}

/// Closed form of Eq. 6: `k·(1 − m/N)` (the hypergeometric mean).
pub fn expected_not_in_cache_closed(n: u64, k: u64, m: u64) -> f64 {
    if m >= n {
        return 0.0;
    }
    k as f64 - hypergeometric_mean(n, k, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvf_cachesim::config::table4;
    use dvf_cachesim::CacheConfig;

    #[test]
    fn closed_form_matches_sum() {
        for (n, k, m) in [(100u64, 10u64, 40u64), (1000, 200, 128), (50, 50, 10)] {
            let sum = expected_not_in_cache(n, k, m);
            let closed = expected_not_in_cache_closed(n, k, m);
            assert!(
                (sum - closed).abs() < 1e-9 * closed.max(1.0),
                "n={n} k={k} m={m}: sum {sum} vs closed {closed}"
            );
        }
    }

    #[test]
    fn fits_in_cache_only_compulsory() {
        // 1000 elements * 32 B = 32 KB <= 4 MB cache.
        let spec = RandomSpec {
            num_elements: 1000,
            element_bytes: 32,
            k: 200,
            iterations: 1000,
            ratio: 1.0,
        };
        let cache = CacheView::exclusive(table4::LARGE_VERIFICATION);
        let b = spec.breakdown(&cache).unwrap();
        assert_eq!(b.reload_per_iter, 0.0);
        assert_eq!(b.total, (1000.0f64 * 32.0 / 64.0).ceil());
    }

    #[test]
    fn paper_barnes_hut_small_cache() {
        // Paper NB example on the small verification cache (8 KB):
        // 1000 nodes of 32 B = 32 KB > 8 KB -> reloads happen.
        let spec = RandomSpec {
            num_elements: 1000,
            element_bytes: 32,
            k: 200,
            iterations: 1000,
            ratio: 1.0,
        };
        let cache = CacheView::exclusive(table4::SMALL_VERIFICATION);
        let b = spec.breakdown(&cache).unwrap();
        // m = 8192/32 = 256 resident elements; X_E = 200*(1-256/1000) = 148.8
        assert!((b.expected_missing - 148.8).abs() < 1e-6);
        // CL = E = 32: B_elm = X_E. B_out = 1000 - 256 = 744. min -> 148.8.
        assert!((b.reload_per_iter - 148.8).abs() < 1e-6);
        assert!((b.total - (1000.0 + 148.8 * 1000.0)).abs() < 1e-3);
    }

    #[test]
    fn reload_capped_by_out_of_cache_blocks() {
        // Tiny structure barely exceeding the cache: B_out caps the reload.
        // Cache: 1 set, 4 ways, 64 B lines = 256 B. Structure: 5 elements
        // of 64 B = 320 B; m = 4; B_out = 5 - 4 = 1.
        let cfg = CacheConfig::new(4, 1, 64).unwrap();
        let spec = RandomSpec {
            num_elements: 5,
            element_bytes: 64,
            k: 5,
            iterations: 10,
            ratio: 1.0,
        };
        let b = spec.breakdown(&CacheView::exclusive(cfg)).unwrap();
        // X_E = 5*(1-4/5) = 1. B_elm = 1 (CL == E). B_out = 1. reload = 1.
        assert!((b.reload_per_iter - 1.0).abs() < 1e-9);
        assert_eq!(b.total, 5.0 + 10.0);
    }

    #[test]
    fn ratio_shrinks_effective_cache() {
        let spec_full = RandomSpec {
            num_elements: 4096,
            element_bytes: 8,
            k: 512,
            iterations: 100,
            ratio: 1.0,
        };
        let spec_half = RandomSpec {
            ratio: 0.5,
            ..spec_full
        };
        let cache = CacheView::exclusive(table4::PROFILE_16KB);
        let full = spec_full.mem_accesses(&cache).unwrap();
        let half = spec_half.mem_accesses(&cache).unwrap();
        assert!(
            half > full,
            "halving the cache share must increase memory accesses ({half} !> {full})"
        );
    }

    #[test]
    fn large_elements_multiply_blocks() {
        // E = 128 > CL = 64: each missing element needs 2 blocks.
        let cfg = CacheConfig::new(4, 4, 64).unwrap(); // 1 KiB
        let spec = RandomSpec {
            num_elements: 64,
            element_bytes: 128,
            k: 32,
            iterations: 1,
            ratio: 1.0,
        };
        let b = spec.breakdown(&CacheView::exclusive(cfg)).unwrap();
        // m = 1024/128 = 8; X_E = 32*(1-8/64) = 28; B_elm = 2*28 = 56;
        // B_out = 128 - 16 = 112; reload = 56.
        assert!((b.reload_per_iter - 56.0).abs() < 1e-9);
    }

    #[test]
    fn validation_errors() {
        let base = RandomSpec {
            num_elements: 10,
            element_bytes: 8,
            k: 4,
            iterations: 1,
            ratio: 1.0,
        };
        assert!(RandomSpec { k: 11, ..base }.validate().is_err());
        assert!(RandomSpec { ratio: 0.0, ..base }.validate().is_err());
        assert!(RandomSpec { ratio: 1.5, ..base }.validate().is_err());
        assert!(RandomSpec {
            num_elements: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(RandomSpec {
            element_bytes: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(base.validate().is_ok());
    }

    #[test]
    fn more_iterations_more_accesses() {
        let cache = CacheView::exclusive(table4::SMALL_VERIFICATION);
        let mk = |iterations| RandomSpec {
            num_elements: 2000,
            element_bytes: 32,
            k: 100,
            iterations,
            ratio: 1.0,
        };
        let a = mk(10).mem_accesses(&cache).unwrap();
        let b = mk(100).mem_accesses(&cache).unwrap();
        assert!(b > a);
    }
}
