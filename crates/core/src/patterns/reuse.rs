//! Data reuse pattern (paper §III-C, Eqs. 8–15).
//!
//! Models a data structure `A` that is repeatedly reused while other data
//! structures (collectively `B`) interfere with it in the cache — the `p`
//! vector in CG is the paper's running example. The model is a probability
//! analysis over *cache sets*:
//!
//! * Eq. 8 — blocks land in sets as Bernoulli trials with probability
//!   `1/NA`; the number of `A`-blocks in one set is binomial, saturated at
//!   the associativity `CA`. (The paper's typesetting omits the binomial
//!   coefficient `C(F_A, x)`; we restore it — without it Eq. 8 is not a
//!   probability distribution. With it the model matches the cited
//!   Thiebaut–Stone footprint analysis.)
//! * Eq. 9 — expected `A`-blocks per set under exclusive use.
//! * Eq. 10 — allocation when `A` and `B` are loaded concurrently:
//!   proportional sharing once a set overflows.
//! * Eq. 11 — interference after an exclusive load: LRU evicts non-`A`
//!   blocks first, so `A` retains `CA − y` blocks in overflowing sets.
//! * Eq. 12 — interference after a concurrent load: any of the `I`
//!   resident blocks is equally likely to be evicted (hypergeometric).
//! * Eqs. 13–15 — combine over the joint distribution of `(X_A, X_B)` to
//!   get `E(R_A)`, the expected `A`-blocks per set that survive.
//!
//! `N_ha(A) = F_A + reuses · max(0, F_A − NA·E(R_A))`: the initial load
//! plus, per reuse, the blocks that no longer reside anywhere.

use super::{CacheView, ModelError};
use crate::comb::{binomial_pmf, binomial_tail_ge, ln_binomial_real};

/// Which of the paper's two interference scenarios applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InterferenceScenario {
    /// `A` is loaded exclusively, then `B` interferes; LRU protects the
    /// just-accessed `A` blocks (Eq. 11). The paper's first scenario.
    #[default]
    Exclusive,
    /// `A` and `B` are loaded concurrently and interleave; evictions strike
    /// resident blocks uniformly (Eqs. 10 and 12). The paper's second
    /// scenario.
    Concurrent,
}

/// Specification of a reuse pattern for a target data structure `A`
/// interfered by the combined footprint `B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseSpec {
    /// `F_A`: footprint of the target structure, in cache blocks.
    pub target_blocks: u64,
    /// `F_B`: combined footprint of the interfering structures, in blocks.
    pub interfering_blocks: u64,
    /// Number of times `A` is reused after its initial load.
    pub reuses: u64,
    /// Interference scenario.
    pub scenario: InterferenceScenario,
}

/// Decomposition of the reuse-model estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseBreakdown {
    /// Expected `A`-blocks per set surviving interference (`E(R_A)`).
    pub expected_resident_per_set: f64,
    /// Blocks of `A` reloaded per reuse: `max(0, F_A − NA·E(R_A))`.
    pub reload_per_reuse: f64,
    /// Total: `F_A + reuses · reload_per_reuse`.
    pub total: f64,
}

impl ReuseSpec {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.target_blocks == 0 {
            return Err(ModelError::ZeroParameter("target_blocks"));
        }
        Ok(())
    }

    /// Distribution of `X` (blocks of a structure with footprint `f` in one
    /// set under exclusive use) — Eq. 8 with the binomial coefficient
    /// restored, saturated at the associativity.
    ///
    /// Returns `P(X = x)` for `x = 0..=CA`.
    pub fn footprint_distribution(f: u64, cache: &CacheView) -> Vec<f64> {
        let ca = cache.config.associativity as u64;
        let p = 1.0 / cache.config.num_sets as f64;
        let mut dist = Vec::with_capacity(ca as usize + 1);
        for x in 0..ca {
            dist.push(binomial_pmf(f, p, x));
        }
        dist.push(binomial_tail_ge(f, p, ca));
        dist
    }

    /// Expected blocks per set under exclusive use (Eq. 9).
    pub fn expected_exclusive(f: u64, cache: &CacheView) -> f64 {
        Self::footprint_distribution(f, cache)
            .iter()
            .enumerate()
            .map(|(x, p)| x as f64 * p)
            .sum()
    }

    /// `E(R_A | X_A = x, X_B = y)` for the chosen scenario.
    ///
    /// * Exclusive (Eq. 11): `x` if the set doesn't overflow, else `CA − y`.
    /// * Concurrent (Eq. 12): hypergeometric eviction out of the expected
    ///   combined residency `I`.
    fn conditional_resident(&self, x: u64, y: u64, ca: u64, combined_i: f64) -> f64 {
        match self.scenario {
            InterferenceScenario::Exclusive => {
                if x + y <= ca {
                    x as f64
                } else {
                    (ca.saturating_sub(y)) as f64
                }
            }
            InterferenceScenario::Concurrent => expected_after_uniform_eviction(x, y, combined_i),
        }
    }

    /// Full model (Eqs. 8–15), with intermediates exposed.
    pub fn breakdown(&self, cache: &CacheView) -> Result<ReuseBreakdown, ModelError> {
        self.validate()?;
        let ca = cache.config.associativity as u64;
        let na = cache.config.num_sets as f64;
        let fa = self.target_blocks;
        let fb = self.interfering_blocks;

        let dist_a = Self::footprint_distribution(fa, cache);
        let dist_b = Self::footprint_distribution(fb, cache);
        // Eq. 12's `I`: expected combined per-set residency, treating A and
        // B as one structure.
        let combined_i = Self::expected_exclusive(fa + fb, cache).min(ca as f64);

        // Eqs. 13–15: E(R_A) = Σ_{x,y} E(R_A|x,y) P(X_A=x) P(X_B=y).
        let mut expected_resident = 0.0;
        for (x, pa) in dist_a.iter().enumerate() {
            if *pa == 0.0 {
                continue;
            }
            for (y, pb) in dist_b.iter().enumerate() {
                if *pb == 0.0 {
                    continue;
                }
                expected_resident +=
                    pa * pb * self.conditional_resident(x as u64, y as u64, ca, combined_i);
            }
        }

        let reload = (fa as f64 - na * expected_resident).max(0.0);
        Ok(ReuseBreakdown {
            expected_resident_per_set: expected_resident,
            reload_per_reuse: reload,
            total: fa as f64 + reload * self.reuses as f64,
        })
    }

    /// Expected main-memory accesses (`N_ha`).
    pub fn mem_accesses(&self, cache: &CacheView) -> Result<f64, ModelError> {
        Ok(self.breakdown(cache)?.total)
    }

    /// Convenience: build a spec from byte sizes, converting to blocks.
    pub fn from_bytes(
        target_bytes: u64,
        interfering_bytes: u64,
        reuses: u64,
        scenario: InterferenceScenario,
        line_bytes: u64,
    ) -> Self {
        Self {
            target_blocks: target_bytes.div_ceil(line_bytes),
            interfering_blocks: interfering_bytes.div_ceil(line_bytes),
            reuses,
            scenario,
        }
    }
}

/// Eq. 12: expected surviving `A`-blocks when `y` accesses evict uniformly
/// from `i` resident blocks of which `x` belong to `A`.
///
/// Evaluated as the normalized hypergeometric sum
/// `P(R_A = r) ∝ C(x, x−r) · C(i−x, y−x+r) / C(i, y)` over `r = 0..=x`,
/// using the gamma-function continuation for the non-integer expected
/// residency `i`. Falls back to the closed-form mean `x·(1 − y/i)` when the
/// support collapses (numerically empty sum).
pub fn expected_after_uniform_eviction(x: u64, y: u64, i: f64) -> f64 {
    if x == 0 {
        return 0.0;
    }
    if i <= 0.0 {
        return 0.0;
    }
    let yf = y as f64;
    if yf >= i {
        // Everything resident is evicted.
        return 0.0;
    }
    let ln_denom = ln_binomial_real(i, yf);
    let mut weight_sum = 0.0;
    let mut value_sum = 0.0;
    for r in 0..=x {
        let evicted_from_a = (x - r) as f64;
        let ln_w = ln_binomial_real(x as f64, evicted_from_a)
            + ln_binomial_real(i - x as f64, yf - evicted_from_a)
            - ln_denom;
        if ln_w.is_finite() {
            let w = ln_w.exp();
            weight_sum += w;
            value_sum += w * r as f64;
        }
    }
    if weight_sum > 1e-12 {
        value_sum / weight_sum
    } else {
        // Degenerate support: closed-form hypergeometric mean.
        (x as f64 * (1.0 - yf / i)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvf_cachesim::config::table4;
    use dvf_cachesim::CacheConfig;

    fn view(assoc: usize, sets: usize, line: usize) -> CacheView {
        CacheView::exclusive(CacheConfig::new(assoc, sets, line).unwrap())
    }

    #[test]
    fn footprint_distribution_sums_to_one() {
        let cache = view(4, 64, 32);
        for f in [1u64, 10, 100, 1000, 10_000] {
            let d = ReuseSpec::footprint_distribution(f, &cache);
            let total: f64 = d.iter().sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "f={f}: distribution sums to {total}"
            );
        }
    }

    #[test]
    fn expected_exclusive_approaches_mean_when_unsaturated() {
        // Small footprint: E(X_A) ~ F_A / NA (binomial mean), since
        // saturation at CA is negligible.
        let cache = view(8, 64, 32);
        let f = 32u64;
        let e = ReuseSpec::expected_exclusive(f, &cache);
        assert!((e - f as f64 / 64.0).abs() < 1e-6, "e = {e}");
    }

    #[test]
    fn expected_exclusive_saturates_at_associativity() {
        // Enormous footprint: every set is full -> E(X_A) = CA.
        let cache = view(4, 16, 32);
        let e = ReuseSpec::expected_exclusive(1_000_000, &cache);
        assert!((e - 4.0).abs() < 1e-9, "e = {e}");
    }

    #[test]
    fn no_interference_no_reload() {
        // A and B together fit comfortably: nothing is reloaded.
        let cache = view(8, 64, 32); // 512 blocks
        let spec = ReuseSpec {
            target_blocks: 40,
            interfering_blocks: 40,
            reuses: 10,
            scenario: InterferenceScenario::Exclusive,
        };
        let b = spec.breakdown(&cache).unwrap();
        // Reload is tiny (only the binomial tail where a set overflows).
        assert!(b.reload_per_reuse < 1.0, "reload = {}", b.reload_per_reuse);
    }

    #[test]
    fn heavy_interference_reloads_most_of_a() {
        // B floods the cache: nearly all of A must be reloaded every reuse.
        let cache = view(4, 64, 32); // 256 blocks
        let spec = ReuseSpec {
            target_blocks: 200,
            interfering_blocks: 4000,
            reuses: 1,
            scenario: InterferenceScenario::Exclusive,
        };
        let b = spec.breakdown(&cache).unwrap();
        assert!(
            b.reload_per_reuse > 150.0,
            "reload = {}",
            b.reload_per_reuse
        );
    }

    #[test]
    fn concurrent_scenario_is_gentler_than_exclusive_flood() {
        // Under uniform eviction A loses blocks proportionally, while under
        // Eq. 11 with huge y it keeps only CA - y (= 0 when y >= CA): for a
        // saturating interferer, exclusive predicts fewer survivors.
        let cache = view(4, 64, 32);
        let excl = ReuseSpec {
            target_blocks: 150,
            interfering_blocks: 2000,
            reuses: 1,
            scenario: InterferenceScenario::Exclusive,
        };
        let conc = ReuseSpec {
            scenario: InterferenceScenario::Concurrent,
            ..excl
        };
        let be = excl.breakdown(&cache).unwrap();
        let bc = conc.breakdown(&cache).unwrap();
        assert!(
            bc.expected_resident_per_set <= be.expected_resident_per_set + 1e-9,
            "concurrent {} vs exclusive {}",
            bc.expected_resident_per_set,
            be.expected_resident_per_set
        );
    }

    #[test]
    fn uniform_eviction_closed_form_agreement() {
        // When i is an integer and the support is full, the normalized sum
        // equals the hypergeometric mean x(1 - y/i).
        for (x, y, i) in [(3u64, 2u64, 8.0f64), (4, 1, 6.0), (2, 3, 10.0)] {
            let sum = expected_after_uniform_eviction(x, y, i);
            let closed = x as f64 * (1.0 - y as f64 / i);
            assert!(
                (sum - closed).abs() < 1e-9,
                "x={x} y={y} i={i}: {sum} vs {closed}"
            );
        }
    }

    #[test]
    fn uniform_eviction_edge_cases() {
        assert_eq!(expected_after_uniform_eviction(0, 5, 8.0), 0.0);
        assert_eq!(expected_after_uniform_eviction(3, 8, 8.0), 0.0); // y >= i
        assert_eq!(expected_after_uniform_eviction(3, 0, 8.0), 3.0); // no evictions
    }

    #[test]
    fn more_reuses_scale_linearly() {
        let cache = view(4, 64, 32);
        let mk = |reuses| ReuseSpec {
            target_blocks: 300,
            interfering_blocks: 300,
            reuses,
            scenario: InterferenceScenario::Exclusive,
        };
        let b1 = mk(1).breakdown(&cache).unwrap();
        let b10 = mk(10).breakdown(&cache).unwrap();
        let per_reuse = b1.reload_per_reuse;
        assert!((b10.total - (300.0 + 10.0 * per_reuse)).abs() < 1e-9);
    }

    #[test]
    fn from_bytes_rounds_up() {
        let s = ReuseSpec::from_bytes(100, 65, 1, InterferenceScenario::Exclusive, 32);
        assert_eq!(s.target_blocks, 4);
        assert_eq!(s.interfering_blocks, 3);
    }

    #[test]
    fn paper_profiling_cache_sanity() {
        // CG's p vector (800 doubles = 6.4 KB) reused against A (800x800
        // doubles = 5.1 MB) on the 16 KB profiling cache: p must be almost
        // entirely reloaded on every reuse.
        let cache = CacheView::exclusive(table4::PROFILE_16KB);
        let spec = ReuseSpec::from_bytes(
            800 * 8,
            800 * 800 * 8,
            100,
            InterferenceScenario::Exclusive,
            cache.line_bytes(),
        );
        let b = spec.breakdown(&cache).unwrap();
        let fa = spec.target_blocks as f64;
        assert!(
            b.reload_per_reuse > 0.9 * fa,
            "reload {} of {fa}",
            b.reload_per_reuse
        );
    }

    #[test]
    fn zero_target_rejected() {
        let spec = ReuseSpec {
            target_blocks: 0,
            interfering_blocks: 1,
            reuses: 1,
            scenario: InterferenceScenario::Exclusive,
        };
        assert!(spec.validate().is_err());
    }
}
