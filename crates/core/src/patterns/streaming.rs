//! Streaming access pattern (paper §III-C, Eqs. 3–4, Fig. 1).
//!
//! "The streaming access is defined as a sequential traverse of a data
//! structure with a fixed stride length. Since each element in the data
//! structure is accessed at most once, all the main memory accesses are
//! caused by compulsory cache misses."
//!
//! The model splits into three cases on the relation between the cache line
//! length `CL`, the element size `E`, and the stride `S` (in bytes):
//!
//! 1. `CL ≤ E` — every element spans one or more lines;
//! 2. `E < CL ≤ S` — an element fits a line but strides skip lines;
//! 3. `S < CL` — several strided elements share each line.

use super::{CacheView, ModelError};

/// Specification of a streaming traversal, matching the paper's Aspen
/// parameter tuple `(element_bytes, num_elements, stride_elements)` —
/// e.g. `{(8, 200, 4)}` for data structure `A` of the VM example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingSpec {
    /// Element size `E` in bytes.
    pub element_bytes: u64,
    /// Number of elements `N` in the data structure (`D = N * E`).
    pub num_elements: u64,
    /// Stride in *elements* (the paper's third tuple member: stride `4`
    /// with 8-byte elements means `S = 32` bytes).
    pub stride_elements: u64,
}

impl StreamingSpec {
    /// Unit-stride traversal.
    pub fn contiguous(element_bytes: u64, num_elements: u64) -> Self {
        Self {
            element_bytes,
            num_elements,
            stride_elements: 1,
        }
    }

    /// Data structure size `D = N * E` in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.num_elements * self.element_bytes
    }

    /// Stride `S` in bytes.
    pub fn stride_bytes(&self) -> u64 {
        self.stride_elements * self.element_bytes
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.element_bytes == 0 {
            return Err(ModelError::ZeroParameter("element_bytes"));
        }
        if self.num_elements == 0 {
            return Err(ModelError::ZeroParameter("num_elements"));
        }
        if self.stride_elements == 0 {
            return Err(ModelError::ZeroParameter("stride_elements"));
        }
        Ok(())
    }

    /// Expected number of main-memory accesses caused by one streaming
    /// traversal of the data structure through the given cache.
    ///
    /// Implements the three cases of §III-C exactly; returns a fractional
    /// expectation because of the alignment probability `p` (Eq. 3).
    pub fn mem_accesses(&self, cache: &CacheView) -> Result<f64, ModelError> {
        self.validate()?;
        let e = self.element_bytes;
        let cl = cache.line_bytes();
        let s = self.stride_bytes();
        let d = self.data_bytes();

        // Eq. 3: probability that an element is *not* aligned with cache
        // lines, assuming every byte offset within a line is equally likely.
        let p = ((e - 1) % cl) as f64 / cl as f64;

        let accesses = if cl <= e {
            // Eq. 4: expected lines touched per element reference.
            let ae = (e / cl) as f64 + p;
            if s > e {
                // Case 1a: stride skips elements: ceil(D/S) element
                // references, AE lines each.
                d.div_ceil(s) as f64 * ae
            } else {
                // Case 1b (S == E): dense traversal loads every line once.
                d.div_ceil(cl) as f64
            }
        } else if cl <= s {
            // Case 2 (E < CL <= S): each element reference costs 1 or 2
            // lines depending on alignment: expected 1 + p.
            d.div_ceil(s) as f64 * (1.0 + p)
        } else {
            // Case 3 (S < CL): several elements per line; every line of the
            // structure is loaded exactly once.
            d.div_ceil(cl) as f64
        };
        Ok(accesses)
    }

    /// Variant of [`mem_accesses`] for a data structure whose base address
    /// is known to be cache-line aligned (as allocators typically provide
    /// for large arrays): the misalignment probability `p` of Eq. 3 is
    /// zero, so elements never straddle an extra line.
    ///
    /// [`mem_accesses`]: StreamingSpec::mem_accesses
    pub fn mem_accesses_aligned(&self, cache: &CacheView) -> Result<f64, ModelError> {
        self.validate()?;
        let e = self.element_bytes;
        let cl = cache.line_bytes();
        let s = self.stride_bytes();
        let d = self.data_bytes();
        let accesses = if cl <= e {
            if s > e {
                d.div_ceil(s) as f64 * e.div_ceil(cl) as f64
            } else {
                d.div_ceil(cl) as f64
            }
        } else if cl <= s {
            d.div_ceil(s) as f64
        } else {
            d.div_ceil(cl) as f64
        };
        Ok(accesses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvf_cachesim::config::table4;
    use dvf_cachesim::CacheConfig;

    fn view(cl: usize) -> CacheView {
        CacheView::exclusive(CacheConfig::new(4, 64, cl).unwrap())
    }

    #[test]
    fn paper_example_vm_a() {
        // Paper VM example: A has 200 elements of 8 bytes, stride 4
        // elements (32 bytes). With CL = 32 B: E < CL <= S -> case 2.
        // D = 1600 B, ceil(D/S) = 50 references; p = ((8-1) mod 32)/32.
        let spec = StreamingSpec {
            element_bytes: 8,
            num_elements: 200,
            stride_elements: 4,
        };
        let cache = CacheView::exclusive(table4::SMALL_VERIFICATION);
        let p = 7.0 / 32.0;
        let expected = 50.0 * (1.0 + p);
        assert!((spec.mem_accesses(&cache).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn contiguous_loads_every_line_once() {
        // Unit stride, E = CL: exactly D/CL lines.
        let spec = StreamingSpec::contiguous(32, 128);
        assert_eq!(spec.mem_accesses(&view(32)).unwrap(), 128.0);
    }

    #[test]
    fn case1_large_elements_span_lines() {
        // E = 64, CL = 32, unit stride (S = E): dense -> ceil(D/CL).
        let spec = StreamingSpec::contiguous(64, 10);
        assert_eq!(spec.mem_accesses(&view(32)).unwrap(), 20.0);
    }

    #[test]
    fn case1_strided_large_elements() {
        // E = 64, CL = 32, stride 2 elements (S = 128 > E): case 1a.
        // D = 640, ceil(D/S) = 5 references; E/CL = 2 aligned lines,
        // p = ((64-1) mod 32)/32 = 31/32; AE = 2 + 31/32.
        let spec = StreamingSpec {
            element_bytes: 64,
            num_elements: 10,
            stride_elements: 2,
        };
        let expected = 5.0 * (2.0 + 31.0 / 32.0);
        assert!((spec.mem_accesses(&view(32)).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn case3_small_stride_shares_lines() {
        // E = 4, S = 8, CL = 32: case 3, every line loaded once.
        let spec = StreamingSpec {
            element_bytes: 4,
            num_elements: 1000,
            stride_elements: 2,
        };
        // D = 4000, ceil(4000/32) = 125.
        assert_eq!(spec.mem_accesses(&view(32)).unwrap(), 125.0);
    }

    #[test]
    fn aligned_element_has_zero_misalignment_penalty() {
        // E = CL = 32: p = ((32-1) mod 32)/32 = 31/32? No: (31 mod 32) = 31.
        // The paper's p formula gives 31/32 only for E-1 = 31 < CL; for an
        // element exactly one line long p should intuitively be... the
        // formula: ((E-1) mod CL)/CL = 31/32. But case 1b (S == E) bypasses
        // AE entirely, so dense traversal is unaffected: check that.
        let spec = StreamingSpec::contiguous(32, 4);
        assert_eq!(spec.mem_accesses(&view(32)).unwrap(), 4.0);
    }

    #[test]
    fn streaming_is_cache_capacity_independent() {
        // Compulsory misses only: same answer for any capacity with equal CL.
        let spec = StreamingSpec {
            element_bytes: 8,
            num_elements: 10_000,
            stride_elements: 1,
        };
        let small = CacheView::exclusive(CacheConfig::new(2, 16, 64).unwrap());
        let large = CacheView::exclusive(CacheConfig::new(16, 4096, 64).unwrap());
        assert_eq!(
            spec.mem_accesses(&small).unwrap(),
            spec.mem_accesses(&large).unwrap()
        );
    }

    #[test]
    fn aligned_variant_drops_misalignment_penalty() {
        // Paper VM A: stride 32 B == CL: aligned elements hit exactly one
        // line each -> 50 loads; the probabilistic model adds 50 * 7/32.
        let spec = StreamingSpec {
            element_bytes: 8,
            num_elements: 200,
            stride_elements: 4,
        };
        let v = view(32);
        assert_eq!(spec.mem_accesses_aligned(&v).unwrap(), 50.0);
        assert!(spec.mem_accesses(&v).unwrap() > 50.0);
        // Dense traversals are identical under both variants.
        let dense = StreamingSpec::contiguous(8, 512);
        assert_eq!(
            dense.mem_accesses(&v).unwrap(),
            dense.mem_accesses_aligned(&v).unwrap()
        );
    }

    #[test]
    fn validation_rejects_zeros() {
        let mut spec = StreamingSpec::contiguous(8, 100);
        spec.element_bytes = 0;
        assert_eq!(
            spec.validate(),
            Err(ModelError::ZeroParameter("element_bytes"))
        );
        let mut spec = StreamingSpec::contiguous(8, 100);
        spec.num_elements = 0;
        assert!(spec.validate().is_err());
        let mut spec = StreamingSpec::contiguous(8, 100);
        spec.stride_elements = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn bigger_stride_means_fewer_references_but_not_fewer_lines_case3() {
        // Within case 3 (S < CL), stride does not change the line count.
        let s1 = StreamingSpec {
            element_bytes: 4,
            num_elements: 4096,
            stride_elements: 1,
        };
        let s2 = StreamingSpec {
            element_bytes: 4,
            num_elements: 4096,
            stride_elements: 4,
        };
        let v = view(64);
        assert_eq!(s1.mem_accesses(&v).unwrap(), s2.mem_accesses(&v).unwrap());
    }
}
