//! Template-based access pattern (paper §III-C, Fig. 2).
//!
//! For structured accesses (stencils, FFT butterflies) the user supplies the
//! exact reference order as a *template*: a sequence of element indices.
//! Elements are converted to cache blocks, then the paper's two-step
//! algorithm runs:
//!
//! 1. a block's **first** appearance costs one main-memory access;
//! 2. a **repeat** appearance costs one access iff the distance to its
//!    previous appearance exceeds the available cache capacity.
//!
//! The paper leaves "distance" informal; we use the LRU *stack distance*
//! (number of distinct blocks referenced since the block's last use), which
//! makes step 2 exact for a fully-associative LRU cache of the same
//! capacity. Computed in `O(L log L)` with a Fenwick tree.

use super::{CacheView, ModelError};
use std::collections::HashMap;

/// Specification of a template-based access: the element size plus the
/// element-granular reference template (already expanded; the Aspen
/// front-end in `dvf-aspen` expands compact `(starts) : step : (ends)`
/// range syntax into this form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateSpec {
    /// Element size `E` in bytes.
    pub element_bytes: u64,
    /// Element indices in reference order.
    pub references: Vec<u64>,
}

/// Decomposition of the template-model estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemplateBreakdown {
    /// Distinct cache blocks touched (= compulsory misses, step 1).
    pub cold_misses: u64,
    /// Re-references whose stack distance exceeded capacity (step 2).
    pub capacity_misses: u64,
    /// Total main-memory accesses.
    pub total: u64,
}

impl TemplateSpec {
    /// Build a spec from element references.
    pub fn new(element_bytes: u64, references: Vec<u64>) -> Self {
        Self {
            element_bytes,
            references,
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.element_bytes == 0 {
            return Err(ModelError::ZeroParameter("element_bytes"));
        }
        if self.references.is_empty() {
            return Err(ModelError::EmptyTemplate);
        }
        Ok(())
    }

    /// Convert the element template into a cache-block template
    /// (`block = ⌊element · E / CL⌋`), collapsing *adjacent* repeats: one
    /// element reference spanning several blocks expands to all of them.
    pub fn block_references(&self, line_bytes: u64) -> Vec<u64> {
        let e = self.element_bytes;
        let mut blocks = Vec::with_capacity(self.references.len());
        for &elem in &self.references {
            let start = elem * e / line_bytes;
            let end = (elem * e + e - 1) / line_bytes;
            for b in start..=end {
                // An element spanning multiple lines touches each of them.
                blocks.push(b);
            }
        }
        blocks
    }

    /// Run the two-step counting algorithm against a cache view.
    pub fn breakdown(&self, cache: &CacheView) -> Result<TemplateBreakdown, ModelError> {
        self.validate()?;
        let blocks = self.block_references(cache.line_bytes());
        let capacity_blocks = cache.effective_blocks();
        Ok(count_template_misses(&blocks, capacity_blocks))
    }

    /// Expected main-memory accesses (`N_ha`) for one pass over the
    /// template.
    pub fn mem_accesses(&self, cache: &CacheView) -> Result<f64, ModelError> {
        Ok(self.breakdown(cache)?.total as f64)
    }

    /// Expected main-memory accesses for `repeat` back-to-back passes over
    /// the template.
    ///
    /// Exact under the LRU-stack model: after the first pass the cache
    /// state at each pass boundary repeats, so every pass from the second
    /// on misses the same amount. Computed from two concatenated passes:
    /// `total = first + (repeat − 1) · (two_pass − first)`.
    pub fn mem_accesses_repeated(&self, cache: &CacheView, repeat: u64) -> Result<f64, ModelError> {
        self.validate()?;
        if repeat == 0 {
            return Ok(0.0);
        }
        let first = self.breakdown(cache)?.total;
        if repeat == 1 {
            return Ok(first as f64);
        }
        let blocks = self.block_references(cache.line_bytes());
        let mut doubled = Vec::with_capacity(blocks.len() * 2);
        doubled.extend_from_slice(&blocks);
        doubled.extend_from_slice(&blocks);
        let two = count_template_misses(&doubled, cache.effective_blocks()).total;
        let steady = two - first;
        Ok(first as f64 + steady as f64 * (repeat - 1) as f64)
    }
}

/// The two-step algorithm over a block-granular template.
///
/// `capacity_blocks` is the "maximum available cache capacity" of step 2,
/// in blocks (fractional capacities arise from cache-sharing ratios).
pub fn count_template_misses(blocks: &[u64], capacity_blocks: f64) -> TemplateBreakdown {
    let mut cold = 0u64;
    let mut capacity = 0u64;

    // Fenwick tree over reference positions; a 1 marks the *latest*
    // position of each currently-tracked distinct block.
    let mut bit = Fenwick::new(blocks.len());
    let mut last_pos: HashMap<u64, usize> = HashMap::new();

    for (t, &b) in blocks.iter().enumerate() {
        match last_pos.get(&b).copied() {
            None => {
                cold += 1;
            }
            Some(prev) => {
                // Distinct blocks referenced strictly between prev and t:
                // count of marked positions in (prev, t).
                let distance = bit.prefix_sum(t) - bit.prefix_sum(prev + 1);
                if distance as f64 >= capacity_blocks {
                    capacity += 1;
                }
                bit.add(prev + 1, -1);
            }
        }
        bit.add(t + 1, 1);
        last_pos.insert(b, t);
    }

    TemplateBreakdown {
        cold_misses: cold,
        capacity_misses: capacity,
        total: cold + capacity,
    }
}

/// Minimal Fenwick (binary indexed) tree over `i64` counts, 1-indexed.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Add `delta` at position `i` (1-indexed).
    fn add(&mut self, mut i: usize, delta: i64) {
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `1..=i`.
    fn prefix_sum(&self, mut i: usize) -> i64 {
        let mut acc = 0;
        while i > 0 {
            acc += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvf_cachesim::CacheConfig;

    fn view(assoc: usize, sets: usize, line: usize) -> CacheView {
        CacheView::exclusive(CacheConfig::new(assoc, sets, line).unwrap())
    }

    #[test]
    fn cold_misses_count_distinct_blocks() {
        let spec = TemplateSpec::new(8, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // CL = 8: each element its own block; capacity 64 blocks: repeats hit.
        let b = spec.breakdown(&view(4, 16, 8)).unwrap();
        assert_eq!(b.cold_misses, 4);
        assert_eq!(b.capacity_misses, 0);
        assert_eq!(b.total, 4);
    }

    #[test]
    fn repeat_beyond_capacity_misses() {
        // Capacity = 2 blocks (1 set, 2 ways). Template touches 3 distinct
        // blocks then revisits the first: stack distance 2 >= 2 -> miss.
        let spec = TemplateSpec::new(8, vec![0, 1, 2, 0]);
        let b = spec.breakdown(&view(2, 1, 8)).unwrap();
        assert_eq!(b.cold_misses, 3);
        assert_eq!(b.capacity_misses, 1);
    }

    #[test]
    fn repeat_within_capacity_hits() {
        let spec = TemplateSpec::new(8, vec![0, 1, 0]);
        // distance of the revisit = 1 < 2.
        let b = spec.breakdown(&view(2, 1, 8)).unwrap();
        assert_eq!(b.capacity_misses, 0);
    }

    #[test]
    fn immediate_repeat_never_misses() {
        let spec = TemplateSpec::new(8, vec![5, 5, 5, 5]);
        let b = spec.breakdown(&view(1, 1, 8)).unwrap();
        assert_eq!(b.total, 1);
    }

    #[test]
    fn elements_smaller_than_line_share_blocks() {
        // E = 8, CL = 32: elements 0..3 share block 0.
        let spec = TemplateSpec::new(8, vec![0, 1, 2, 3]);
        let b = spec.breakdown(&view(4, 16, 32)).unwrap();
        assert_eq!(b.cold_misses, 1);
    }

    #[test]
    fn elements_larger_than_line_span_blocks() {
        // E = 64, CL = 32: element 0 covers blocks 0-1, element 1 blocks 2-3.
        let spec = TemplateSpec::new(64, vec![0, 1]);
        let b = spec.breakdown(&view(4, 16, 32)).unwrap();
        assert_eq!(b.cold_misses, 4);
    }

    #[test]
    fn stack_distance_uses_distinct_blocks() {
        // Template 0 1 1 1 2 0 with capacity 2: the revisit of 0 has seen
        // distinct blocks {1, 2} -> distance 2 >= 2 -> miss. Repeats of 1
        // don't inflate the distance.
        let spec = TemplateSpec::new(8, vec![0, 1, 1, 1, 2, 0]);
        let b = spec.breakdown(&view(2, 1, 8)).unwrap();
        assert_eq!(b.cold_misses, 3);
        assert_eq!(b.capacity_misses, 1);

        // With capacity 4 the same revisit hits.
        let b = spec.breakdown(&view(4, 1, 8)).unwrap();
        assert_eq!(b.capacity_misses, 0);
    }

    #[test]
    fn matches_fully_associative_lru_simulation() {
        // The stack-distance criterion is exact for fully-associative LRU:
        // cross-check against the simulator on a pseudo-random template.
        use dvf_cachesim::{simulate, MemRef, Trace};
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 64
        };
        let refs: Vec<u64> = (0..2000).map(|_| next()).collect();
        let spec = TemplateSpec::new(32, refs.clone());

        // Fully associative: 1 set, 16 ways, 32-B lines.
        let cfg = CacheConfig::new(16, 1, 32).unwrap();
        let model = spec.breakdown(&CacheView::exclusive(cfg)).unwrap();

        let mut trace = Trace::new();
        let ds = trace.registry.register("X");
        for &e in &refs {
            trace.push(MemRef::read(ds, e * 32));
        }
        let sim = simulate(&trace, cfg);
        assert_eq!(model.total, sim.ds(ds).misses);
    }

    #[test]
    fn repeated_passes_when_template_fits_cache() {
        // Template fits: repeats after the first are free.
        let spec = TemplateSpec::new(8, vec![0, 1, 2, 3]);
        let v = view(4, 16, 8); // 64 blocks
        let one = spec.mem_accesses(&v).unwrap();
        let five = spec.mem_accesses_repeated(&v, 5).unwrap();
        assert_eq!(one, 4.0);
        assert_eq!(five, 4.0);
    }

    #[test]
    fn repeated_passes_when_template_thrashes() {
        // Capacity 2 blocks, template cycles over 4: every pass reloads
        // everything.
        let spec = TemplateSpec::new(8, vec![0, 1, 2, 3]);
        let v = view(2, 1, 8);
        let one = spec.mem_accesses(&v).unwrap();
        let four = spec.mem_accesses_repeated(&v, 4).unwrap();
        assert_eq!(one, 4.0);
        assert_eq!(four, 16.0);
    }

    #[test]
    fn repeated_matches_explicit_concatenation() {
        // Cross-check the extrapolation against literally repeating refs.
        let refs: Vec<u64> = (0..50).map(|i| (i * 7) % 13).collect();
        let spec = TemplateSpec::new(16, refs.clone());
        let v = view(2, 2, 16); // 4 blocks
        for repeat in [1u64, 2, 3, 5] {
            let fast = spec.mem_accesses_repeated(&v, repeat).unwrap();
            let mut long = Vec::new();
            for _ in 0..repeat {
                long.extend_from_slice(&refs);
            }
            let slow = TemplateSpec::new(16, long).mem_accesses(&v).unwrap();
            assert_eq!(fast, slow, "repeat = {repeat}");
        }
    }

    #[test]
    fn repeat_zero_is_zero() {
        let spec = TemplateSpec::new(8, vec![0, 1]);
        assert_eq!(spec.mem_accesses_repeated(&view(2, 1, 8), 0).unwrap(), 0.0);
    }

    #[test]
    fn empty_template_rejected() {
        let spec = TemplateSpec::new(8, vec![]);
        assert_eq!(spec.validate(), Err(ModelError::EmptyTemplate));
        let spec = TemplateSpec::new(0, vec![1]);
        assert!(spec.validate().is_err());
    }

    #[test]
    fn fenwick_basics() {
        let mut f = Fenwick::new(8);
        f.add(3, 1);
        f.add(5, 2);
        assert_eq!(f.prefix_sum(2), 0);
        assert_eq!(f.prefix_sum(3), 1);
        assert_eq!(f.prefix_sum(8), 3);
        f.add(3, -1);
        assert_eq!(f.prefix_sum(8), 2);
    }
}
