//! Learned `N_ha` evaluation: pattern specs → synthetic streams →
//! `dvf-learn` features → model prediction.
//!
//! The closed-form CGPMAC models (`crate::patterns`) answer "how many
//! memory accesses will this pattern cause" analytically. This module
//! answers the same question through the learned predictor instead: each
//! resolved [`PatternSpec`] is expanded into a *deterministic* synthetic
//! reference stream (the literal accesses the paper's pseudocode
//! describes), featurized in-stream by [`FeatureSink`] — no trace is
//! materialized — and handed to the [`NhaModel`]. `dvf eval --predict`
//! and `dvf sweep --predict` select this path per evaluation.
//!
//! Two approximations keep an evaluation bounded:
//!
//! * Streams are truncated at [`MAX_SYNTH_REFS`] references and the
//!   prediction is scaled back up by the truncation factor. Every
//!   pattern's miss count is asymptotically linear in the truncated
//!   dimension (stream length, iterations, template repeats, reuses), so
//!   the first-order correction is exact in the regimes the cap can
//!   reach (a structure that large no longer fits any modeled cache).
//! * The cache-sharing ratio `r` of a [`CacheView`] is applied by
//!   shrinking the geometry to the nearest power-of-two set count of
//!   `NA·r` — the learned features see the same "this structure owns a
//!   fraction of the cache" geometry the closed forms model analytically.

use crate::patterns::CacheView;
use dvf_aspen::{PatternSpec, ReuseScenario};
use dvf_cachesim::{CacheConfig, DsId, MemRef};
use dvf_learn::{FeatureSink, NhaModel};
use std::hash::{Hash, Hasher};

/// Hard cap on synthesized references per pattern evaluation (then the
/// prediction is rescaled by the truncation factor).
pub const MAX_SYNTH_REFS: u64 = 1 << 22;

/// Address base of the interfering structure in reuse streams, far above
/// any target footprint so the two never alias a cache block.
const INTERFERING_BASE: u64 = 1 << 44;

/// SplitMix64 — deterministic generator for the random pattern's visit
/// sequence (same construction the oracle workloads use).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Stable memo fingerprint of one predicted evaluation: pattern
/// parameters × target size × model identity. Lives in a key space
/// disjoint from the closed forms' ([`crate::memo::PatternKey`] keeps a
/// dedicated `Predicted` variant), so `--predict` sweeps and classic
/// sweeps never read each other's cached numbers.
pub fn memo_fingerprint(pattern: &PatternSpec, data_bytes: u64, model: &NhaModel) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    model.seed.hash(&mut h);
    model.smoke.hash(&mut h);
    model.samples.hash(&mut h);
    data_bytes.hash(&mut h);
    match pattern {
        PatternSpec::Streaming {
            element_bytes,
            count,
            stride_elements,
        } => (0u8, element_bytes, count, stride_elements).hash(&mut h),
        PatternSpec::Random {
            elements,
            element_bytes,
            k,
            iters,
            ratio,
        } => (1u8, elements, element_bytes, k, iters, ratio.to_bits()).hash(&mut h),
        PatternSpec::Template {
            element_bytes,
            refs,
            repeat,
        } => (2u8, element_bytes, refs, repeat).hash(&mut h),
        PatternSpec::Reuse {
            interfering_bytes,
            reuses,
            scenario,
        } => (
            3u8,
            interfering_bytes,
            reuses,
            matches!(scenario, ReuseScenario::Concurrent),
        )
            .hash(&mut h),
    }
    h.finish()
}

/// Apply a sharing ratio `r < 1` by shrinking the set count to the
/// nearest power of two of `NA·r` (at least one set). The feature
/// assembly depends on capacity and block count, so this is how the
/// learned path sees "this structure competes for a fraction of the
/// cache".
fn effective_config(view: &CacheView) -> CacheConfig {
    if view.ratio >= 1.0 {
        return view.config;
    }
    let target = (view.config.num_sets as f64 * view.ratio).max(1.0);
    let exp = target.log2().round().max(0.0) as u32;
    let sets = (1usize << exp.min(63)).min(view.config.num_sets);
    CacheConfig {
        num_sets: sets,
        ..view.config
    }
}

/// Emit up to `cap` target references into the sink, tracking how many
/// the untruncated pattern would have issued.
struct SynthStream {
    sink: FeatureSink,
    emitted: u64,
    cap: u64,
}

impl SynthStream {
    fn new(cap: u64) -> Self {
        Self {
            sink: FeatureSink::new(),
            emitted: 0,
            cap,
        }
    }

    /// Room left in the capped stream (interfering refs count too: the
    /// cap bounds the whole featurization pass, not just the target).
    fn full(&self) -> bool {
        self.emitted >= self.cap
    }

    fn emit(&mut self, ds: DsId, addr: u64) {
        self.sink.record(MemRef::read(ds, addr));
        self.emitted += 1;
    }
}

const TARGET: DsId = DsId(0);
const OTHER: DsId = DsId(1);

/// Predict `N_ha` for one resolved pattern under a cache view.
///
/// Deterministic in (pattern, `data_bytes`, view geometry, model): the
/// synthetic stream is seeded from the pattern parameters alone.
pub fn predict_pattern(
    model: &NhaModel,
    pattern: &PatternSpec,
    data_bytes: u64,
    view: &CacheView,
) -> f64 {
    let config = effective_config(view);
    let line = config.line_bytes as u64;
    let mut s = SynthStream::new(MAX_SYNTH_REFS);

    // `natural` counts the target references the un-truncated pattern
    // would issue; the prediction on the truncated stream scales by
    // natural / emitted-target.
    let natural: u64 = match pattern {
        PatternSpec::Streaming {
            element_bytes,
            count,
            stride_elements,
        } => {
            let step = (element_bytes * stride_elements.max(&1)).max(1);
            for i in 0..*count {
                if s.full() {
                    break;
                }
                s.emit(TARGET, i * step);
            }
            *count
        }
        PatternSpec::Random {
            elements,
            element_bytes,
            k,
            iters,
            ..
        } => {
            let e = (*element_bytes).max(1);
            // Construction pass: every element is touched once.
            for i in 0..*elements {
                if s.full() {
                    break;
                }
                s.emit(TARGET, i * e);
            }
            // Visit phase: k uniform picks per iteration, seeded from
            // the pattern parameters (not wall clock), so the same spec
            // always featurizes identically.
            let mut rng = SplitMix64(elements ^ (k << 24) ^ (iters << 48) | 1);
            'outer: for _ in 0..*iters {
                for _ in 0..*k {
                    if s.full() {
                        break 'outer;
                    }
                    let idx = if *elements == 0 {
                        0
                    } else {
                        rng.next() % *elements
                    };
                    s.emit(TARGET, idx * e);
                }
            }
            elements.saturating_add(k.saturating_mul(*iters))
        }
        PatternSpec::Template {
            element_bytes,
            refs,
            repeat,
        } => {
            let e = (*element_bytes).max(1);
            'outer: for _ in 0..*repeat {
                for &r in refs {
                    if s.full() {
                        break 'outer;
                    }
                    s.emit(TARGET, r * e);
                }
            }
            (refs.len() as u64).saturating_mul(*repeat)
        }
        PatternSpec::Reuse {
            interfering_bytes,
            reuses,
            scenario,
        } => {
            let target_blocks = data_bytes.div_ceil(line).max(1);
            let other_blocks = interfering_bytes.div_ceil(line);
            // Initial load of the target.
            for b in 0..target_blocks {
                if s.full() {
                    break;
                }
                s.emit(TARGET, b * line);
            }
            let mut other_cursor = 0u64;
            'outer: for _ in 0..*reuses {
                match scenario {
                    // Exclusive: the interference runs to completion
                    // between target passes.
                    ReuseScenario::Exclusive => {
                        for b in 0..other_blocks {
                            if s.full() {
                                break 'outer;
                            }
                            s.emit(OTHER, INTERFERING_BASE + b * line);
                        }
                        for b in 0..target_blocks {
                            if s.full() {
                                break 'outer;
                            }
                            s.emit(TARGET, b * line);
                        }
                    }
                    // Concurrent: interfering blocks interleave with the
                    // target pass, cycling through the whole interfering
                    // footprint.
                    ReuseScenario::Concurrent => {
                        for b in 0..target_blocks {
                            if s.full() {
                                break 'outer;
                            }
                            if other_blocks > 0 {
                                s.emit(
                                    OTHER,
                                    INTERFERING_BASE + (other_cursor % other_blocks) * line,
                                );
                                other_cursor += 1;
                                if s.full() {
                                    break 'outer;
                                }
                            }
                            s.emit(TARGET, b * line);
                        }
                    }
                }
            }
            target_blocks.saturating_mul(reuses.saturating_add(1))
        }
    };

    let fv = s.sink.finish().ds(TARGET);
    if fv.accesses == 0 || natural == 0 {
        return 0.0;
    }
    dvf_obs::add("learn.predict.refs", fv.accesses);
    let scale = natural as f64 / fv.accesses as f64;
    model.predict(&fv, config) * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvf_learn::{ErrorBound, FEATURE_DIM};

    fn intercept_model() -> NhaModel {
        NhaModel {
            seed: 1,
            smoke: true,
            samples: 1,
            folds: 2,
            lambda: 1e-3,
            weights: [0.0; FEATURE_DIM],
            stumps: Vec::new(),
            bound: ErrorBound {
                max_rel_err: 0.0,
                p95_rel_err: 0.0,
                mean_rel_err: 0.0,
            },
        }
    }

    fn view() -> CacheView {
        CacheView::exclusive(CacheConfig::new(8, 512, 64).unwrap())
    }

    #[test]
    fn prediction_is_deterministic() {
        let model = intercept_model();
        let p = PatternSpec::Random {
            elements: 4096,
            element_bytes: 8,
            k: 16,
            iters: 100,
            ratio: 1.0,
        };
        let a = predict_pattern(&model, &p, 4096 * 8, &view());
        let b = predict_pattern(&model, &p, 4096 * 8, &view());
        assert_eq!(a.to_bits(), b.to_bits());
        assert!(a.is_finite() && a >= 0.0);
    }

    #[test]
    fn streaming_beyond_cache_predicts_near_cold_misses() {
        // With zero weights and no stumps the model answers exactly the
        // reuse-distance estimate: a contiguous stream far larger than
        // the cache is all cold misses at line granularity.
        let model = intercept_model();
        let n = 1u64 << 16;
        let p = PatternSpec::Streaming {
            element_bytes: 8,
            count: n,
            stride_elements: 1,
        };
        let predicted = predict_pattern(&model, &p, n * 8, &view());
        let lines = (n * 8) / 64;
        let rel = (predicted - lines as f64).abs() / lines as f64;
        assert!(rel < 0.05, "predicted {predicted}, expected ≈{lines}");
    }

    #[test]
    fn truncation_scales_linearly() {
        // A stream 4× the cap must predict ≈4× the capped stream's
        // misses (the scale factor at work).
        let model = intercept_model();
        let small = PatternSpec::Streaming {
            element_bytes: 8,
            count: MAX_SYNTH_REFS,
            stride_elements: 8,
        };
        let big = PatternSpec::Streaming {
            element_bytes: 8,
            count: 4 * MAX_SYNTH_REFS,
            stride_elements: 8,
        };
        let ps = predict_pattern(&model, &small, MAX_SYNTH_REFS * 8, &view());
        let pb = predict_pattern(&model, &big, 4 * MAX_SYNTH_REFS * 8, &view());
        let ratio = pb / ps;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn sharing_ratio_shrinks_the_geometry() {
        let full = CacheView::exclusive(CacheConfig::new(8, 512, 64).unwrap());
        let half = CacheView::shared(full.config, 0.5);
        assert_eq!(effective_config(&full).num_sets, 512);
        assert_eq!(effective_config(&half).num_sets, 256);
        let sliver = CacheView::shared(full.config, 1e-6);
        assert_eq!(effective_config(&sliver).num_sets, 1);
    }

    #[test]
    fn fingerprints_separate_patterns_and_models() {
        let m1 = intercept_model();
        let mut m2 = intercept_model();
        m2.seed = 9;
        let p = PatternSpec::Streaming {
            element_bytes: 8,
            count: 100,
            stride_elements: 1,
        };
        let q = PatternSpec::Streaming {
            element_bytes: 8,
            count: 101,
            stride_elements: 1,
        };
        assert_ne!(
            memo_fingerprint(&p, 800, &m1),
            memo_fingerprint(&q, 808, &m1)
        );
        assert_ne!(
            memo_fingerprint(&p, 800, &m1),
            memo_fingerprint(&p, 800, &m2)
        );
    }
}
