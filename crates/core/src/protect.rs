//! DVF-guided selective protection.
//!
//! The point of quantifying per-structure vulnerability is to spend a
//! *limited* protection budget where it matters: "we use DVF to determine
//! if a data structure is vulnerable and whether we should enforce extra
//! protection" (paper §III-A). This module turns a [`DvfReport`] into a
//! protection plan: given a byte budget (e.g. how much data a software
//! checkpoint, a replicated allocation, or an ABFT checksum can cover)
//! and the residual-vulnerability factor of the mechanism, pick the
//! structures that minimize total residual DVF.
//!
//! Greedy by DVF density (DVF per protected byte) is optimal here because
//! protecting a structure scales its DVF by a constant factor
//! independently of the others — the knapsack is separable. (Greedy is
//! exact for the fractional relaxation; for whole structures we keep the
//! classical greedy and note it in [`plan_protection`].)

use crate::dvf::DvfReport;

/// A protection decision for one structure.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectionChoice {
    /// Structure name.
    pub name: String,
    /// Its footprint.
    pub size_bytes: u64,
    /// DVF before protection.
    pub dvf_before: f64,
    /// DVF after protection (`dvf_before · residual_factor` if chosen).
    pub dvf_after: f64,
    /// Whether the budget covers it.
    pub protected: bool,
}

/// The outcome of planning.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectionPlan {
    /// Per-structure decisions, in greedy (density) order.
    pub choices: Vec<ProtectionChoice>,
    /// Bytes of budget consumed.
    pub bytes_used: u64,
    /// Application DVF before any protection.
    pub dvf_before: f64,
    /// Application DVF under this plan.
    pub dvf_after: f64,
}

impl ProtectionPlan {
    /// Fraction of vulnerability removed: `1 − after/before`.
    pub fn reduction(&self) -> f64 {
        if self.dvf_before == 0.0 {
            0.0
        } else {
            1.0 - self.dvf_after / self.dvf_before
        }
    }
}

/// Plan protection for `report` under `budget_bytes`, where protecting a
/// structure multiplies its DVF by `residual_factor` (e.g.
/// `0.02 / 5000` when upgrading unprotected DRAM pages to
/// Chipkill-equivalent replication, or `0.0` for full redundancy).
///
/// Structures are taken greedily by *avoided DVF per byte*. Greedy on
/// whole items is within one item of optimal for this separable knapsack;
/// for the structure counts of real applications (a handful) this is the
/// planning rule a practitioner would apply by hand.
pub fn plan_protection(
    report: &DvfReport,
    budget_bytes: u64,
    residual_factor: f64,
) -> ProtectionPlan {
    assert!(
        (0.0..=1.0).contains(&residual_factor),
        "residual factor must be in [0, 1], got {residual_factor}"
    );
    let mut order: Vec<usize> = (0..report.structures.len()).collect();
    let density = |i: usize| {
        let (p, v) = &report.structures[i];
        let avoided = v * (1.0 - residual_factor);
        avoided / (p.size_bytes.max(1) as f64)
    };
    order.sort_by(|&a, &b| density(b).total_cmp(&density(a)));

    let mut remaining = budget_bytes;
    let mut choices = Vec::with_capacity(order.len());
    let mut dvf_after = 0.0;
    for i in order {
        let (p, v) = &report.structures[i];
        let fits = p.size_bytes <= remaining && *v > 0.0 && residual_factor < 1.0;
        let after = if fits { v * residual_factor } else { *v };
        if fits {
            remaining -= p.size_bytes;
        }
        dvf_after += after;
        choices.push(ProtectionChoice {
            name: p.name.clone(),
            size_bytes: p.size_bytes,
            dvf_before: *v,
            dvf_after: after,
            protected: fits,
        });
    }

    ProtectionPlan {
        bytes_used: budget_bytes - remaining,
        dvf_before: report.dvf_app(),
        dvf_after,
        choices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvf::{DataStructureProfile, DvfReport};
    use crate::fit::{EccScheme, FitRate};

    fn report() -> DvfReport {
        DvfReport::compute(
            "app",
            FitRate::of(EccScheme::None),
            10.0,
            vec![
                // Small but hot: highest DVF density.
                DataStructureProfile::new("hot", 4_096, 1e6),
                // Big and warm.
                DataStructureProfile::new("warm", 1 << 20, 1e5),
                // Big and cold.
                DataStructureProfile::new("cold", 1 << 20, 1e2),
            ],
        )
    }

    #[test]
    fn zero_budget_protects_nothing() {
        let plan = plan_protection(&report(), 0, 0.0);
        assert!(plan.choices.iter().all(|c| !c.protected));
        assert_eq!(plan.dvf_after, plan.dvf_before);
        assert_eq!(plan.reduction(), 0.0);
        assert_eq!(plan.bytes_used, 0);
    }

    #[test]
    fn full_budget_protects_everything() {
        let plan = plan_protection(&report(), u64::MAX, 0.0);
        assert!(plan.choices.iter().all(|c| c.protected));
        assert_eq!(plan.dvf_after, 0.0);
        assert!((plan.reduction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_prefers_density_over_size() {
        // Budget covers exactly the hot small structure.
        let plan = plan_protection(&report(), 4_096, 0.0);
        let hot = plan.choices.iter().find(|c| c.name == "hot").unwrap();
        assert!(hot.protected);
        assert_eq!(plan.bytes_used, 4_096);
        // Protecting the densest structure removes most of the removable
        // DVF per byte spent.
        assert!(plan.reduction() > 0.0);
    }

    #[test]
    fn partial_residual_scales_dvf() {
        let r = report();
        let plan = plan_protection(&r, u64::MAX, 0.5);
        assert!((plan.dvf_after - 0.5 * plan.dvf_before).abs() < 1e-12 * plan.dvf_before);
    }

    #[test]
    fn residual_one_is_a_no_op() {
        let plan = plan_protection(&report(), u64::MAX, 1.0);
        assert!(plan.choices.iter().all(|c| !c.protected));
        assert_eq!(plan.dvf_after, plan.dvf_before);
    }

    #[test]
    fn plan_conserves_dvf_accounting() {
        let plan = plan_protection(&report(), 1 << 20, 0.1);
        let sum: f64 = plan.choices.iter().map(|c| c.dvf_after).sum();
        assert!((sum - plan.dvf_after).abs() < 1e-15 * plan.dvf_after.max(1.0));
        assert!(plan.bytes_used <= 1 << 20);
    }

    #[test]
    #[should_panic(expected = "residual factor")]
    fn rejects_bad_factor() {
        let _ = plan_protection(&report(), 0, 1.5);
    }
}
