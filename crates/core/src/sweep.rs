//! Parameter sweeps for DVF trade-off studies (paper §V).
//!
//! Two studies are packaged here:
//!
//! * **ECC protection sweep** (use case B, Fig. 7): vary the performance
//!   degradation an ECC mechanism is allowed to cost and observe DVF.
//! * **Generic parallel sweeps**: fan a pure function over a parameter
//!   grid across threads — used by the figure harness to sweep problem
//!   sizes and cache configurations.

use crate::dvf;
use crate::fit::{EccScheme, FitRate};

/// One point of the ECC trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccPoint {
    /// Performance degradation `d` (0.05 = 5 %).
    pub degradation: f64,
    /// Effective failure rate at this operating point.
    pub fit: FitRate,
    /// Resulting DVF.
    pub dvf: f64,
}

/// Model of an ECC mechanism's protection-versus-overhead trade-off.
///
/// The paper sweeps "a range of possible performance degradations when
/// applying ECC" (Fig. 7) and finds DVF minimized near 5 % degradation:
/// protection lowers the failure rate, but every additional percent of
/// slowdown extends the window during which faults can strike. We model
/// the mechanism as buying protection linearly with invested overhead
/// until it reaches the scheme's full strength at
/// [`full_protection_degradation`], after which extra slowdown brings no
/// further FIT reduction — reproducing the U-shaped curve with its minimum
/// at that point.
///
/// [`full_protection_degradation`]: EccTradeoff::full_protection_degradation
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccTradeoff {
    /// The scheme whose full-strength FIT applies once fully effective.
    pub scheme: EccScheme,
    /// Degradation at which the scheme reaches full strength (paper's
    /// observed optimum: 0.05).
    pub full_protection_degradation: f64,
}

impl EccTradeoff {
    /// Trade-off with the paper's 5 % full-protection point.
    pub fn new(scheme: EccScheme) -> Self {
        Self {
            scheme,
            full_protection_degradation: 0.05,
        }
    }

    /// Effective FIT at degradation `d`: linear interpolation from the
    /// unprotected rate at `d = 0` down to the scheme's rate at full
    /// strength, constant beyond.
    ///
    /// A `full_protection_degradation` of zero (or below) models a scheme
    /// that is fully effective with no overhead at all, so the scheme's
    /// full-strength rate applies at every degradation — the naive `0/0`
    /// would otherwise poison the curve with NaN at `d = 0`.
    pub fn effective_fit(&self, degradation: f64) -> FitRate {
        let base = EccScheme::None.fit_per_mbit();
        let full = self.scheme.fit_per_mbit();
        let frac = if self.full_protection_degradation <= 0.0 {
            1.0
        } else {
            (degradation / self.full_protection_degradation).clamp(0.0, 1.0)
        };
        FitRate(base + (full - base) * frac)
    }

    /// Sweep the trade-off for one data structure.
    ///
    /// `base_time_s` is the unprotected execution time; at degradation `d`
    /// the run takes `base_time_s * (1 + d)`.
    pub fn sweep(
        &self,
        base_time_s: f64,
        size_bytes: u64,
        n_ha: f64,
        degradations: &[f64],
    ) -> Vec<EccPoint> {
        degradations
            .iter()
            .map(|&d| {
                let fit = self.effective_fit(d);
                let time = base_time_s * (1.0 + d);
                EccPoint {
                    degradation: d,
                    fit,
                    dvf: dvf::dvf_d(fit, time, size_bytes, n_ha),
                }
            })
            .collect()
    }
}

/// Evenly spaced degradations `0 ..= max` with `steps` intervals
/// (Fig. 7 uses 0–30 %).
///
/// `steps == 0` degenerates to the single point `[0.0]` rather than the
/// `0/0 = NaN` grid a literal reading of the formula would produce.
pub fn degradation_grid(max: f64, steps: usize) -> Vec<f64> {
    if steps == 0 {
        return vec![0.0];
    }
    (0..=steps).map(|i| max * i as f64 / steps as f64).collect()
}

/// Sensitivity of a model output to one input parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Parameter name.
    pub param: String,
    /// Parameter's base value.
    pub value: f64,
    /// Elasticity `(∂f/∂p) · (p / f)` at the base point: the % change in
    /// the output per % change in the parameter. `±1` means linear,
    /// `0` insensitive, large magnitudes flag thresholds (e.g. FT's
    /// cache-capacity cliff).
    pub elasticity: f64,
}

/// Central-difference elasticities of `f` with respect to each parameter,
/// evaluated at `base` with relative step `rel_step` (e.g. `0.01`).
///
/// DVF's own factors are all elasticity-1 by construction (Eq. 1 is a
/// product); the interesting applications are the *model inputs* —
/// cache capacity, problem size, stride — where elasticities locate the
/// regimes the paper's Fig. 5 sensitivity discussion describes.
pub fn elasticities<F>(f: F, names: &[&str], base: &[f64], rel_step: f64) -> Vec<Sensitivity>
where
    F: Fn(&[f64]) -> f64,
{
    assert_eq!(names.len(), base.len(), "one name per parameter");
    assert!(rel_step > 0.0, "step must be positive");
    let f0 = f(base);
    names
        .iter()
        .zip(base)
        .enumerate()
        .map(|(i, (name, &p))| {
            let h = p.abs().max(1e-12) * rel_step;
            let mut up = base.to_vec();
            up[i] = p + h;
            let mut down = base.to_vec();
            down[i] = p - h;
            let derivative = (f(&up) - f(&down)) / (2.0 * h);
            let elasticity = if f0 == 0.0 { 0.0 } else { derivative * p / f0 };
            Sensitivity {
                param: (*name).to_owned(),
                value: p,
                elasticity,
            }
        })
        .collect()
}

/// Map `f` over `items` in parallel with scoped threads, preserving order.
///
/// Intended for embarrassingly parallel model sweeps (each evaluation is
/// pure and takes microseconds to milliseconds); chunks the input across
/// up to `available_parallelism` workers.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    dvf_obs::add("sweep.par.points", items.len() as u64);
    dvf_obs::add("sweep.par.workers", workers as u64);
    let chunk = items.len().div_ceil(workers);
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot_chunk, item_chunk) in results.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_fit_interpolates() {
        let t = EccTradeoff::new(EccScheme::Secded);
        assert_eq!(t.effective_fit(0.0).0, 5000.0);
        assert_eq!(t.effective_fit(0.05).0, 1300.0);
        assert_eq!(t.effective_fit(0.30).0, 1300.0);
        let half = t.effective_fit(0.025).0;
        assert!((half - (5000.0 + 1300.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_is_u_shaped_with_minimum_at_full_protection() {
        let t = EccTradeoff::new(EccScheme::Secded);
        let grid = degradation_grid(0.30, 30);
        let points = t.sweep(10.0, 1 << 20, 1e4, &grid);
        let min = points
            .iter()
            .min_by(|a, b| a.dvf.total_cmp(&b.dvf))
            .unwrap();
        assert!(
            (min.degradation - 0.05).abs() < 1e-9,
            "min at {}",
            min.degradation
        );
        // Decreasing before the minimum, increasing after.
        assert!(points[0].dvf > points[5].dvf);
        assert!(points[30].dvf > points[5].dvf);
    }

    #[test]
    fn chipkill_dominates_secded_everywhere_past_zero() {
        let grid = degradation_grid(0.30, 30);
        let s = EccTradeoff::new(EccScheme::Secded).sweep(10.0, 1 << 20, 1e4, &grid);
        let c = EccTradeoff::new(EccScheme::ChipkillCorrect).sweep(10.0, 1 << 20, 1e4, &grid);
        for (ps, pc) in s.iter().zip(&c).skip(1) {
            assert!(pc.dvf < ps.dvf);
        }
        // At d = 0 neither scheme is effective yet: identical DVF.
        assert!((s[0].dvf - c[0].dvf).abs() < 1e-12 * s[0].dvf);
    }

    #[test]
    fn effective_fit_with_zero_protection_point_is_finite() {
        // full_protection_degradation == 0 used to evaluate 0/0 at d = 0.
        let t = EccTradeoff {
            scheme: EccScheme::Secded,
            full_protection_degradation: 0.0,
        };
        // Instant full protection: the scheme's rate applies everywhere.
        assert_eq!(t.effective_fit(0.0).0, 1300.0);
        assert_eq!(t.effective_fit(0.05).0, 1300.0);
        assert!(t.effective_fit(0.0).0.is_finite());
    }

    #[test]
    fn degradation_grid_zero_steps_is_finite() {
        // steps == 0 used to yield a single-NaN grid via 0/0.
        let g = degradation_grid(0.3, 0);
        assert_eq!(g, vec![0.0]);
        // And the degenerate grid stays usable downstream.
        let points = EccTradeoff::new(EccScheme::Secded).sweep(10.0, 1 << 20, 1e4, &g);
        assert_eq!(points.len(), 1);
        assert!(points[0].dvf.is_finite());
    }

    #[test]
    fn degradation_grid_spacing() {
        let g = degradation_grid(0.3, 30);
        assert_eq!(g.len(), 31);
        assert_eq!(g[0], 0.0);
        assert!((g[30] - 0.3).abs() < 1e-12);
        assert!((g[1] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn elasticities_of_a_monomial() {
        // f = a^2 * b / c: elasticities 2, 1, -1.
        let f = |p: &[f64]| p[0] * p[0] * p[1] / p[2];
        let s = elasticities(f, &["a", "b", "c"], &[3.0, 5.0, 2.0], 1e-4);
        assert!((s[0].elasticity - 2.0).abs() < 1e-6);
        assert!((s[1].elasticity - 1.0).abs() < 1e-6);
        assert!((s[2].elasticity + 1.0).abs() < 1e-6);
    }

    #[test]
    fn dvf_factors_are_all_elasticity_one() {
        // Eq. 1 is a pure product: every factor has elasticity exactly 1.
        let f = |p: &[f64]| crate::dvf::dvf_d(FitRate(p[0]), p[1], (p[2] * 1024.0) as u64, p[3]);
        let s = elasticities(
            f,
            &["fit", "time", "size_kib", "n_ha"],
            &[5000.0, 10.0, 64.0, 1e4],
            1e-3,
        );
        for sens in &s {
            assert!(
                (sens.elasticity - 1.0).abs() < 0.05,
                "{}: {}",
                sens.param,
                sens.elasticity
            );
        }
    }

    #[test]
    fn insensitive_parameter_has_zero_elasticity() {
        let f = |p: &[f64]| p[0] * 2.0; // ignores p[1]
        let s = elasticities(f, &["x", "dead"], &[4.0, 7.0], 1e-4);
        assert!(s[1].elasticity.abs() < 1e-12);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }
}
