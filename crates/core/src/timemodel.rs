//! Aspen-style execution-time modeling.
//!
//! DVF needs the execution time `T` (Eq. 1). The paper obtains it either
//! by measurement or from Aspen's performance model. For deterministic,
//! machine-independent reproduction we provide a small roofline-style
//! model in the spirit of Aspen's abstract machine: an application phase
//! is characterized by its flop count and its main-memory traffic, the
//! machine by a compute rate and a memory bandwidth, and the phase time is
//! the larger of the two resource times (perfect overlap), as in Aspen's
//! resource semantics.

/// An abstract machine: the subset of an Aspen machine model that the DVF
/// workflow needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineModel {
    /// Peak floating-point rate in flop/s.
    pub flops_per_sec: f64,
    /// Main-memory bandwidth in bytes/s.
    pub mem_bytes_per_sec: f64,
}

impl MachineModel {
    /// A deliberately modest single-core machine, used as the deterministic
    /// default for the reproduction figures: 1 Gflop/s, 4 GB/s.
    pub const DEFAULT: MachineModel = MachineModel {
        flops_per_sec: 1e9,
        mem_bytes_per_sec: 4e9,
    };

    /// Validate rates.
    pub fn validate(&self) -> Result<(), String> {
        if !self.flops_per_sec.is_finite() || self.flops_per_sec <= 0.0 {
            return Err(format!(
                "flops_per_sec must be > 0, got {}",
                self.flops_per_sec
            ));
        }
        if !self.mem_bytes_per_sec.is_finite() || self.mem_bytes_per_sec <= 0.0 {
            return Err(format!(
                "mem_bytes_per_sec must be > 0, got {}",
                self.mem_bytes_per_sec
            ));
        }
        Ok(())
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Resource demands of one application (or phase): flops executed plus
/// bytes moved to/from main memory.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceDemand {
    /// Floating-point operations.
    pub flops: f64,
    /// Main-memory traffic in bytes (typically `N_ha · CL` summed over the
    /// data structures).
    pub mem_bytes: f64,
}

impl ResourceDemand {
    /// Demand from main-memory access counts: `accesses · line_bytes`.
    pub fn from_accesses(flops: f64, mem_accesses: f64, line_bytes: u64) -> Self {
        Self {
            flops,
            mem_bytes: mem_accesses * line_bytes as f64,
        }
    }

    /// Aspen-style execution time: resources proceed concurrently, the
    /// slower one dominates.
    pub fn time_on(&self, machine: &MachineModel) -> f64 {
        let t_flops = self.flops / machine.flops_per_sec;
        let t_mem = self.mem_bytes / machine.mem_bytes_per_sec;
        t_flops.max(t_mem)
    }

    /// Combine two phases executed one after the other.
    pub fn plus(&self, other: &ResourceDemand) -> ResourceDemand {
        ResourceDemand {
            flops: self.flops + other.flops,
            mem_bytes: self.mem_bytes + other.mem_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_phase() {
        let m = MachineModel {
            flops_per_sec: 1e9,
            mem_bytes_per_sec: 1e12,
        };
        let d = ResourceDemand {
            flops: 2e9,
            mem_bytes: 1e6,
        };
        assert!((d.time_on(&m) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_phase() {
        let m = MachineModel {
            flops_per_sec: 1e15,
            mem_bytes_per_sec: 4e9,
        };
        let d = ResourceDemand {
            flops: 1e6,
            mem_bytes: 8e9,
        };
        assert!((d.time_on(&m) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_accesses_multiplies_line() {
        let d = ResourceDemand::from_accesses(0.0, 100.0, 64);
        assert_eq!(d.mem_bytes, 6400.0);
    }

    #[test]
    fn phases_add() {
        let a = ResourceDemand {
            flops: 1.0,
            mem_bytes: 2.0,
        };
        let b = ResourceDemand {
            flops: 3.0,
            mem_bytes: 4.0,
        };
        let c = a.plus(&b);
        assert_eq!(c.flops, 4.0);
        assert_eq!(c.mem_bytes, 6.0);
    }

    #[test]
    fn default_machine_validates() {
        assert!(MachineModel::default().validate().is_ok());
        let bad = MachineModel {
            flops_per_sec: 0.0,
            ..MachineModel::DEFAULT
        };
        assert!(bad.validate().is_err());
    }
}
