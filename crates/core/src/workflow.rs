//! The DVF calculation workflow (paper Fig. 3).
//!
//! ```text
//! hardware spec ──┐
//!                 ├─ extended Aspen program ─▶ parser ─▶ N_ha models ─▶ DVF
//! app model ──────┘
//! ```
//!
//! `dvf-aspen` parses and resolves the program into plain-number
//! [`AppSpec`]/[`MachineSpec`] values; this module maps each resolved
//! access onto the matching CGPMAC pattern model, accumulates per-data-
//! structure main-memory access counts, derives the execution time from
//! the Aspen machine model (or a user-measured override), and assembles
//! the final [`DvfReport`].

use crate::dvf::{DataStructureProfile, DvfReport};
use crate::fit::{EccScheme, FitRate};
use crate::memo;
use crate::patterns::{
    CacheView, InterferenceScenario, ModelError, RandomSpec, ReuseSpec, StreamingSpec, TemplateSpec,
};
use crate::timemodel::{MachineModel, ResourceDemand};
use dvf_aspen::{
    AppSpec, Diagnostic, EccKind, MachineSpec, OrderStepSpec, PatternSpec, Resolver, ReuseScenario,
};
use dvf_cachesim::{CacheConfig, HierarchyConfig};
use std::collections::HashMap;

/// Errors from the end-to-end workflow.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkflowError {
    /// The DSL front-end rejected the program.
    Language(Diagnostic),
    /// The resolved machine's cache geometry is invalid.
    BadCache(String),
    /// A pattern model rejected its parameters.
    Model {
        /// Data structure involved.
        data: String,
        /// Underlying model error.
        source: ModelError,
    },
    /// An override or sweep targets a parameter the document never
    /// declares (globally, in a machine, or in a model).
    UnknownParameter {
        /// The offending parameter name.
        param: String,
        /// Every parameter the document does declare, in source order.
        known: Vec<String>,
    },
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::Language(d) => write!(f, "language error: {d}"),
            WorkflowError::BadCache(msg) => write!(f, "invalid cache geometry: {msg}"),
            WorkflowError::Model { data, source } => {
                write!(f, "model error for data structure `{data}`: {source}")
            }
            WorkflowError::UnknownParameter { param, known } => {
                if known.is_empty() {
                    write!(
                        f,
                        "unknown parameter `{param}` (the document declares none)"
                    )
                } else {
                    write!(
                        f,
                        "unknown parameter `{param}` (declared parameters: {})",
                        known.join(", ")
                    )
                }
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

impl From<Diagnostic> for WorkflowError {
    fn from(d: Diagnostic) -> Self {
        WorkflowError::Language(d)
    }
}

/// Convert a resolved Aspen cache spec to the simulator's geometry type.
pub fn cache_config_of(machine: &MachineSpec) -> Result<CacheConfig, WorkflowError> {
    CacheConfig::new(
        machine.cache.associativity as usize,
        machine.cache.sets as usize,
        machine.cache.line_bytes as usize,
    )
    .map_err(|e| WorkflowError::BadCache(e.to_string()))
}

/// Failure rate declared by the machine: explicit `fit` wins, otherwise the
/// Table VII rate of the declared ECC scheme.
pub fn fit_of(machine: &MachineSpec) -> FitRate {
    match machine.memory.fit_per_mbit {
        Some(fit) => FitRate(fit),
        None => FitRate::of(match machine.memory.ecc {
            EccKind::None => EccScheme::None,
            EccKind::Secded => EccScheme::Secded,
            EccKind::Chipkill => EccScheme::ChipkillCorrect,
        }),
    }
}

/// Aspen roofline rates declared by the machine.
pub fn machine_model_of(machine: &MachineSpec) -> MachineModel {
    MachineModel {
        flops_per_sec: machine.core.flops_per_sec,
        mem_bytes_per_sec: machine.core.mem_bytes_per_sec,
    }
}

/// Intermediate result: per-structure `N_ha` plus the modeled time.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessAccounting {
    /// `(data name, N_ha)` in declaration order.
    pub n_ha: Vec<(String, f64)>,
    /// Modeled (or overridden) execution time in seconds.
    pub time_s: f64,
}

impl AccessAccounting {
    /// Look up one structure's access count.
    pub fn of(&self, name: &str) -> Option<f64> {
        self.n_ha.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Total main-memory accesses.
    pub fn total(&self) -> f64 {
        self.n_ha.iter().map(|(_, v)| v).sum()
    }
}

/// The cache-sharing ratio the access order implies for `name`: the paper
/// divides the cache among concurrently accessed structures proportionally
/// to their sizes (§III-C, Monte Carlo example). When a structure appears
/// in several concurrent groups we take the most contended one.
fn order_ratio(app: &AppSpec, order: Option<&[OrderStepSpec]>, name: &str) -> f64 {
    let Some(order) = order else { return 1.0 };
    let mut ratio: f64 = 1.0;
    for step in order {
        if let OrderStepSpec::Group(group) = step {
            if group.iter().any(|g| g == name) {
                let total: u64 = group
                    .iter()
                    .filter_map(|g| app.data(g).map(|d| d.size_bytes))
                    .sum();
                let own = app.data(name).map(|d| d.size_bytes).unwrap_or(0);
                if total > 0 && own > 0 {
                    ratio = ratio.min(own as f64 / total as f64);
                }
            }
        }
    }
    ratio
}

/// Per-kernel (phase) accounting: each root kernel's modeled time and
/// per-structure main-memory loads, in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseAccounting {
    /// Kernel name.
    pub kernel: String,
    /// Modeled (or overridden) duration in seconds.
    pub time_s: f64,
    /// `(data name, N_ha)` in declaration order.
    pub n_ha: Vec<(String, f64)>,
}

impl PhaseAccounting {
    /// Look up one structure's access count within this phase.
    pub fn of(&self, name: &str) -> Option<f64> {
        self.n_ha.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// Estimate `N_ha` for every data structure of `app` on `machine`
/// (the paper's CGPMAC stage), plus the execution time.
pub fn account_accesses(
    app: &AppSpec,
    machine: &MachineSpec,
) -> Result<AccessAccounting, WorkflowError> {
    account_accesses_with(app, machine, None)
}

/// [`account_accesses`] with an optional learned predictor (see
/// [`account_phases_at_with`]).
pub fn account_accesses_with(
    app: &AppSpec,
    machine: &MachineSpec,
    predictor: Option<&dvf_learn::NhaModel>,
) -> Result<AccessAccounting, WorkflowError> {
    let phases = account_phases_at_with(app, machine, cache_config_of(machine)?, predictor)?;
    let n_ha = app
        .datas
        .iter()
        .map(|d| {
            let total: f64 = phases.iter().filter_map(|p| p.of(&d.name)).sum();
            (d.name.clone(), total)
        })
        .collect();
    Ok(AccessAccounting {
        n_ha,
        time_s: phases.iter().map(|p| p.time_s).sum(),
    })
}

/// Per-phase variant of [`account_accesses`]: one record per root kernel,
/// preserving execution order (the input to time-resolved DVF).
pub fn account_phases(
    app: &AppSpec,
    machine: &MachineSpec,
) -> Result<Vec<PhaseAccounting>, WorkflowError> {
    account_phases_at(app, machine, cache_config_of(machine)?)
}

/// [`account_phases`] against an explicit cache geometry instead of the
/// machine's declared one — the building block of per-level hierarchy
/// accounting, where the same app is modeled once per cache level.
pub fn account_phases_at(
    app: &AppSpec,
    machine: &MachineSpec,
    config: CacheConfig,
) -> Result<Vec<PhaseAccounting>, WorkflowError> {
    account_phases_at_with(app, machine, config, None)
}

/// [`account_phases_at`] with an optional learned predictor: when a
/// model is given, every pattern's `N_ha` comes from
/// [`crate::predict::predict_pattern`] (synthetic stream → features →
/// model) instead of the closed forms. Both paths share the process-wide
/// memo cache under disjoint key spaces.
pub fn account_phases_at_with(
    app: &AppSpec,
    machine: &MachineSpec,
    config: CacheConfig,
    predictor: Option<&dvf_learn::NhaModel>,
) -> Result<Vec<PhaseAccounting>, WorkflowError> {
    let mm = machine_model_of(machine);
    let mut phases = Vec::new();

    for kernel in &app.kernels {
        // Kernels reached via `call` are already folded into their
        // callers; evaluating them again would double-count.
        if !kernel.is_root {
            continue;
        }
        let patterns_span = dvf_obs::span("patterns");
        let mut totals: HashMap<&str, f64> = HashMap::new();
        let mut kernel_accesses = 0.0f64;
        for scaled in &kernel.accesses {
            let access = &scaled.access;
            let _structure_span = dvf_obs::span(access.data.as_str());
            let data = app
                .data(&access.data)
                .expect("resolver guarantees access targets exist");
            let ratio = order_ratio(app, kernel.order.as_deref(), &access.data);
            let view = CacheView::shared(config, ratio);
            let model_err = |source: ModelError| WorkflowError::Model {
                data: data.name.clone(),
                source,
            };

            dvf_obs::add(
                match &access.pattern {
                    PatternSpec::Streaming { .. } => "pattern.streaming",
                    PatternSpec::Random { .. } => "pattern.random",
                    PatternSpec::Template { .. } => "pattern.template",
                    PatternSpec::Reuse { .. } => "pattern.reuse",
                },
                1,
            );
            // Every arm evaluates through the process-wide memo cache
            // (`crate::memo`): the key captures the pattern's complete
            // numeric parameters plus the cache view, so sweeps that
            // revisit a (pattern, geometry, ratio) point skip the
            // log-gamma-heavy closed forms entirely.
            let n_ha = if let Some(model) = predictor {
                dvf_obs::add("pattern.predicted", 1);
                memo::evaluate(
                    memo::key(
                        memo::PatternKey::Predicted {
                            fingerprint: crate::predict::memo_fingerprint(
                                &access.pattern,
                                data.size_bytes,
                                model,
                            ),
                        },
                        &view,
                    ),
                    || {
                        Ok(crate::predict::predict_pattern(
                            model,
                            &access.pattern,
                            data.size_bytes,
                            &view,
                        ))
                    },
                )
                .map_err(model_err)?
            } else {
                match &access.pattern {
                    PatternSpec::Streaming {
                        element_bytes,
                        count,
                        stride_elements,
                    } => memo::evaluate(
                        memo::key(
                            memo::PatternKey::Streaming {
                                element_bytes: *element_bytes,
                                num_elements: *count,
                                stride_elements: *stride_elements,
                            },
                            &view,
                        ),
                        || {
                            StreamingSpec {
                                element_bytes: *element_bytes,
                                num_elements: *count,
                                stride_elements: *stride_elements,
                            }
                            .mem_accesses(&view)
                        },
                    )
                    .map_err(model_err)?,
                    PatternSpec::Random {
                        elements,
                        element_bytes,
                        k,
                        iters,
                        ratio: spec_ratio,
                    } => memo::evaluate(
                        memo::key(
                            memo::PatternKey::Random {
                                num_elements: *elements,
                                element_bytes: *element_bytes,
                                k: *k,
                                iterations: *iters,
                                ratio_bits: spec_ratio.to_bits(),
                            },
                            &view,
                        ),
                        || {
                            RandomSpec {
                                num_elements: *elements,
                                element_bytes: *element_bytes,
                                k: *k,
                                iterations: *iters,
                                ratio: *spec_ratio,
                            }
                            .mem_accesses(&view)
                        },
                    )
                    .map_err(model_err)?,
                    PatternSpec::Template {
                        element_bytes,
                        refs,
                        repeat,
                    } => memo::evaluate(
                        memo::key(
                            memo::PatternKey::Template {
                                element_bytes: *element_bytes,
                                template: memo::intern_template(refs),
                                repeat: *repeat,
                            },
                            &view,
                        ),
                        || {
                            TemplateSpec::new(*element_bytes, refs.clone())
                                .mem_accesses_repeated(&view, *repeat)
                        },
                    )
                    .map_err(model_err)?,
                    PatternSpec::Reuse {
                        interfering_bytes,
                        reuses,
                        scenario,
                    } => memo::evaluate(
                        memo::key(
                            memo::PatternKey::Reuse {
                                size_bytes: data.size_bytes,
                                interfering_bytes: *interfering_bytes,
                                reuses: *reuses,
                                concurrent: matches!(scenario, ReuseScenario::Concurrent),
                            },
                            &view,
                        ),
                        || {
                            ReuseSpec::from_bytes(
                                data.size_bytes,
                                *interfering_bytes,
                                *reuses,
                                match scenario {
                                    ReuseScenario::Exclusive => InterferenceScenario::Exclusive,
                                    ReuseScenario::Concurrent => InterferenceScenario::Concurrent,
                                },
                                config.line_bytes as u64,
                            )
                            .mem_accesses(&view)
                        },
                    )
                    .map_err(model_err)?,
                }
            };

            let total = n_ha * scaled.times as f64 * kernel.iters as f64;
            *totals.entry(data.name.as_str()).or_insert(0.0) += total;
            kernel_accesses += total;
        }

        drop(patterns_span);

        // Execution time: explicit override; else the Aspen roofline fed
        // by explicit `loads`/`stores` declarations when given, or by the
        // modeled traffic otherwise.
        let time_s = dvf_obs::span_scope("time-model", || match kernel.time_s {
            Some(t) => t,
            None => {
                let demand = match kernel.traffic_bytes {
                    Some(bytes) => ResourceDemand {
                        flops: kernel.flops * kernel.iters as f64,
                        mem_bytes: bytes * kernel.iters as f64,
                    },
                    None => ResourceDemand::from_accesses(
                        kernel.flops * kernel.iters as f64,
                        kernel_accesses,
                        config.line_bytes as u64,
                    ),
                };
                demand.time_on(&mm)
            }
        });

        // Report in declaration order; untouched structures get N_ha = 0.
        let n_ha = app
            .datas
            .iter()
            .map(|d| {
                (
                    d.name.clone(),
                    totals.get(d.name.as_str()).copied().unwrap_or(0.0),
                )
            })
            .collect();
        phases.push(PhaseAccounting {
            kernel: kernel.name.clone(),
            time_s,
            n_ha,
        });
    }
    Ok(phases)
}

/// Stable 64-bit fingerprint of the memo-relevant work evaluating `app`
/// on `machine` would perform — without evaluating anything.
///
/// The fingerprint walks the accesses exactly like [`account_phases_at`]
/// and folds each access's complete memo identity (pattern parameters ×
/// cache-view geometry and sharing ratio — the same inputs
/// [`crate::memo::EvalKey`] captures) through a fixed FNV-1a hash
/// ([`crate::gridplan::StableHasher`]). Template reference strings are
/// hashed by *content*, not by their process-local interned id, so two
/// processes agree on every fingerprint.
///
/// Two sweep points with equal fingerprints perform identical pattern
/// evaluations: routing them to the same `dvf-serve` shard makes the
/// second a pure memo hit. Inputs that only scale results *outside* the
/// memo cache (kernel `iters`/`times`, flops, the machine's FIT rate and
/// roofline) are deliberately excluded — varying only those must not
/// split a memo-affine group.
pub fn memo_fingerprint(app: &AppSpec, machine: &MachineSpec) -> Result<u64, WorkflowError> {
    let config = cache_config_of(machine)?;
    let mut h = crate::gridplan::StableHasher::new();
    for kernel in &app.kernels {
        if !kernel.is_root {
            continue;
        }
        for scaled in &kernel.accesses {
            let access = &scaled.access;
            let data = app
                .data(&access.data)
                .expect("resolver guarantees access targets exist");
            let ratio = order_ratio(app, kernel.order.as_deref(), &access.data);
            // View identity: geometry + exact ratio bits (memo::ViewKey).
            h.write(config.associativity as u64);
            h.write(config.num_sets as u64);
            h.write(config.line_bytes as u64);
            h.write(ratio.to_bits());
            match &access.pattern {
                PatternSpec::Streaming {
                    element_bytes,
                    count,
                    stride_elements,
                } => {
                    h.write(1);
                    h.write(*element_bytes);
                    h.write(*count);
                    h.write(*stride_elements);
                }
                PatternSpec::Random {
                    elements,
                    element_bytes,
                    k,
                    iters,
                    ratio: spec_ratio,
                } => {
                    h.write(2);
                    h.write(*elements);
                    h.write(*element_bytes);
                    h.write(*k);
                    h.write(*iters);
                    h.write(spec_ratio.to_bits());
                }
                PatternSpec::Template {
                    element_bytes,
                    refs,
                    repeat,
                } => {
                    h.write(3);
                    h.write(*element_bytes);
                    h.write(refs.len() as u64);
                    for &r in refs.iter() {
                        h.write(r);
                    }
                    h.write(*repeat);
                }
                PatternSpec::Reuse {
                    interfering_bytes,
                    reuses,
                    scenario,
                } => {
                    h.write(4);
                    h.write(data.size_bytes);
                    h.write(*interfering_bytes);
                    h.write(*reuses);
                    h.write(matches!(scenario, ReuseScenario::Concurrent) as u64);
                }
            }
        }
    }
    Ok(h.finish())
}

/// Full Fig. 3 pipeline from resolved specs: accounting + DVF.
pub fn evaluate(app: &AppSpec, machine: &MachineSpec) -> Result<DvfReport, WorkflowError> {
    evaluate_with(app, machine, None)
}

/// [`evaluate`] with an optional learned predictor standing in for the
/// closed-form `N_ha` models (the `dvf eval --predict` path).
pub fn evaluate_with(
    app: &AppSpec,
    machine: &MachineSpec,
    predictor: Option<&dvf_learn::NhaModel>,
) -> Result<DvfReport, WorkflowError> {
    let accounting = account_accesses_with(app, machine, predictor)?;
    let fit = fit_of(machine);
    Ok(dvf_obs::span_scope("report", || {
        let profiles = app
            .datas
            .iter()
            .map(|d| {
                DataStructureProfile::new(
                    d.name.clone(),
                    d.size_bytes,
                    accounting.of(&d.name).unwrap_or(0.0),
                )
            })
            .collect();
        DvfReport::compute(app.name.clone(), fit, accounting.time_s, profiles)
    }))
}

/// Time-resolved DVF per structure (see [`crate::dvf::timed_dvf_d`]):
/// each root kernel is one phase, in declaration order.
pub fn evaluate_timed(
    app: &AppSpec,
    machine: &MachineSpec,
) -> Result<Vec<(String, f64)>, WorkflowError> {
    let phases = account_phases(app, machine)?;
    let fit = fit_of(machine);
    Ok(app
        .datas
        .iter()
        .map(|d| {
            let exposures: Vec<crate::dvf::PhaseExposure> = phases
                .iter()
                .map(|p| crate::dvf::PhaseExposure {
                    duration_s: p.time_s,
                    n_ha: p.of(&d.name).unwrap_or(0.0),
                })
                .collect();
            (
                d.name.clone(),
                crate::dvf::timed_dvf_d(fit, d.size_bytes, &exposures),
            )
        })
        .collect())
}

/// Per-level access accounting for a multi-level cache hierarchy.
///
/// `below_level[i]` is the modeled traffic that *misses* cache level `i`
/// (level 0 is the L1) — equivalently, the accesses arriving at the
/// storage underneath it: the next cache level for `i < n-1`, main memory
/// for the last level. Each entry is the CGPMAC evaluation of the whole
/// app at that level's geometry; with a single level this is exactly the
/// paper's `N_ha` (the paper models the LLC only, §III-C).
///
/// The independence approximation — level `i`'s misses computed as if it
/// were the only cache — matches simulation for inclusive-style LRU
/// stacks where a bigger cache's hits are a superset of a smaller one's;
/// DESIGN.md §12 documents where it breaks (exclusive victim levels,
/// prefetching).
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyAccounting {
    /// One [`AccessAccounting`] per cache level, top (L1) first.
    pub below_level: Vec<AccessAccounting>,
}

impl HierarchyAccounting {
    /// Modeled execution time: the last level governs DRAM traffic, so
    /// its roofline estimate is the hierarchy's (matching the paper's
    /// LLC-only time model).
    pub fn time_s(&self) -> f64 {
        self.below_level.last().map(|a| a.time_s).unwrap_or(0.0)
    }
}

/// Model `app` once per level of `hierarchy` (paper CGPMAC stage at each
/// geometry), yielding traffic-below-level counts for per-level DVF.
pub fn account_hierarchy(
    app: &AppSpec,
    machine: &MachineSpec,
    hierarchy: &HierarchyConfig,
) -> Result<HierarchyAccounting, WorkflowError> {
    let below_level = hierarchy
        .levels()
        .iter()
        .map(|spec| {
            let phases = account_phases_at(app, machine, spec.cache)?;
            let n_ha = app
                .datas
                .iter()
                .map(|d| {
                    let total: f64 = phases.iter().filter_map(|p| p.of(&d.name)).sum();
                    (d.name.clone(), total)
                })
                .collect();
            Ok(AccessAccounting {
                n_ha,
                time_s: phases.iter().map(|p| p.time_s).sum(),
            })
        })
        .collect::<Result<Vec<_>, WorkflowError>>()?;
    Ok(HierarchyAccounting { below_level })
}

/// DVF with per-level exposure splits: the input to Table VII-style
/// "which storage should ECC protect?" studies.
///
/// Every access that leaves cache level `i` touches the storage below it,
/// so a structure's vulnerable-access count with a given protection
/// choice is the sum of its exposures into the *unprotected* storages.
/// With one cache level and no protection this is exactly the paper's
/// `DVF_d = N_error · N_ha`.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyDvf {
    /// Application name.
    pub app: String,
    /// Failure rate of the machine (explicit `fit` or ECC-scheme rate).
    pub fit: FitRate,
    /// Modeled execution time in seconds.
    pub time_s: f64,
    /// Names of the storages below each cache level, top first:
    /// `"L2", …, "Ln", "memory"` (a single-level hierarchy has just
    /// `"memory"`).
    pub storages: Vec<String>,
    /// `(structure name, size in bytes, per-storage exposures)` in
    /// declaration order; `exposures[i]` pairs with `storages[i]`.
    pub exposures: Vec<(String, u64, Vec<f64>)>,
}

impl HierarchyDvf {
    /// `DVF_d` for one structure with ECC protecting the named storages
    /// (empty slice = nothing protected, the paper's default stance for
    /// its unprotected-memory scenario).
    pub fn dvf_of(&self, name: &str, protected: &[&str]) -> Option<f64> {
        let (_, size, exposures) = self.exposures.iter().find(|(n, _, _)| n == name)?;
        let ne = crate::dvf::n_error(self.fit, self.time_s, *size);
        let vulnerable: f64 = self
            .storages
            .iter()
            .zip(exposures)
            .filter(|(s, _)| !protected.contains(&s.as_str()))
            .map(|(_, e)| e)
            .sum();
        Some(ne * vulnerable)
    }

    /// Application-level DVF (sum over structures, paper eq. 6) under a
    /// protection choice.
    pub fn dvf_app(&self, protected: &[&str]) -> f64 {
        self.exposures
            .iter()
            .filter_map(|(name, _, _)| self.dvf_of(name, protected))
            .sum()
    }

    /// The protect-which-level study: app-level DVF with nothing
    /// protected, then with each storage protected alone — the marginal
    /// value of pointing ECC at each layer.
    pub fn protect_rows(&self) -> Vec<(String, f64)> {
        let mut rows = vec![("none".to_owned(), self.dvf_app(&[]))];
        for storage in &self.storages {
            rows.push((storage.clone(), self.dvf_app(&[storage.as_str()])));
        }
        rows
    }
}

/// Full per-level pipeline: hierarchy accounting + exposure-split DVF.
pub fn evaluate_hierarchy(
    app: &AppSpec,
    machine: &MachineSpec,
    hierarchy: &HierarchyConfig,
) -> Result<HierarchyDvf, WorkflowError> {
    let accounting = account_hierarchy(app, machine, hierarchy)?;
    let n = accounting.below_level.len();
    let storages = (0..n)
        .map(|i| {
            if i + 1 < n {
                format!("L{}", i + 2)
            } else {
                "memory".to_owned()
            }
        })
        .collect();
    let exposures = app
        .datas
        .iter()
        .map(|d| {
            let per_storage = accounting
                .below_level
                .iter()
                .map(|acc| acc.of(&d.name).unwrap_or(0.0))
                .collect();
            (d.name.clone(), d.size_bytes, per_storage)
        })
        .collect();
    Ok(HierarchyDvf {
        app: app.name.clone(),
        fit: fit_of(machine),
        time_s: accounting.time_s(),
        storages,
        exposures,
    })
}

/// One-call convenience: parse source, resolve (with parameter overrides),
/// evaluate. The document must contain exactly one machine and one model,
/// unless names are given.
pub fn evaluate_source(
    source: &str,
    machine_name: Option<&str>,
    model_name: Option<&str>,
    overrides: &[(&str, f64)],
) -> Result<DvfReport, WorkflowError> {
    let doc = dvf_obs::span_scope("parse", || dvf_aspen::parse(source))?;
    let (machine, app) = dvf_obs::span_scope("resolve", || {
        let mut resolver = Resolver::new(&doc);
        for (k, v) in overrides {
            resolver = resolver.set_param(k, *v);
        }
        let machine = resolver.machine(machine_name)?;
        let app = resolver.model(model_name)?;
        Ok::<_, WorkflowError>((machine, app))
    })?;
    evaluate(&app, &machine)
}

/// A reusable, parse-once workflow for parameter sweeps.
///
/// [`evaluate_source`] re-parses the program at every call; a sweep over a
/// parameter grid only needs to re-*resolve* and re-*evaluate*, and the
/// pattern evaluations themselves are memoized process-wide
/// ([`crate::memo`]), so grid points that share pattern parameters cost a
/// hash lookup. [`DvfWorkflow::sweep_param`] additionally fans the grid
/// across worker threads with [`crate::sweep::par_map`].
#[derive(Debug, Clone)]
pub struct DvfWorkflow {
    doc: dvf_aspen::Document,
    machine_name: Option<String>,
    model_name: Option<String>,
    predictor: Option<std::sync::Arc<dvf_learn::NhaModel>>,
}

impl DvfWorkflow {
    /// Parse a resilience-extended Aspen program once for repeated
    /// evaluation.
    pub fn parse(source: &str) -> Result<Self, WorkflowError> {
        let doc = dvf_obs::span_scope("parse", || dvf_aspen::parse(source))?;
        Ok(Self {
            doc,
            machine_name: None,
            model_name: None,
            predictor: None,
        })
    }

    /// Select a machine by name (default: the document's only machine).
    pub fn with_machine(mut self, name: &str) -> Self {
        self.machine_name = Some(name.to_owned());
        self
    }

    /// Select a model by name (default: the document's only model).
    pub fn with_model(mut self, name: &str) -> Self {
        self.model_name = Some(name.to_owned());
        self
    }

    /// Evaluate `N_ha` through a learned predictor instead of the closed
    /// forms (`--predict`). Shared by `Arc` so sweeps clone the workflow
    /// across workers without copying the model.
    pub fn with_predictor(mut self, model: std::sync::Arc<dvf_learn::NhaModel>) -> Self {
        self.predictor = Some(model);
        self
    }

    /// Resolve with `overrides` and evaluate the full Fig. 3 pipeline.
    pub fn evaluate(&self, overrides: &[(&str, f64)]) -> Result<DvfReport, WorkflowError> {
        let _workflow = dvf_obs::span("workflow");
        let (machine, app) = dvf_obs::span_scope("resolve", || {
            let mut resolver = Resolver::new(&self.doc);
            for (k, v) in overrides {
                resolver = resolver.set_param(k, *v);
            }
            let machine = resolver.machine(self.machine_name.as_deref())?;
            let app = resolver.model(self.model_name.as_deref())?;
            Ok::<_, WorkflowError>((machine, app))
        })?;
        evaluate_with(&app, &machine, self.predictor.as_deref())
    }

    /// Resolve with `overrides` and run the per-level hierarchy pipeline
    /// ([`evaluate_hierarchy`]) instead of the classic LLC-only one.
    pub fn evaluate_hierarchy(
        &self,
        overrides: &[(&str, f64)],
        hierarchy: &HierarchyConfig,
    ) -> Result<HierarchyDvf, WorkflowError> {
        let _workflow = dvf_obs::span("workflow");
        let (machine, app) = dvf_obs::span_scope("resolve", || {
            let mut resolver = Resolver::new(&self.doc);
            for (k, v) in overrides {
                resolver = resolver.set_param(k, *v);
            }
            let machine = resolver.machine(self.machine_name.as_deref())?;
            let app = resolver.model(self.model_name.as_deref())?;
            Ok::<_, WorkflowError>((machine, app))
        })?;
        evaluate_hierarchy(&app, &machine, hierarchy)
    }

    /// Sweep one parameter over `values` in parallel, preserving order.
    ///
    /// Each grid point is an independent resolve + evaluate; the memoized
    /// pattern cache is shared across workers, so evaluations repeated
    /// between grid points (patterns the swept parameter does not reach)
    /// are computed once.
    pub fn sweep_param(
        &self,
        param: &str,
        values: &[f64],
    ) -> Vec<Result<DvfReport, WorkflowError>> {
        crate::sweep::par_map(values, |&v| self.evaluate(&[(param, v)]))
    }

    /// Stable memo fingerprint of one sweep point: resolve with
    /// `overrides` (cheap — no pattern evaluation) and fingerprint the
    /// resolved work ([`memo_fingerprint`]). The distributed sweep
    /// planner routes each grid point to a shard by this value.
    pub fn point_fingerprint(&self, overrides: &[(&str, f64)]) -> Result<u64, WorkflowError> {
        let mut resolver = Resolver::new(&self.doc);
        for (k, v) in overrides {
            resolver = resolver.set_param(k, *v);
        }
        let machine = resolver.machine(self.machine_name.as_deref())?;
        let app = resolver.model(self.model_name.as_deref())?;
        memo_fingerprint(&app, &machine)
    }

    /// Every parameter name the document declares (global, machine- and
    /// model-scoped), in source order.
    pub fn param_names(&self) -> Vec<String> {
        self.doc
            .param_names()
            .into_iter()
            .map(str::to_owned)
            .collect()
    }

    /// Reject a sweep/override target the document never declares.
    ///
    /// Overrides of undeclared names are silently inert (the resolver
    /// injects them into an environment nothing reads), so a sweep over a
    /// typo'd name would return a flat line instead of an error. Both the
    /// `dvf sweep` CLI and the `dvf-serve` `/v1/sweep` endpoint call this
    /// before evaluating.
    pub fn check_param(&self, param: &str) -> Result<(), WorkflowError> {
        let known = self.doc.param_names();
        if known.contains(&param) {
            Ok(())
        } else {
            Err(WorkflowError::UnknownParameter {
                param: param.to_owned(),
                known: known.into_iter().map(str::to_owned).collect(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VM_SOURCE: &str = r#"
        machine small {
          cache { associativity = 4  sets = 64  line = 32 }
          memory { fit = 5000 }
          core { flops = 1e9  bandwidth = 4e9 }
        }
        model vm {
          param n = 200
          data A { size = n * 8  element = 8 }
          data B { size = n * 8  element = 8 }
          data C { size = n * 8  element = 8 }
          kernel main {
            flops = 2 * n
            access A as streaming(stride = 4)
            access B as streaming()
            access C as streaming()
          }
        }
    "#;

    #[test]
    fn vm_end_to_end() {
        let report = evaluate_source(VM_SOURCE, None, None, &[]).unwrap();
        assert_eq!(report.structures.len(), 3);
        // A (strided) touches more lines per element than B/C? With
        // stride 4 * 8B = 32B = CL, each reference costs (1+p) lines while
        // B/C load D/CL lines in total: A's N_ha = 50*(1+7/32) ≈ 60.9,
        // B/C = 1600/32 = 50.
        let a = report.dvf_of("A").unwrap();
        let b = report.dvf_of("B").unwrap();
        let c = report.dvf_of("C").unwrap();
        assert!(a > b, "A must be more vulnerable than B");
        assert!((b - c).abs() < 1e-18);
        assert!(report.dvf_app() > a);
    }

    #[test]
    fn accounting_values_match_hand_computation() {
        let doc = dvf_aspen::parse(VM_SOURCE).unwrap();
        let r = Resolver::new(&doc);
        let acc = account_accesses(&r.model(None).unwrap(), &r.machine(None).unwrap()).unwrap();
        assert!((acc.of("A").unwrap() - 50.0 * (1.0 + 7.0 / 32.0)).abs() < 1e-9);
        assert!((acc.of("B").unwrap() - 50.0).abs() < 1e-9);
        assert!(acc.total() > 150.0);
    }

    #[test]
    fn explicit_time_override_wins() {
        let src = r#"
            machine m { cache { associativity = 4 sets = 64 line = 32 } }
            model app {
              data A { size = 1024 element = 8 }
              kernel k { time = 2.5  access A as streaming() }
            }
        "#;
        let report = evaluate_source(src, None, None, &[]).unwrap();
        assert_eq!(report.time_s, 2.5);
    }

    #[test]
    fn kernel_iters_scale_accesses_and_flops() {
        let src = r#"
            machine m { cache { associativity = 4 sets = 64 line = 32 } }
            model app {
              data A { size = 1024 element = 8 }
              kernel k { iters = 10  flops = 100  access A as streaming() }
            }
        "#;
        let doc = dvf_aspen::parse(src).unwrap();
        let r = Resolver::new(&doc);
        let acc = account_accesses(&r.model(None).unwrap(), &r.machine(None).unwrap()).unwrap();
        // 1024/32 = 32 lines per pass, 10 passes.
        assert!((acc.of("A").unwrap() - 320.0).abs() < 1e-9);
    }

    #[test]
    fn ecc_scheme_sets_fit() {
        let src = r#"
            machine m {
              cache { associativity = 4 sets = 64 line = 32 }
              memory { ecc = chipkill }
            }
            model app {
              data A { size = 1024 element = 8 }
              kernel k { access A as streaming() }
            }
        "#;
        let doc = dvf_aspen::parse(src).unwrap();
        let machine = Resolver::new(&doc).machine(None).unwrap();
        assert_eq!(fit_of(&machine).0, 0.02);
    }

    #[test]
    fn explicit_fit_beats_ecc() {
        let src = r#"
            machine m {
              cache { associativity = 4 sets = 64 line = 32 }
              memory { fit = 42  ecc = chipkill }
            }
        "#;
        let doc = dvf_aspen::parse(src).unwrap();
        let machine = Resolver::new(&doc).machine(None).unwrap();
        assert_eq!(fit_of(&machine).0, 42.0);
    }

    #[test]
    fn order_derives_cache_sharing_ratio() {
        // Monte-Carlo shape: Grid and Energy accessed concurrently; the
        // bigger structure gets the bigger share, and both see less cache
        // than they would alone.
        let src = r#"
            machine m { cache { associativity = 8 sets = 128 line = 32 } }
            model mc {
              data G { size = 48 * KiB  element = 16 }
              data E { size = 16 * KiB  element = 16 }
              kernel lookup {
                access G as random(k = 8, iters = 2000)
                access E as random(k = 8, iters = 2000)
                order { (G E) }
              }
            }
        "#;
        let doc = dvf_aspen::parse(src).unwrap();
        let r = Resolver::new(&doc);
        let app = r.model(None).unwrap();
        let machine = r.machine(None).unwrap();
        assert_eq!(
            order_ratio(&app, app.kernels[0].order.as_deref(), "G"),
            0.75
        );
        assert_eq!(
            order_ratio(&app, app.kernels[0].order.as_deref(), "E"),
            0.25
        );

        // Removing the order (exclusive cache) must not increase accesses.
        let acc_shared = account_accesses(&app, &machine).unwrap();
        let mut app_excl = app.clone();
        app_excl.kernels[0].order = None;
        let acc_excl = account_accesses(&app_excl, &machine).unwrap();
        assert!(acc_shared.of("E").unwrap() >= acc_excl.of("E").unwrap());
    }

    #[test]
    fn untouched_structure_has_zero_nha() {
        let src = r#"
            machine m { cache { associativity = 4 sets = 64 line = 32 } }
            model app {
              data A { size = 1024 element = 8 }
              data Unused { size = 4096 element = 8 }
              kernel k { access A as streaming() }
            }
        "#;
        let doc = dvf_aspen::parse(src).unwrap();
        let r = Resolver::new(&doc);
        let acc = account_accesses(&r.model(None).unwrap(), &r.machine(None).unwrap()).unwrap();
        assert_eq!(acc.of("Unused"), Some(0.0));
    }

    #[test]
    fn parameter_overrides_flow_through() {
        let small = evaluate_source(VM_SOURCE, None, None, &[]).unwrap();
        let large = evaluate_source(VM_SOURCE, None, None, &[("n", 20_000.0)]).unwrap();
        assert!(large.dvf_app() > small.dvf_app());
    }

    #[test]
    fn timed_evaluation_orders_phases() {
        // Two kernels of equal work touching different structures: the
        // structure accessed in the later kernel is more exposed.
        let src = r#"
            machine m { cache { associativity = 4 sets = 64 line = 32 } }
            model app {
              data Early { size = 4096 element = 8 }
              data Late { size = 4096 element = 8 }
              kernel first { access Early as streaming() }
              kernel second { access Late as streaming() }
            }
        "#;
        let doc = dvf_aspen::parse(src).unwrap();
        let r = Resolver::new(&doc);
        let app = r.model(None).unwrap();
        let machine = r.machine(None).unwrap();
        let timed = evaluate_timed(&app, &machine).unwrap();
        let get = |n: &str| timed.iter().find(|(k, _)| k == n).unwrap().1;
        assert!(get("Late") > 2.0 * get("Early"));
        // Classic DVF sees them as identical.
        let classic = evaluate(&app, &machine).unwrap();
        assert_eq!(classic.dvf_of("Early"), classic.dvf_of("Late"));
    }

    #[test]
    fn control_flow_scales_accounting_and_skips_callees() {
        let src = r#"
            machine m { cache { associativity = 4 sets = 64 line = 32 } }
            model app {
              data A { size = 1024 element = 8 }
              kernel sweep { flops = 10  access A as streaming() }
              kernel main {
                iterate 5 { call sweep }
              }
            }
        "#;
        let doc = dvf_aspen::parse(src).unwrap();
        let r = Resolver::new(&doc);
        let acc = account_accesses(&r.model(None).unwrap(), &r.machine(None).unwrap()).unwrap();
        // Only `main` (the root) is accounted: 5 sweeps of 32 lines each.
        // If `sweep` were double-counted this would read 192.
        assert!((acc.of("A").unwrap() - 160.0).abs() < 1e-9, "{acc:?}");
    }

    #[test]
    fn check_param_accepts_declared_and_rejects_unknown() {
        let wf = DvfWorkflow::parse(VM_SOURCE).unwrap();
        wf.check_param("n").unwrap();
        let err = wf.check_param("nn").unwrap_err();
        assert!(matches!(err, WorkflowError::UnknownParameter { .. }));
        let msg = err.to_string();
        assert!(msg.contains("`nn`"), "{msg}");
        assert!(msg.contains("n"), "{msg}");
        assert_eq!(wf.param_names(), vec!["n".to_owned()]);
    }

    #[test]
    fn check_param_sees_machine_scoped_params() {
        let src = r#"
            machine m {
              param ways = 8
              cache { associativity = ways  sets = 64  line = 32 }
            }
            model app {
              data A { size = 1024 element = 8 }
              kernel k { access A as streaming() }
            }
        "#;
        let wf = DvfWorkflow::parse(src).unwrap();
        wf.check_param("ways").unwrap();
        assert!(wf.check_param("sets").is_err());
    }

    #[test]
    fn fingerprint_ignores_fit_but_tracks_pattern_reach() {
        let src = r#"
            machine m {
              param fit = 5000
              cache { associativity = 4 sets = 64 line = 32 }
              memory { fit = fit }
            }
            model app {
              param n = 200
              data A { size = n * 8  element = 8 }
              kernel k { access A as streaming() }
            }
        "#;
        let wf = DvfWorkflow::parse(src).unwrap();
        let base = wf.point_fingerprint(&[]).unwrap();
        // FIT scales the report outside the memo cache: same fingerprint.
        assert_eq!(base, wf.point_fingerprint(&[("fit", 9999.0)]).unwrap());
        // `n` reaches the streaming pattern: different fingerprint.
        assert_ne!(base, wf.point_fingerprint(&[("n", 400.0)]).unwrap());
        // Reparsing (a second "process" as far as interners are
        // concerned) reproduces the value.
        let wf2 = DvfWorkflow::parse(src).unwrap();
        assert_eq!(base, wf2.point_fingerprint(&[]).unwrap());
    }

    #[test]
    fn language_errors_surface() {
        let err = evaluate_source("model {", None, None, &[]).unwrap_err();
        assert!(matches!(err, WorkflowError::Language(_)));
        assert!(err.to_string().contains("language error"));
    }

    fn two_level_hierarchy_for(machine: &MachineSpec) -> HierarchyConfig {
        // A quarter-size L1 with the machine's declared cache as the LLC.
        let llc = cache_config_of(machine).unwrap();
        let l1 =
            CacheConfig::new(llc.associativity, (llc.num_sets / 4).max(1), llc.line_bytes).unwrap();
        HierarchyConfig::two_level(l1, llc).unwrap()
    }

    #[test]
    fn single_level_hierarchy_matches_classic_evaluation() {
        let doc = dvf_aspen::parse(VM_SOURCE).unwrap();
        let r = Resolver::new(&doc);
        let app = r.model(None).unwrap();
        let machine = r.machine(None).unwrap();
        let llc = cache_config_of(&machine).unwrap();
        let hier = HierarchyConfig::new(vec![dvf_cachesim::LevelSpec::new(llc)]).unwrap();
        let split = evaluate_hierarchy(&app, &machine, &hier).unwrap();
        let classic = evaluate(&app, &machine).unwrap();
        // One level → one storage ("memory"); unprotected DVF is the
        // paper's DVF, and protecting memory zeroes it.
        assert_eq!(split.storages, vec!["memory".to_owned()]);
        for (name, _, _) in &split.exposures {
            let a = split.dvf_of(name, &[]).unwrap();
            let b = classic.dvf_of(name).unwrap();
            assert!((a - b).abs() <= 1e-12 * b.abs(), "{name}: {a} vs {b}");
        }
        assert_eq!(split.dvf_app(&["memory"]), 0.0);
    }

    #[test]
    fn hierarchy_exposures_shrink_down_the_stack() {
        let src = r#"
            machine m { cache { associativity = 4 sets = 256 line = 32 } }
            model app {
              data A { size = 512 * KiB  element = 8 }
              data p { size = 4 * KiB  element = 8 }
              kernel iter {
                access A as streaming()
                access p as reuse(reuses = 100)
              }
            }
        "#;
        let doc = dvf_aspen::parse(src).unwrap();
        let r = Resolver::new(&doc);
        let app = r.model(None).unwrap();
        let machine = r.machine(None).unwrap();
        let hier = two_level_hierarchy_for(&machine);
        let acc = account_hierarchy(&app, &machine, &hier).unwrap();
        assert_eq!(acc.below_level.len(), 2);
        // The reused structure benefits from the bigger level: traffic
        // into memory must not exceed traffic into the L2.
        let into_l2 = acc.below_level[0].of("p").unwrap();
        let into_mem = acc.below_level[1].of("p").unwrap();
        assert!(into_mem <= into_l2, "{into_mem} > {into_l2}");
        // Protect-which-level rows: none ≥ any single protection, and
        // protecting the busier storage helps at least as much.
        let split = evaluate_hierarchy(&app, &machine, &hier).unwrap();
        let rows = split.protect_rows();
        assert_eq!(rows[0].0, "none");
        assert_eq!(rows.len(), 3);
        for (label, dvf) in &rows[1..] {
            assert!(*dvf <= rows[0].1, "protecting {label} increased DVF");
        }
    }

    #[test]
    fn reuse_pattern_through_workflow() {
        let src = r#"
            machine m { cache { associativity = 4 sets = 64 line = 32 } }
            model cg {
              data A { size = 512 * KiB  element = 8 }
              data p { size = 4 * KiB  element = 8 }
              kernel iter {
                iters = 1
                access A as streaming()
                access p as reuse(reuses = 100)
              }
            }
        "#;
        let doc = dvf_aspen::parse(src).unwrap();
        let r = Resolver::new(&doc);
        let acc = account_accesses(&r.model(None).unwrap(), &r.machine(None).unwrap()).unwrap();
        // p: 128 blocks footprint; interference (A = 512 KiB) floods the
        // 8 KiB cache, so nearly all of p reloads on each of 100 reuses.
        let p = acc.of("p").unwrap();
        assert!(p > 100.0 * 100.0, "p N_ha = {p}");
    }
}
