//! Property tests for the log-space combinatorics in `dvf_core::comb`.
//!
//! `ln_gamma` is the foundation of the random-access (Eq. 5) and
//! data-reuse (Eqs. 8, 12) models; Eq. 12 in particular evaluates the
//! gamma-continued binomial coefficient at a *non-integer* first
//! argument, so these properties pin both the classical identities and
//! the real-argument extension.

use dvf_core::comb::{binomial, ln_binomial, ln_binomial_real, ln_factorial, ln_gamma};
use proptest::prelude::*;

const SQRT_PI: f64 = 1.772_453_850_905_516;

fn assert_rel(a: f64, b: f64, tol: f64) {
    assert!(
        (a - b).abs() <= tol * b.abs().max(1.0),
        "expected {b}, got {a}"
    );
}

#[test]
fn ln_gamma_known_values() {
    // Γ(1/2) = √π, Γ(3/2) = √π/2, Γ(5/2) = 3√π/4 — the half-integer
    // ladder exercises both the reflection branch (x < 0.5) and the
    // Lanczos core.
    assert_rel(ln_gamma(0.5), SQRT_PI.ln(), 1e-13);
    assert_rel(ln_gamma(1.5), (SQRT_PI / 2.0).ln(), 1e-13);
    assert_rel(ln_gamma(2.5), (3.0 * SQRT_PI / 4.0).ln(), 1e-13);
    // Γ(1/3) — a non-half-integer reflection-path value (Abramowitz & Stegun).
    assert_rel(ln_gamma(1.0 / 3.0), 2.678_938_534_707_748_f64.ln(), 1e-12);
    // Γ(1) = Γ(2) = 1.
    assert!(ln_gamma(1.0).abs() < 1e-13);
    assert!(ln_gamma(2.0).abs() < 1e-13);
}

proptest! {
    /// Recurrence Γ(x+1) = x·Γ(x), i.e. lnΓ(x+1) = ln x + lnΓ(x),
    /// across the reflection/Lanczos seam at x = 0.5.
    #[test]
    fn ln_gamma_recurrence(x in 0.01f64..60.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() <= 1e-10 * lhs.abs().max(1.0),
            "x = {x}: lnΓ(x+1) = {lhs}, ln x + lnΓ(x) = {rhs}");
    }

    /// Integer agreement: lnΓ(n+1) = ln(n!).
    #[test]
    fn ln_gamma_matches_factorial(n in 1u64..170) {
        let lhs = ln_gamma(n as f64 + 1.0);
        let rhs = ln_factorial(n);
        prop_assert!((lhs - rhs).abs() <= 1e-11 * rhs.abs().max(1.0));
    }

    /// The gamma-continued binomial coefficient at non-integer `n`
    /// (the Eq. 12 path) matches the falling-factorial product
    /// C(n, k) = Π_{j=1..k} (n − k + j) / j for integer k.
    #[test]
    fn ln_binomial_real_matches_product(frac in 0.01f64..0.99, whole in 1u64..40, k in 0u64..12) {
        let n = whole as f64 + frac; // strictly non-integer
        prop_assume!((k as f64) <= n);
        let mut product = 1.0f64;
        for j in 1..=k {
            product *= (n - k as f64 + j as f64) / j as f64;
        }
        let got = ln_binomial_real(n, k as f64).exp();
        prop_assert!((got - product).abs() <= 1e-10 * product.abs().max(1.0),
            "C({n}, {k}): got {got}, product {product}");
    }

    /// Pascal's rule survives the continuation to real n:
    /// C(n, k) = C(n−1, k−1) + C(n−1, k).
    #[test]
    fn ln_binomial_real_pascal(frac in 0.01f64..0.99, whole in 2u64..40, k in 1u64..12) {
        let n = whole as f64 + frac;
        prop_assume!((k as f64) <= n - 1.0);
        let lhs = ln_binomial_real(n, k as f64).exp();
        let rhs = ln_binomial_real(n - 1.0, k as f64 - 1.0).exp()
            + ln_binomial_real(n - 1.0, k as f64).exp();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * rhs.abs().max(1.0));
    }

    /// Real-argument extension agrees with the integer path on integers.
    #[test]
    fn ln_binomial_real_extends_integer(n in 0u64..500, k in 0u64..500) {
        let real = ln_binomial_real(n as f64, k as f64);
        let int = ln_binomial(n, k);
        if k > n {
            prop_assert_eq!(real, f64::NEG_INFINITY);
            prop_assert_eq!(int, f64::NEG_INFINITY);
        } else {
            prop_assert!((real - int).abs() <= 1e-10 * int.abs().max(1.0));
        }
    }
}

#[test]
fn ln_binomial_real_known_values() {
    // C(2.5, 1) = 2.5 and C(7.3, 3) = 7.3·6.3·5.3/6 — hand-checkable
    // non-integer points of the Eq. 12 path.
    assert_rel(ln_binomial_real(2.5, 1.0).exp(), 2.5, 1e-12);
    assert_rel(
        ln_binomial_real(7.3, 3.0).exp(),
        7.3 * 6.3 * 5.3 / 6.0,
        1e-12,
    );
    // Out-of-support inputs are the coefficient's natural zero.
    assert_eq!(ln_binomial_real(3.0, 3.5), f64::NEG_INFINITY);
    assert_eq!(ln_binomial_real(3.0, -0.5), f64::NEG_INFINITY);
    assert_eq!(binomial(3, 7), 0.0);
}
