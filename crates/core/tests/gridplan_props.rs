//! Property tests for the distributed-sweep chunk planner.
//!
//! The coordinator's correctness rests on two invariants pinned here:
//! every grid point lands in **exactly one** chunk (no dropped or
//! duplicated rows after the merge), and memo-affine shard assignment is
//! a pure function of a point's fingerprint and the shard count — so it
//! is stable across chunk sizes and across reruns, which is what makes
//! resumed sweeps land on warm memo caches.

use dvf_core::gridplan::{mix64, Assignment, Chunk, ChunkPlan, GridSpec};
use proptest::prelude::*;

/// Build a grid whose dimension `d` has `shape[d]` values.
fn grid_of(shape: &[usize]) -> GridSpec {
    let dims = shape
        .iter()
        .enumerate()
        .map(|(d, &len)| {
            let name = format!("p{d}");
            let values = (0..len).map(|i| (i + 1) as f64 * 0.5).collect();
            (name, values)
        })
        .collect();
    GridSpec::new(dims).expect("non-degenerate grid")
}

/// A synthetic fingerprint with deliberate collisions: points whose
/// index agrees modulo `classes` are "cache-equivalent".
fn fp(idx: usize, classes: u64) -> u64 {
    (idx as u64) % classes
}

fn assert_exact_partition(plan: &ChunkPlan, total: usize, chunk_points: usize, shards: usize) {
    let mut seen = vec![0u32; total];
    for chunk in &plan.chunks {
        assert!(
            chunk.shard < shards,
            "chunk routed to shard {}",
            chunk.shard
        );
        assert!(
            !chunk.indices.is_empty() && chunk.indices.len() <= chunk_points,
            "chunk of {} points against a cap of {chunk_points}",
            chunk.indices.len()
        );
        assert!(
            chunk.indices.windows(2).all(|w| w[0] < w[1]),
            "chunk indices must be strictly ascending"
        );
        for &idx in &chunk.indices {
            seen[idx] += 1;
        }
    }
    assert!(
        seen.iter().all(|&n| n == 1),
        "every grid point must appear in exactly one chunk"
    );
    // Chunk ids are their position: the coordinator indexes `plan.chunks`
    // by the id it sends on the wire.
    for (pos, chunk) in plan.chunks.iter().enumerate() {
        assert_eq!(chunk.id, pos);
    }
    assert_eq!(plan.total_points, total);
}

/// Map each grid point to the shard whose chunk contains it.
fn shard_of_points(plan: &ChunkPlan, total: usize) -> Vec<usize> {
    let mut owner = vec![usize::MAX; total];
    for Chunk { shard, indices, .. } in &plan.chunks {
        for &idx in indices {
            owner[idx] = *shard;
        }
    }
    owner
}

proptest! {
    /// Exact partition under both assignment policies, for arbitrary
    /// grid shapes, shard counts, and chunk sizes.
    #[test]
    fn every_point_in_exactly_one_chunk(
        shape in prop::collection::vec(1usize..5, 1..4),
        shards in 1usize..5,
        chunk_points in 1usize..8,
        classes in 1u64..6,
        affine in 0usize..2,
    ) {
        let grid = grid_of(&shape);
        let assignment = if affine == 1 { Assignment::MemoAffine } else { Assignment::RoundRobin };
        let plan = ChunkPlan::plan(&grid, shards, chunk_points, assignment, |i| fp(i, classes));
        assert_exact_partition(&plan, grid.len(), chunk_points, shards);
    }

    /// Memo-affine shard choice depends only on (fingerprint, shard
    /// count): replanning with a different chunk size must not move any
    /// point to a different shard, and equal fingerprints co-locate.
    #[test]
    fn affine_assignment_is_stable_across_chunk_sizes(
        shape in prop::collection::vec(1usize..5, 1..4),
        shards in 1usize..5,
        cp_a in 1usize..8,
        cp_b in 1usize..8,
        classes in 1u64..6,
    ) {
        let grid = grid_of(&shape);
        let plan_a = ChunkPlan::plan(&grid, shards, cp_a, Assignment::MemoAffine, |i| fp(i, classes));
        let plan_b = ChunkPlan::plan(&grid, shards, cp_b, Assignment::MemoAffine, |i| fp(i, classes));
        let owners_a = shard_of_points(&plan_a, grid.len());
        let owners_b = shard_of_points(&plan_b, grid.len());
        prop_assert_eq!(&owners_a, &owners_b,
            "chunk size must not influence shard routing");
        // The routing law itself: shard = mix64(fp) % shards.
        for (idx, &owner) in owners_a.iter().enumerate() {
            prop_assert_eq!(owner, (mix64(fp(idx, classes)) % shards as u64) as usize);
        }
        // Replanning with identical inputs is byte-deterministic — the
        // resume path replays the same chunks in the same order.
        let replay = ChunkPlan::plan(&grid, shards, cp_a, Assignment::MemoAffine, |i| fp(i, classes));
        prop_assert_eq!(plan_a.manifest_json(), replay.manifest_json());
    }

    /// Round-robin keeps grid order runs contiguous: chunk `i` holds the
    /// points `[i * cp, ...)` and lands on shard `i % shards`.
    #[test]
    fn round_robin_is_contiguous(
        shape in prop::collection::vec(1usize..5, 1..4),
        shards in 1usize..5,
        chunk_points in 1usize..8,
    ) {
        let grid = grid_of(&shape);
        let plan = ChunkPlan::plan(&grid, shards, chunk_points, Assignment::RoundRobin, |_| 0);
        for (i, chunk) in plan.chunks.iter().enumerate() {
            prop_assert_eq!(chunk.shard, i % shards);
            let base = i * chunk_points;
            let want: Vec<usize> = (base..(base + chunk_points).min(grid.len())).collect();
            prop_assert_eq!(&chunk.indices, &want);
        }
    }

    /// Grid indexing is row-major with the LAST dimension fastest —
    /// the same order as the nested loops a local sweep would run.
    #[test]
    fn grid_point_order_matches_nested_loops(
        shape in prop::collection::vec(1usize..5, 1..4),
    ) {
        let grid = grid_of(&shape);
        // Materialize the cross product exactly as nested for-loops
        // would: each dimension extends the prefix list, so the LAST
        // dimension varies fastest in the result.
        let mut expected: Vec<Vec<f64>> = vec![Vec::new()];
        for (_, values) in grid.dims() {
            expected = expected
                .iter()
                .flat_map(|prefix| {
                    values.iter().map(move |v| {
                        let mut point = prefix.clone();
                        point.push(*v);
                        point
                    })
                })
                .collect();
        }
        prop_assert_eq!(expected.len(), grid.len());
        for (idx, want) in expected.iter().enumerate() {
            prop_assert_eq!(&grid.point(idx), want);
        }
    }
}
