//! Concurrency properties of the striped memo cache: consistent stats
//! snapshots and bit-identical results under parallel lookup storms.
//!
//! This file is its own test binary (own process), so no other test's
//! cache traffic can perturb the exact-count assertions below — unlike
//! the in-crate unit tests, which share the process-wide cache with
//! every other `dvf-core` test.

use dvf_cachesim::CacheConfig;
use dvf_core::memo::{self, EvalKey, PatternKey};
use dvf_core::patterns::{CacheView, StreamingSpec};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// The three tests share one process-wide cache; serialize them.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn view() -> CacheView {
    CacheView::exclusive(CacheConfig::new(4, 64, 32).unwrap())
}

fn spec(n: u64) -> StreamingSpec {
    StreamingSpec {
        element_bytes: 8,
        num_elements: n,
        stride_elements: 1,
    }
}

fn key_of(n: u64, view: &CacheView) -> EvalKey {
    memo::key(
        PatternKey::Streaming {
            element_bytes: 8,
            num_elements: n,
            stride_elements: 1,
        },
        view,
    )
}

#[test]
fn concurrent_lookups_account_exactly_and_match_sequential() {
    let _guard = serial();
    memo::set_enabled(true);
    memo::clear();

    const THREADS: usize = 8;
    const ROUNDS: usize = 50;
    const KEYS: u64 = 16;

    // Sequential baseline: one evaluation per key, bit-exact reference.
    let v = view();
    let baseline: Vec<u64> = (0..KEYS)
        .map(|i| {
            let n = 10_000 + i * 37;
            memo::evaluate(key_of(n, &v), || spec(n).mem_accesses(&v))
                .unwrap()
                .to_bits()
        })
        .collect();
    let warm = memo::stats();
    assert_eq!(warm.misses, KEYS, "{warm:?}");
    assert_eq!(warm.entries, KEYS, "{warm:?}");

    // Storm: THREADS threads × ROUNDS passes over all KEYS keys, all hits.
    let results: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let v = view();
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(ROUNDS * KEYS as usize);
                    for _ in 0..ROUNDS {
                        for i in 0..KEYS {
                            let n = 10_000 + i * 37;
                            let got =
                                memo::evaluate(key_of(n, &v), || spec(n).mem_accesses(&v)).unwrap();
                            out.push(got.to_bits());
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every concurrent result is bit-identical to the sequential baseline.
    for per_thread in &results {
        for (i, bits) in per_thread.iter().enumerate() {
            assert_eq!(
                *bits,
                baseline[i % KEYS as usize],
                "thread result diverged at lookup {i}"
            );
        }
    }

    // Exact accounting: the cache was warm, so the storm is all hits, and
    // the consistent snapshot must show precisely THREADS×ROUNDS×KEYS of
    // them on top of the warm-up misses.
    let after = memo::stats().since(&warm);
    assert_eq!(after.hits, (THREADS * ROUNDS) as u64 * KEYS, "{after:?}");
    assert_eq!(after.misses, 0, "{after:?}");
    assert_eq!(after.entries, KEYS, "{after:?}");
}

#[test]
fn stats_snapshots_are_monotone_while_hammered() {
    let _guard = serial();
    memo::set_enabled(true);
    memo::clear();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Two hammer threads mixing hits and misses.
        for t in 0..2u64 {
            let stop = &stop;
            scope.spawn(move || {
                let v = view();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Revisit a small working set (hits) and add fresh
                    // keys (misses) in a 3:1 ratio.
                    let n = 20_000 + t * 1_000_000 + if i.is_multiple_of(4) { i } else { i % 8 };
                    let _ = memo::evaluate(key_of(n, &v), || spec(n).mem_accesses(&v));
                    i += 1;
                }
            });
        }
        // Observer: every snapshot must be component-wise monotone and
        // internally consistent (hits+misses never decreases, entries
        // never exceeds lifetime misses).
        let mut prev = memo::stats();
        for _ in 0..200 {
            let now = memo::stats();
            assert!(now.hits >= prev.hits, "{now:?} vs {prev:?}");
            assert!(now.misses >= prev.misses, "{now:?} vs {prev:?}");
            assert!(
                now.entries <= now.misses,
                "entries can only come from misses: {now:?}"
            );
            prev = now;
        }
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn stripe_count_is_fixed_and_positive() {
    // Default 16 unless DVF_MEMO_STRIPES overrides; either way the count
    // is in the documented 1..=256 envelope and stable across calls.
    let n = memo::stripe_count();
    assert!((1..=256).contains(&n), "{n}");
    assert_eq!(n, memo::stripe_count());
}
