//! The sweep cache is semantically invisible: cached and uncached
//! `DvfWorkflow` sweeps, ECC-grid sweeps, and `elasticities` evaluations
//! produce bit-identical results.
//!
//! Every test here toggles or clears the process-wide memo cache, so they
//! serialize on one mutex (the cache is global to the test binary).

use dvf_core::fit::EccScheme;
use dvf_core::memo;
use dvf_core::sweep::{degradation_grid, elasticities, EccTradeoff};
use dvf_core::workflow::DvfWorkflow;
use proptest::prelude::*;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A model exercising the streaming, random, and reuse memo arms, with
/// the problem size `n` and the random visit count `k` sweepable.
const SOURCE: &str = r#"
    machine m {
      cache { associativity = 8  sets = 128  line = 64 }
      memory { fit = 5000 }
      core { flops = 1e9  bandwidth = 4e9 }
    }
    model app {
      param n = 4096
      param k = 16
      data A { size = n * 8  element = 8 }
      data G { size = n * 16  element = 16 }
      data p { size = 4 * KiB  element = 8 }
      kernel main {
        flops = 10 * n
        access A as streaming(stride = 2)
        access G as random(k = k, iters = 200)
        access p as reuse(reuses = 50)
      }
    }
"#;

/// Evaluate a sweep and collapse each report to the exact bit patterns
/// of its per-structure DVFs (bit equality is the whole point).
fn sweep_bits(wf: &DvfWorkflow, param: &str, values: &[f64]) -> Vec<Vec<u64>> {
    wf.sweep_param(param, values)
        .into_iter()
        .map(|r| {
            let report = r.expect("sweep point evaluates");
            report
                .structures
                .iter()
                .map(|(_, dvf)| dvf.to_bits())
                .chain([report.dvf_app().to_bits(), report.time_s.to_bits()])
                .collect()
        })
        .collect()
}

proptest! {
    /// Parallel parameter sweeps: cached (cold cache), cached (warm
    /// cache, all hits), and uncached runs are bit-identical.
    #[test]
    fn cached_and_uncached_sweeps_bit_identical(base in 256u64..100_000) {
        let _guard = serial();
        let wf = DvfWorkflow::parse(SOURCE).unwrap();
        let values: Vec<f64> = (0..6).map(|i| (base + i * 37) as f64).collect();

        memo::clear();
        memo::set_enabled(false);
        let uncached = sweep_bits(&wf, "n", &values);

        memo::clear();
        memo::set_enabled(true);
        let cold = sweep_bits(&wf, "n", &values);
        let warm = sweep_bits(&wf, "n", &values);

        prop_assert_eq!(&uncached, &cold, "cold cache diverged");
        prop_assert_eq!(&uncached, &warm, "warm cache diverged");
    }

    /// The fig5/fig7 ECC degradation grid driven from workflow output:
    /// base time and N_ha from a cached evaluation feed the tradeoff
    /// sweep bit-identically to an uncached evaluation.
    #[test]
    fn ecc_grid_from_cached_workflow_bit_identical(k in 4u64..64) {
        let _guard = serial();
        let wf = DvfWorkflow::parse(SOURCE).unwrap();
        let grid = degradation_grid(0.30, 30);

        let ecc_bits = |enabled: bool| {
            memo::clear();
            memo::set_enabled(enabled);
            let report = wf.evaluate(&[("k", k as f64)]).unwrap();
            let (s, _) = &report.structures[1]; // G, the random-access table
            EccTradeoff::new(EccScheme::Secded)
                .sweep(report.time_s, s.size_bytes, s.n_ha, &grid)
                .into_iter()
                .map(|p| p.dvf.to_bits())
                .collect::<Vec<u64>>()
        };

        let uncached = ecc_bits(false);
        let cached = ecc_bits(true);
        memo::set_enabled(true);
        prop_assert_eq!(uncached, cached);
    }

    /// `elasticities` re-evaluates the workflow at perturbed parameter
    /// values; with the cache on, repeated center-point evaluations hit
    /// but every elasticity is still bit-identical.
    #[test]
    fn elasticities_bit_identical_with_cache(n in 1024u64..50_000) {
        let _guard = serial();
        let wf = DvfWorkflow::parse(SOURCE).unwrap();
        // The resolver requires integer sizes/counts; central differences
        // perturb continuously, so the probe rounds to the lattice.
        let f = |p: &[f64]| {
            wf.evaluate(&[("n", p[0].round()), ("k", p[1].round())])
                .expect("perturbed point evaluates")
                .dvf_app()
        };
        let base = [n as f64, 16.0];

        let run = |enabled: bool| {
            memo::clear();
            memo::set_enabled(enabled);
            elasticities(f, &["n", "k"], &base, 0.01)
                .into_iter()
                .map(|s| s.elasticity.to_bits())
                .collect::<Vec<u64>>()
        };

        let uncached = run(false);
        let cached = run(true);
        memo::set_enabled(true);
        prop_assert_eq!(uncached, cached);
    }
}
