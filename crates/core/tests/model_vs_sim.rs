//! Property-based cross-validation: the analytical pattern models against
//! the cache simulator on randomized geometries — the Fig. 4 methodology,
//! generalized beyond the paper's two cache configurations.

use dvf_cachesim::{simulate, CacheConfig, MemRef, Trace};
use dvf_core::patterns::{CacheView, RandomSpec, StreamingSpec, TemplateSpec};
use proptest::prelude::*;

/// Synthetic trace of a full streaming traversal: each referenced element
/// is read in line-sized chunks (the model's unit of accounting).
fn streaming_trace(spec: &StreamingSpec, line: u64) -> Trace {
    let mut t = Trace::new();
    let ds = t.registry.register("A");
    let e = spec.element_bytes;
    let s = spec.stride_bytes();
    let d = spec.data_bytes();
    if s == e {
        // Dense traversal touches every byte (chunked by line).
        for addr in (0..d).step_by(line as usize) {
            t.push(MemRef::read(ds, addr));
        }
        // Touch the final partial line, if any.
        if !d.is_multiple_of(line) {
            t.push(MemRef::read(ds, d - 1));
        }
    } else {
        let refs = d.div_ceil(s);
        for i in 0..refs {
            let base = i * s;
            let mut off = 0;
            while off < e {
                t.push(MemRef::read(ds, base + off));
                off += line.min(e);
            }
            // Ensure the element's last byte is touched (covers E not a
            // multiple of the line).
            t.push(MemRef::read(ds, base + e - 1));
        }
    }
    t
}

fn arb_cache() -> impl Strategy<Value = CacheConfig> {
    (1usize..=8, 2u32..=7, 3u32..=7)
        .prop_map(|(a, s, l)| CacheConfig::new(a, 1 << s, 1 << l).unwrap())
}

proptest! {
    /// Aligned streaming: the model is exact against the simulator for
    /// every geometry, element size, and stride.
    #[test]
    fn streaming_model_is_exact(
        cfg in arb_cache(),
        elem_log2 in 2u32..=7,
        count in 1u64..400,
        stride in 1u64..6,
    ) {
        let spec = StreamingSpec {
            element_bytes: 1 << elem_log2,
            num_elements: count,
            stride_elements: stride,
        };
        let view = CacheView::exclusive(cfg);
        let modeled = spec.mem_accesses_aligned(&view).unwrap();
        let trace = streaming_trace(&spec, cfg.line_bytes as u64);
        let sim = simulate(&trace, cfg);
        let measured = sim.total().misses as f64;
        prop_assert!(
            (modeled - measured).abs() <= 1.0 + 0.02 * measured,
            "spec {spec:?} on {cfg:?}: model {modeled} vs sim {measured}"
        );
    }

    /// Template model == fully-associative LRU simulation, for arbitrary
    /// reference strings.
    #[test]
    fn template_model_matches_fully_associative_sim(
        ways in 1usize..=32,
        line_log2 in 3u32..=6,
        refs in prop::collection::vec(0u64..96, 1..600),
    ) {
        let cfg = CacheConfig::new(ways, 1, 1 << line_log2).unwrap();
        let spec = TemplateSpec::new(8, refs.clone());
        let modeled = spec
            .mem_accesses(&CacheView::exclusive(cfg))
            .unwrap();

        let mut trace = Trace::new();
        let ds = trace.registry.register("X");
        for &e in &refs {
            trace.push(MemRef::read(ds, e * 8));
        }
        let sim = simulate(&trace, cfg);
        prop_assert_eq!(modeled, sim.ds(ds).misses as f64);
    }

    /// Template repeat extrapolation stays exact under simulation too.
    #[test]
    fn template_repeat_matches_simulated_repeats(
        ways in 1usize..=16,
        refs in prop::collection::vec(0u64..48, 1..150),
        repeat in 1u64..5,
    ) {
        let cfg = CacheConfig::new(ways, 1, 8).unwrap();
        let spec = TemplateSpec::new(8, refs.clone());
        let modeled = spec
            .mem_accesses_repeated(&CacheView::exclusive(cfg), repeat)
            .unwrap();

        let mut trace = Trace::new();
        let ds = trace.registry.register("X");
        for _ in 0..repeat {
            for &e in &refs {
                trace.push(MemRef::read(ds, e * 8));
            }
        }
        let sim = simulate(&trace, cfg);
        prop_assert_eq!(modeled, sim.ds(ds).misses as f64);
    }
}

/// The random model against a simulated uniform-random workload: within
/// the paper's 15 % band for representative configurations.
#[test]
fn random_model_tracks_simulation() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let cases = [
        // (N, E, k, iter, cache)
        (
            1000u64,
            32u64,
            150u64,
            400u64,
            CacheConfig::new(4, 64, 32).unwrap(),
        ),
        (4000, 16, 200, 300, CacheConfig::new(8, 128, 32).unwrap()),
        (512, 64, 64, 500, CacheConfig::new(4, 64, 64).unwrap()),
    ];
    for (n, e, k, iters, cfg) in cases {
        let spec = RandomSpec {
            num_elements: n,
            element_bytes: e,
            k,
            iterations: iters,
            ratio: 1.0,
        };
        let modeled = spec.mem_accesses(&CacheView::exclusive(cfg)).unwrap();

        // Simulate: construction sweep, then `iters` rounds of `k`
        // distinct uniform elements each.
        let mut trace = Trace::new();
        let ds = trace.registry.register("T");
        for i in 0..n {
            trace.push(MemRef::read(ds, i * e));
        }
        let mut rng = StdRng::seed_from_u64(0xD15EA5E);
        for _ in 0..iters {
            let mut seen = std::collections::HashSet::new();
            while seen.len() < k as usize {
                let i = rng.gen_range(0..n);
                if seen.insert(i) {
                    trace.push(MemRef::read(ds, i * e));
                }
            }
        }
        let sim = simulate(&trace, cfg);
        let measured = sim.ds(ds).misses as f64;
        let err = (modeled - measured).abs() / measured;
        assert!(
            err < 0.15,
            "N={n} E={e} k={k} iter={iters}: model {modeled} vs sim {measured} ({:.1}% off)",
            err * 100.0
        );
    }
}
