//! `diffcheck` — run the differential oracle grid and report agreement.
//!
//! ```text
//! diffcheck [--smoke] [--json] [--fused] [--seed N]
//! ```
//!
//! * `--smoke` — reduced grid (first two problem sizes per pattern,
//!   24 points) for CI; the default full grid is 48 points.
//! * `--json`  — emit the versioned `dvf-difftest/1` report instead of
//!   the text table.
//! * `--fused` — stream each workload straight from the recorder into
//!   the geometry simulators (no trace materialization); bit-identical
//!   results to the default buffered replay.
//! * `--seed N` — base seed for workload generation (default 1).
//!
//! Exits 1 if any grid point disagrees beyond its model's tolerance.

use std::process::ExitCode;

const USAGE: &str = "usage: diffcheck [--smoke] [--json] [--fused] [--seed N]";

fn main() -> ExitCode {
    let mut smoke = false;
    let mut json = false;
    let mut fused = false;
    let mut seed: u64 = 1;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--json" => json = true,
            "--fused" => fused = true,
            "--seed" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs an unsigned integer\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                seed = v;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = if fused {
        dvf_difftest::run_grid_fused(seed, smoke)
    } else {
        dvf_difftest::run_grid(seed, smoke)
    };
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.failures().is_empty() {
        ExitCode::SUCCESS
    } else {
        if json {
            // The table names the failing points; echo them for JSON runs.
            for p in report.failures() {
                eprintln!(
                    "FAIL {} {} {}: model {:.1} vs simulated {:.0} (rel_err {:.4} > {:.3})",
                    p.pattern,
                    p.case,
                    dvf_difftest::oracle::geometry_label(p.config),
                    p.model,
                    p.simulated,
                    p.rel_err,
                    p.tolerance
                );
            }
        }
        ExitCode::FAILURE
    }
}
