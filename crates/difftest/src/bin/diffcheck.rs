//! `diffcheck` — run the differential oracle grid and report agreement.
//!
//! ```text
//! diffcheck [--smoke] [--json] [--fused] [--hierarchy] [--seed N]
//!           [--predict model.json [--bound F]]
//! ```
//!
//! * `--smoke` — reduced grid (first two problem sizes per pattern,
//!   24 points) for CI; the default full grid is 48 points.
//! * `--json`  — emit the versioned `dvf-difftest/1` report instead of
//!   the text table.
//! * `--fused` — stream each workload straight from the recorder into
//!   the geometry simulators (no trace materialization); bit-identical
//!   results to the default buffered replay.
//! * `--hierarchy` — run the multi-level hierarchy oracle instead:
//!   the engine versus an independent reference model at zero
//!   tolerance, over stacks of every inclusion policy, LRU and FIFO,
//!   with and without prefetchers, plus closed-form rows
//!   (`dvf-difftest-hierarchy/1` under `--json`).
//! * `--predict model.json` — score a shipped learned model against the
//!   grid instead of the closed forms: every workload is featurized
//!   in-stream, each (case, geometry) point is predicted from features
//!   alone and compared with the simulator. Exits 1 if the maximum
//!   relative error regresses past the pinned
//!   [`PREDICT_BOUND`](dvf_difftest::PREDICT_BOUND) (override with
//!   `--bound F`); `dvf-learn-score/1` under `--json`.
//! * `--seed N` — base seed for workload generation (default 1).
//!
//! Exits 1 if any grid point disagrees beyond its model's tolerance.

use std::process::ExitCode;

const USAGE: &str = "usage: diffcheck [--smoke] [--json] [--fused] [--hierarchy] [--seed N] [--predict model.json [--bound F]]";

fn main() -> ExitCode {
    let mut smoke = false;
    let mut json = false;
    let mut fused = false;
    let mut hierarchy = false;
    let mut seed: u64 = 1;
    let mut predict: Option<String> = None;
    let mut bound = dvf_difftest::PREDICT_BOUND;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--json" => json = true,
            "--fused" => fused = true,
            "--hierarchy" => hierarchy = true,
            "--seed" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs an unsigned integer\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                seed = v;
            }
            "--predict" => {
                let Some(path) = args.next() else {
                    eprintln!("--predict needs a model path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                predict = Some(path);
            }
            "--bound" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--bound needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                bound = v;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = predict {
        if hierarchy || fused {
            eprintln!("--predict runs its own fused featurized replay\n{USAGE}");
            return ExitCode::FAILURE;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let model = match dvf_learn::NhaModel::from_json(&text) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = dvf_difftest::learndata::score_model_with_bound(&model, seed, smoke, bound);
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render_text());
        }
        return if report.pass() {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "learned model regressed: max rel_err {:.4} > bound {:.2}",
                report.max_rel_err(),
                bound
            );
            ExitCode::FAILURE
        };
    }

    if hierarchy {
        if fused {
            eprintln!("--hierarchy has no fused mode (it replays in-memory traces)\n{USAGE}");
            return ExitCode::FAILURE;
        }
        let report = dvf_difftest::run_hierarchy_grid(seed, smoke);
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render_text());
        }
        let failures = report.failures();
        if failures.is_empty() {
            return ExitCode::SUCCESS;
        }
        if json {
            for p in &failures {
                eprintln!(
                    "FAIL {} {} {}: expected {} got {}",
                    p.workload, p.stack, p.quantity, p.expected, p.actual
                );
            }
        }
        return ExitCode::FAILURE;
    }

    let report = if fused {
        dvf_difftest::run_grid_fused(seed, smoke)
    } else {
        dvf_difftest::run_grid(seed, smoke)
    };
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.failures().is_empty() {
        ExitCode::SUCCESS
    } else {
        if json {
            // The table names the failing points; echo them for JSON runs.
            for p in report.failures() {
                eprintln!(
                    "FAIL {} {} {}: model {:.1} vs simulated {:.0} (rel_err {:.4} > {:.3})",
                    p.pattern,
                    p.case,
                    dvf_difftest::oracle::geometry_label(p.config),
                    p.model,
                    p.simulated,
                    p.rel_err,
                    p.tolerance
                );
            }
        }
        ExitCode::FAILURE
    }
}
