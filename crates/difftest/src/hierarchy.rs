//! Differential oracle for the multi-level cache hierarchy.
//!
//! The CGPMAC oracle (`crate::oracle`) checks the simulator against
//! *closed forms*, which only exist for single-level LRU. The hierarchy
//! has no closed form for arbitrary stacks, so this module checks it
//! against an **independent reference model**: a deliberately naive
//! re-implementation of the same write-back semantics over
//! `Vec`-of-lines sets with monotonic recency counters — no flat
//! struct-of-arrays layout, no packed tag words, no rank permutations,
//! no bit-scans. The two implementations share nothing but the
//! specification:
//!
//! * demand misses walk down until a level holds the line; every level
//!   on the way observes one line-sized read;
//! * victim writebacks are **write-no-fill**: a dirty victim offered to
//!   a non-exclusive lower level updates a resident copy in place or is
//!   forwarded down, never allocating (the accounting bug this PR
//!   fixes);
//! * fills happen before victim routing (fill-before-writeback order);
//! * exclusive levels extract on hit and allocate victims, clean and
//!   dirty alike;
//! * inclusive evictions back-invalidate the levels above, folding an
//!   upper dirty copy into the one downstream writeback;
//! * prefetch fills are tagged: sourced by probes (never perturbing
//!   lower-level recency), charged to a separate DRAM pool, invisible
//!   in demand hit/miss statistics.
//!
//! Agreement is **exact** (tolerance zero): every compared quantity —
//! per-level hits, misses and writebacks, per-data-structure DRAM reads
//! and writes, prefetch counters — must match bit-for-bit over seeded
//! mixed read/write workloads across two- and three-level stacks of
//! every inclusion policy. The reference model implements LRU and FIFO,
//! the two policies whose abstract state (recency order, fill order) is
//! specified independently of the engine's data layout; PLRU and random
//! stacks are exercised by the engine's own unit and property tests
//! instead, since replicating them would mean mirroring internals, not
//! checking a specification.
//!
//! A handful of arithmetic closed-form rows ride along where hand
//! analysis *is* possible: streaming reads and writes through a small
//! stack, a sequential-stream prefetcher (one demand miss, every other
//! line prefetched, one overshoot), and the headline writeback pin — a
//! dirty eviction must cost exactly one DRAM write and zero extra DRAM
//! reads, which the old read-allocating writeback path got wrong.

use crate::rng::SplitMix64;
use dvf_cachesim::{
    simulate_hierarchy_config, AccessKind, CacheConfig, CacheGeometry, CacheStats, DsId,
    HierarchyConfig, HierarchyReport, InclusionPolicy, LevelSpec, MemRef, PolicyKind, Trace,
    Victim, MAX_PREFETCH_DEGREE,
};
use dvf_obs::JsonWriter;

/// JSON schema identifier for [`HierarchyGridReport::to_json`].
pub const JSON_SCHEMA: &str = "dvf-difftest-hierarchy/1";

// ---------------------------------------------------------------------------
// Reference cache: one set = Vec of lines, recency = monotonic counter.
// ---------------------------------------------------------------------------

/// Replacement policies the reference model can replicate exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefPolicy {
    Lru,
    Fifo,
}

impl RefPolicy {
    fn of(kind: PolicyKind) -> Self {
        match kind {
            PolicyKind::Lru => RefPolicy::Lru,
            PolicyKind::Fifo => RefPolicy::Fifo,
            other => panic!("reference model does not replicate {other:?}"),
        }
    }
}

#[derive(Debug, Clone)]
struct RefLine {
    tag: u64,
    owner: DsId,
    dirty: bool,
    /// Monotonic stamp: LRU bumps it on hit and fill, FIFO only on
    /// fill. The victim is always the minimum-stamp line.
    rank: u64,
}

/// Naive set-associative cache with the same observable semantics as
/// `dvf_cachesim::SetAssociativeCache` under LRU or FIFO.
///
/// Physical way order is mirrored too — fills append to the occupied
/// prefix or replace the evicted way in place, and invalidation
/// swap-removes with the last occupied way — so even order-sensitive
/// outputs like `drain_dirty` (which walks ways in slot order) agree.
#[derive(Debug, Clone)]
struct RefCache {
    geom: CacheGeometry,
    assoc: usize,
    policy: RefPolicy,
    sets: Vec<Vec<RefLine>>,
    clock: u64,
    stats: CacheStats,
}

impl RefCache {
    fn new(config: CacheConfig, policy: RefPolicy) -> Self {
        Self {
            geom: config.geometry(),
            assoc: config.associativity,
            policy,
            sets: vec![Vec::new(); config.num_sets],
            clock: 0,
            stats: CacheStats::new(),
        }
    }

    fn bump(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn locate(&self, addr: u64) -> (usize, u64, Option<usize>) {
        let block = self.geom.block_of(addr);
        let set_idx = self.geom.set_of(block);
        let tag = self.geom.tag_of(block);
        let pos = self.sets[set_idx].iter().position(|l| l.tag == tag);
        (set_idx, tag, pos)
    }

    /// Fill `tag` into `set_idx`, evicting the minimum-stamp line if the
    /// set is full (charging the victim's writeback to its owner).
    fn fill(&mut self, set_idx: usize, tag: u64, owner: DsId, dirty: bool) -> Option<Victim> {
        let rank = self.bump();
        let set = &mut self.sets[set_idx];
        if set.len() < self.assoc {
            set.push(RefLine {
                tag,
                owner,
                dirty,
                rank,
            });
            return None;
        }
        let pos = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.rank)
            .map(|(i, _)| i)
            .expect("full set is non-empty");
        let old = &set[pos];
        let victim = Victim {
            owner: old.owner,
            addr: self.geom.addr_of(old.tag, set_idx),
            dirty: old.dirty,
        };
        set[pos] = RefLine {
            tag,
            owner,
            dirty,
            rank,
        };
        if victim.dirty {
            self.stats.ds_mut(victim.owner).writebacks += 1;
        }
        Some(victim)
    }

    /// One demand reference: `(hit, victim)`.
    fn demand_access(&mut self, r: MemRef) -> (bool, Option<Victim>) {
        let is_write = r.kind == AccessKind::Write;
        let ds = self.stats.ds_mut(r.ds);
        if is_write {
            ds.writes += 1;
        } else {
            ds.reads += 1;
        }
        let (set_idx, tag, pos) = self.locate(r.addr);
        if let Some(pos) = pos {
            self.stats.ds_mut(r.ds).hits += 1;
            if is_write {
                self.sets[set_idx][pos].dirty = true;
            }
            if self.policy == RefPolicy::Lru {
                let rank = self.bump();
                self.sets[set_idx][pos].rank = rank;
            }
            return (true, None);
        }
        self.stats.ds_mut(r.ds).misses += 1;
        let victim = self.fill(set_idx, tag, r.ds, is_write);
        (false, victim)
    }

    /// Demand lookup without fill, extracting on hit (exclusive levels).
    fn lookup_extract(&mut self, r: MemRef) -> Option<bool> {
        let ds = self.stats.ds_mut(r.ds);
        if r.kind == AccessKind::Write {
            ds.writes += 1;
        } else {
            ds.reads += 1;
        }
        let (set_idx, _, pos) = self.locate(r.addr);
        match pos {
            Some(pos) => {
                self.stats.ds_mut(r.ds).hits += 1;
                let line = self.sets[set_idx].swap_remove(pos);
                Some(line.dirty)
            }
            None => {
                self.stats.ds_mut(r.ds).misses += 1;
                None
            }
        }
    }

    /// Write-no-fill: update a resident copy in place, else refuse.
    fn absorb_writeback(&mut self, addr: u64) -> bool {
        let (set_idx, _, pos) = self.locate(addr);
        match pos {
            Some(pos) => {
                self.sets[set_idx][pos].dirty = true;
                if self.policy == RefPolicy::Lru {
                    let rank = self.bump();
                    self.sets[set_idx][pos].rank = rank;
                }
                true
            }
            None => false,
        }
    }

    /// Allocate without a memory read (exclusive victim fills, prefetch).
    fn install(&mut self, owner: DsId, addr: u64, dirty: bool) -> Option<Victim> {
        let (set_idx, tag, pos) = self.locate(addr);
        if let Some(pos) = pos {
            if dirty {
                self.sets[set_idx][pos].dirty = true;
            }
            if self.policy == RefPolicy::Lru {
                let rank = self.bump();
                self.sets[set_idx][pos].rank = rank;
            }
            return None;
        }
        self.fill(set_idx, tag, owner, dirty)
    }

    fn probe(&self, addr: u64) -> bool {
        self.locate(addr).2.is_some()
    }

    fn mark_dirty(&mut self, addr: u64) -> bool {
        let (set_idx, _, pos) = self.locate(addr);
        match pos {
            Some(pos) => {
                self.sets[set_idx][pos].dirty = true;
                true
            }
            None => false,
        }
    }

    fn invalidate(&mut self, addr: u64) -> Option<Victim> {
        let (set_idx, _, pos) = self.locate(addr);
        pos.map(|pos| {
            let line = self.sets[set_idx].swap_remove(pos);
            Victim {
                owner: line.owner,
                addr: self.geom.addr_of(line.tag, set_idx),
                dirty: line.dirty,
            }
        })
    }

    /// Flush everything, returning dirty lines in slot order and
    /// charging their writebacks (mirrors `drain_dirty`).
    fn drain_dirty(&mut self) -> Vec<Victim> {
        let mut out = Vec::new();
        for set_idx in 0..self.sets.len() {
            let set = std::mem::take(&mut self.sets[set_idx]);
            for line in set {
                if line.dirty {
                    self.stats.ds_mut(line.owner).writebacks += 1;
                    out.push(Victim {
                        owner: line.owner,
                        addr: self.geom.addr_of(line.tag, set_idx),
                        dirty: true,
                    });
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Reference prefetcher and hierarchy walk.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default)]
struct RefStream {
    last_block: i64,
    last_delta: i64,
    primed: bool,
}

/// Next-line + constant-stride predictor, re-derived from its spec: two
/// consecutive equal non-zero deltas lock a stride, anything else
/// degrades to next-line; streams are tracked per data structure.
#[derive(Debug, Clone, Default)]
struct RefPrefetcher {
    degree: usize,
    streams: Vec<RefStream>,
    issued: u64,
    redundant: u64,
    filled: u64,
    dram_reads: u64,
}

impl RefPrefetcher {
    fn advance(&mut self, ds: usize, block: i64) -> Vec<i64> {
        if self.streams.len() <= ds {
            self.streams.resize(ds + 1, RefStream::default());
        }
        let s = &mut self.streams[ds];
        let step = if s.primed {
            let delta = block - s.last_block;
            let locked = delta != 0 && delta == s.last_delta;
            s.last_delta = delta;
            if locked {
                delta
            } else {
                1
            }
        } else {
            s.primed = true;
            1
        };
        s.last_block = block;
        (1..=self.degree as i64)
            .map(|k| block + step * k)
            .filter(|&c| c >= 0)
            .collect()
    }
}

#[derive(Debug, Clone)]
struct RefLevel {
    cache: RefCache,
    inclusion: InclusionPolicy,
    line_bytes: u64,
    line_shift: u32,
    prefetcher: Option<RefPrefetcher>,
}

/// The reference hierarchy: same walk specification, independent engine.
#[derive(Debug)]
struct RefHierarchy {
    levels: Vec<RefLevel>,
    dram: CacheStats,
    dram_prefetch: CacheStats,
}

impl RefHierarchy {
    fn new(config: &HierarchyConfig) -> Self {
        let levels = config
            .levels()
            .iter()
            .map(|spec| RefLevel {
                cache: RefCache::new(spec.cache, RefPolicy::of(spec.policy)),
                inclusion: spec.inclusion,
                line_bytes: spec.cache.line_bytes as u64,
                line_shift: (spec.cache.line_bytes as u64).trailing_zeros(),
                prefetcher: (spec.prefetch_degree > 0).then(|| RefPrefetcher {
                    degree: spec.prefetch_degree.min(MAX_PREFETCH_DEGREE),
                    ..RefPrefetcher::default()
                }),
            })
            .collect();
        Self {
            levels,
            dram: CacheStats::new(),
            dram_prefetch: CacheStats::new(),
        }
    }

    fn access(&mut self, mref: MemRef) {
        let n = self.levels.len();
        let (hit0, victim0) = self.levels[0].cache.demand_access(mref);
        let mut hit_level = if hit0 { 0 } else { n };
        let mut pending: Vec<(usize, Victim)> = Vec::new();
        if let Some(v) = victim0 {
            pending.push((0, v));
        }
        if !hit0 {
            let mut extracted_dirty = false;
            for i in 1..n {
                let lower = MemRef::new(mref.ds, mref.addr, AccessKind::Read);
                if self.levels[i].inclusion == InclusionPolicy::Exclusive {
                    if let Some(dirty) = self.levels[i].cache.lookup_extract(lower) {
                        extracted_dirty |= dirty;
                        hit_level = i;
                        break;
                    }
                } else {
                    let (hit, victim) = self.levels[i].cache.demand_access(lower);
                    if let Some(v) = victim {
                        pending.push((i, v));
                    }
                    if hit {
                        hit_level = i;
                        break;
                    }
                }
            }
            if hit_level == n {
                self.dram.ds_mut(mref.ds).misses += 1;
            }
            if extracted_dirty {
                self.levels[0].cache.mark_dirty(mref.addr);
            }
            for (i, v) in pending {
                self.push_victim(i, v);
            }
        }
        for i in 0..=hit_level.min(n - 1) {
            if self.levels[i].prefetcher.is_some() {
                self.issue_prefetches(i, mref.ds, mref.addr);
            }
        }
    }

    fn push_victim(&mut self, from: usize, victim: Victim) {
        let mut v = victim;
        if self.levels[from].inclusion == InclusionPolicy::Inclusive
            && from > 0
            && self.invalidate_above(from, v.addr)
        {
            v.dirty = true;
        }
        let n = self.levels.len();
        let mut j = from + 1;
        while j < n {
            if self.levels[j].inclusion == InclusionPolicy::Exclusive {
                match self.levels[j].cache.install(v.owner, v.addr, v.dirty) {
                    None => return,
                    Some(next) => {
                        v = next;
                        j += 1;
                    }
                }
            } else {
                if !v.dirty {
                    return;
                }
                if self.levels[j].cache.absorb_writeback(v.addr) {
                    return;
                }
                j += 1;
            }
        }
        if v.dirty {
            self.dram.ds_mut(v.owner).writebacks += 1;
        }
    }

    fn invalidate_above(&mut self, j: usize, addr: u64) -> bool {
        let line_j = self.levels[j].line_bytes;
        let mut dirty = false;
        for i in 0..j {
            let line_i = self.levels[i].line_bytes;
            let mut a = addr;
            while a < addr + line_j {
                if let Some(v) = self.levels[i].cache.invalidate(a) {
                    dirty |= v.dirty;
                }
                a += line_i;
            }
        }
        dirty
    }

    fn issue_prefetches(&mut self, i: usize, ds: DsId, addr: u64) {
        let shift = self.levels[i].line_shift;
        let block = (addr >> shift) as i64;
        let pf = self.levels[i].prefetcher.as_mut().expect("caller checked");
        let cands = pf.advance(ds.index(), block);
        for cand in cands {
            let paddr = (cand as u64) << shift;
            self.levels[i].prefetcher.as_mut().expect("present").issued += 1;
            if self.levels[i].cache.probe(paddr) {
                self.levels[i]
                    .prefetcher
                    .as_mut()
                    .expect("present")
                    .redundant += 1;
                continue;
            }
            let from_below = (i + 1..self.levels.len()).any(|j| self.levels[j].cache.probe(paddr));
            if !from_below {
                self.dram_prefetch.ds_mut(ds).misses += 1;
                self.levels[i]
                    .prefetcher
                    .as_mut()
                    .expect("present")
                    .dram_reads += 1;
            }
            self.levels[i].prefetcher.as_mut().expect("present").filled += 1;
            if let Some(v) = self.levels[i].cache.install(ds, paddr, false) {
                self.push_victim(i, v);
            }
        }
    }

    fn flush(&mut self) {
        for i in 0..self.levels.len() {
            let drained = self.levels[i].cache.drain_dirty();
            for v in drained {
                self.push_victim(i, v);
            }
        }
    }

    /// Replay a trace, flush, and expose the counters for comparison.
    fn run(config: &HierarchyConfig, trace: &Trace) -> RefOutcome {
        let mut h = RefHierarchy::new(config);
        for &r in &trace.refs {
            h.access(r);
        }
        h.flush();
        RefOutcome {
            levels: h
                .levels
                .into_iter()
                .map(|l| {
                    let pf = l.prefetcher.unwrap_or_default();
                    (
                        l.cache.stats,
                        [pf.issued, pf.redundant, pf.filled, pf.dram_reads],
                    )
                })
                .collect(),
            dram: h.dram,
            dram_prefetch: h.dram_prefetch,
        }
    }
}

/// Counters of one reference-model run.
struct RefOutcome {
    /// Per level: demand stats plus `[issued, redundant, filled,
    /// dram_reads]` prefetch counters.
    levels: Vec<(CacheStats, [u64; 4])>,
    dram: CacheStats,
    dram_prefetch: CacheStats,
}

// ---------------------------------------------------------------------------
// Grid: stacks × workloads, compared quantity by quantity.
// ---------------------------------------------------------------------------

/// One compared quantity of one (workload, stack) case.
#[derive(Debug, Clone)]
pub struct HierarchyPoint {
    /// Workload name (`mixed`, `write-storm`, `stream-reads`, ...).
    pub workload: &'static str,
    /// Stack label, e.g. `2w8s32B:lru:nine+4w32s32B:lru:nine`.
    pub stack: String,
    /// Quantity name, e.g. `L2.misses` or `dram.writes.A`.
    pub quantity: String,
    /// Reference-model (or closed-form) value.
    pub expected: u64,
    /// Engine value.
    pub actual: u64,
}

impl HierarchyPoint {
    /// Agreement is exact: the oracle tolerates no drift.
    pub fn pass(&self) -> bool {
        self.expected == self.actual
    }
}

/// Full hierarchy-oracle run.
#[derive(Debug, Clone)]
pub struct HierarchyGridReport {
    /// Base seed the workloads derived from.
    pub seed: u64,
    /// Whether the reduced smoke grid ran.
    pub smoke: bool,
    /// Every compared quantity.
    pub points: Vec<HierarchyPoint>,
}

impl HierarchyGridReport {
    /// Points that disagreed.
    pub fn failures(&self) -> Vec<&HierarchyPoint> {
        self.points.iter().filter(|p| !p.pass()).collect()
    }

    /// Fixed-width table, one row per compared quantity.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:<46} {:<18} {:>12} {:>12}  status",
            "workload", "stack", "quantity", "expected", "actual"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<12} {:<46} {:<18} {:>12} {:>12}  {}",
                p.workload,
                p.stack,
                p.quantity,
                p.expected,
                p.actual,
                if p.pass() { "ok" } else { "FAIL" }
            );
        }
        let failed = self.failures().len();
        let _ = writeln!(
            out,
            "{} points, {} failed (exact agreement required)",
            self.points.len(),
            failed
        );
        out
    }

    /// Machine-readable form (schema [`JSON_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string(JSON_SCHEMA);
        w.key("seed").u64(self.seed);
        w.key("smoke").bool(self.smoke);
        w.key("points").begin_array();
        for p in &self.points {
            w.begin_object();
            w.key("workload").string(p.workload);
            w.key("stack").string(&p.stack);
            w.key("quantity").string(&p.quantity);
            w.key("expected").u64(p.expected);
            w.key("actual").u64(p.actual);
            w.key("pass").bool(p.pass());
            w.end_object();
        }
        w.end_array();
        w.key("summary").begin_object();
        w.key("points").u64(self.points.len() as u64);
        w.key("failed").u64(self.failures().len() as u64);
        w.end_object();
        w.end_object();
        w.finish()
    }
}

fn cfg(assoc: usize, sets: usize, line: usize) -> CacheConfig {
    CacheConfig::new(assoc, sets, line).expect("grid geometry is valid")
}

fn spec(
    config: CacheConfig,
    policy: PolicyKind,
    inclusion: InclusionPolicy,
    prefetch: usize,
) -> LevelSpec {
    LevelSpec::new(config)
        .with_policy(policy)
        .with_inclusion(inclusion)
        .with_prefetch(prefetch)
}

/// The stacks the reference model is diffed against. Small geometries
/// (hundreds of bytes to a few KiB) keep runs fast while forcing heavy
/// eviction traffic; every inclusion policy, both replicable
/// replacement policies, two- and three-level depths, mixed line sizes
/// and prefetchers at both depths are covered.
fn grid_stacks(smoke: bool) -> Vec<HierarchyConfig> {
    use InclusionPolicy::{Exclusive, Inclusive, Nine};
    use PolicyKind::{Fifo, Lru};
    let l1 = cfg(2, 8, 32); // 512 B
    let l2 = cfg(4, 32, 32); // 4 KiB
    let l3 = cfg(8, 64, 32); // 16 KiB
    let mut stacks = vec![
        vec![spec(l1, Lru, Nine, 0), spec(l2, Lru, Nine, 0)],
        vec![spec(l1, Lru, Nine, 0), spec(l2, Lru, Inclusive, 0)],
        vec![spec(l1, Lru, Nine, 0), spec(l2, Lru, Exclusive, 0)],
        vec![spec(l1, Fifo, Nine, 0), spec(l2, Fifo, Nine, 0)],
    ];
    if !smoke {
        stacks.extend([
            vec![spec(l1, Fifo, Nine, 0), spec(l2, Lru, Inclusive, 0)],
            // Mixed line sizes: back-invalidation splits one L2 line
            // into two L1 sub-lines.
            vec![
                spec(l1, Lru, Nine, 0),
                spec(cfg(4, 16, 64), Lru, Inclusive, 0),
            ],
            // Prefetch at the top and at the bottom of a two-level stack.
            vec![spec(l1, Lru, Nine, 2), spec(l2, Lru, Nine, 0)],
            vec![spec(l1, Lru, Nine, 0), spec(l2, Lru, Nine, 1)],
            vec![
                spec(l1, Lru, Nine, 0),
                spec(l2, Lru, Inclusive, 0),
                spec(l3, Lru, Inclusive, 0),
            ],
            vec![
                spec(l1, Lru, Nine, 0),
                spec(l2, Fifo, Nine, 1),
                spec(l3, Lru, Exclusive, 0),
            ],
        ]);
    }
    stacks
        .into_iter()
        .map(|levels| HierarchyConfig::new(levels).expect("grid stacks are valid"))
        .collect()
}

/// Seeded mixed read/write trace over two data structures.
///
/// Interleaves short sequential runs (which train the stride prefetcher
/// and produce hits) with uniform jumps over a footprint several times
/// the largest stack (which produce misses and dirty evictions).
fn mixed_trace(seed: u64, refs: usize, write_pct: usize) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let mut trace = Trace::new();
    let a = trace.registry.register("A");
    let b = trace.registry.register("B");
    // 2048 32-byte blocks per structure = 64 KiB footprint each, 4x the
    // largest grid stack.
    const BLOCKS: usize = 2048;
    const LINE: u64 = 32;
    let mut cursor = [0usize; 2];
    let mut i = 0;
    while i < refs {
        let ds_idx = rng.below(2);
        let ds = if ds_idx == 0 { a } else { b };
        let base = (ds_idx as u64) << 32;
        let run = 1 + rng.below(6);
        if rng.below(4) == 0 {
            cursor[ds_idx] = rng.below(BLOCKS);
        }
        for _ in 0..run {
            if i >= refs {
                break;
            }
            let addr = base + (cursor[ds_idx] as u64) * LINE + rng.below(LINE as usize) as u64;
            let kind = if rng.below(100) < write_pct {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            trace.push(MemRef::new(ds, addr, kind));
            cursor[ds_idx] = (cursor[ds_idx] + 1) % BLOCKS;
            i += 1;
        }
    }
    trace
}

/// Compare engine and reference over one (workload, stack) case,
/// appending one point per quantity.
fn diff_case(
    points: &mut Vec<HierarchyPoint>,
    workload: &'static str,
    config: &HierarchyConfig,
    trace: &Trace,
) {
    let engine: HierarchyReport = simulate_hierarchy_config(trace, config);
    let reference = RefHierarchy::run(config, trace);
    let stack = config.label();
    let mut push = |quantity: String, expected: u64, actual: u64| {
        points.push(HierarchyPoint {
            workload,
            stack: stack.clone(),
            quantity,
            expected,
            actual,
        });
    };
    for (i, (level, (ref_stats, ref_pf))) in engine.levels.iter().zip(&reference.levels).enumerate()
    {
        let eng = level.stats.total();
        let refr = ref_stats.total();
        push(format!("L{}.hits", i + 1), refr.hits, eng.hits);
        push(format!("L{}.misses", i + 1), refr.misses, eng.misses);
        push(
            format!("L{}.writebacks", i + 1),
            refr.writebacks,
            eng.writebacks,
        );
        if level.prefetch_degree > 0 {
            push(
                format!("L{}.pf.issued", i + 1),
                ref_pf[0],
                level.prefetch.issued,
            );
            push(
                format!("L{}.pf.redundant", i + 1),
                ref_pf[1],
                level.prefetch.redundant,
            );
            push(
                format!("L{}.pf.filled", i + 1),
                ref_pf[2],
                level.prefetch.filled,
            );
            push(
                format!("L{}.pf.dram_reads", i + 1),
                ref_pf[3],
                level.prefetch.dram_reads,
            );
        }
    }
    // DRAM traffic per data structure: the quantity DVF consumes, and
    // where the old writeback path misattributed accesses.
    for (id, name) in trace.registry.iter() {
        push(
            format!("dram.reads.{name}"),
            reference.dram.ds(id).misses,
            engine.dram.ds(id).misses,
        );
        push(
            format!("dram.writes.{name}"),
            reference.dram.ds(id).writebacks,
            engine.dram.ds(id).writebacks,
        );
    }
    push(
        "dram.pf.reads".to_string(),
        reference.dram_prefetch.total().misses,
        engine.dram_prefetch.total().misses,
    );
}

/// Closed-form rows: hand-derivable expectations, checked exactly.
fn closed_form_points(points: &mut Vec<HierarchyPoint>) {
    use InclusionPolicy::Nine;
    use PolicyKind::Lru;
    let mut push = |workload, stack: String, quantity: &str, expected, actual| {
        points.push(HierarchyPoint {
            workload,
            stack,
            quantity: quantity.to_string(),
            expected,
            actual,
        });
    };

    // Streaming reads: every one of `lines` distinct lines costs exactly
    // one DRAM read; clean evictions cost nothing.
    let stack = HierarchyConfig::new(vec![
        spec(cfg(2, 8, 32), Lru, Nine, 0),
        spec(cfg(4, 32, 32), Lru, Nine, 0),
    ])
    .expect("valid");
    let lines = 512u64;
    let mut trace = Trace::new();
    let a = trace.registry.register("A");
    for i in 0..lines {
        trace.push(MemRef::read(a, i * 32));
    }
    let rep = simulate_hierarchy_config(&trace, &stack);
    push(
        "stream-reads",
        stack.label(),
        "dram.reads",
        lines,
        rep.dram.total().misses,
    );
    push(
        "stream-reads",
        stack.label(),
        "dram.writes",
        0,
        rep.dram.total().writebacks,
    );

    // Streaming writes: one write-allocate read plus exactly one
    // writeback per line once the run flushes — no line is dirtied twice
    // and none is written back twice.
    let mut trace = Trace::new();
    let a = trace.registry.register("A");
    for i in 0..lines {
        trace.push(MemRef::write(a, i * 32));
    }
    let rep = simulate_hierarchy_config(&trace, &stack);
    push(
        "stream-writes",
        stack.label(),
        "dram.reads",
        lines,
        rep.dram.total().misses,
    );
    push(
        "stream-writes",
        stack.label(),
        "dram.writes",
        lines,
        rep.dram.total().writebacks,
    );

    // Sequential stream under an LLC next-line prefetcher: the first
    // access misses to DRAM, every later line was prefetched, and the
    // prefetcher overshoots by exactly one line — so `lines` prefetch
    // reads, one demand read, one LLC demand miss.
    let pf_stack = HierarchyConfig::new(vec![
        spec(cfg(1, 4, 32), Lru, Nine, 0),
        spec(cfg(4, 64, 32), Lru, Nine, 1),
    ])
    .expect("valid");
    let pf_lines = 128u64;
    let mut trace = Trace::new();
    let a = trace.registry.register("A");
    for i in 0..pf_lines {
        trace.push(MemRef::read(a, i * 32));
    }
    let rep = simulate_hierarchy_config(&trace, &pf_stack);
    push(
        "stream-pf",
        pf_stack.label(),
        "L2.misses",
        1,
        rep.levels[1].stats.total().misses,
    );
    push(
        "stream-pf",
        pf_stack.label(),
        "dram.reads",
        1,
        rep.dram.total().misses,
    );
    push(
        "stream-pf",
        pf_stack.label(),
        "dram.pf.reads",
        pf_lines,
        rep.dram_prefetch.total().misses,
    );

    // The headline writeback pin. A one-line L1 forces `W(A0); R(B0)` to
    // evict dirty A0; write-no-fill means that eviction costs exactly
    // one DRAM write and *no* DRAM read beyond the two demand fills. The
    // old read-allocating writeback charged a third, phantom DRAM read
    // (and a fourth once B0's clean eviction was re-fetched).
    let pin_stack = HierarchyConfig::new(vec![
        spec(cfg(1, 1, 32), Lru, Nine, 0),
        spec(cfg(4, 16, 32), Lru, Nine, 0),
    ])
    .expect("valid");
    let mut trace = Trace::new();
    let a = trace.registry.register("A");
    let b = trace.registry.register("B");
    trace.push(MemRef::write(a, 0));
    trace.push(MemRef::read(b, 1 << 20));
    let rep = simulate_hierarchy_config(&trace, &pin_stack);
    push(
        "writeback-pin",
        pin_stack.label(),
        "dram.reads",
        2,
        rep.dram.total().misses,
    );
    push(
        "writeback-pin",
        pin_stack.label(),
        "dram.writes.A",
        1,
        rep.dram.ds(a).writebacks,
    );
    push(
        "writeback-pin",
        pin_stack.label(),
        "dram.writes.B",
        0,
        rep.dram.ds(b).writebacks,
    );
}

/// Run the hierarchy differential grid.
///
/// `smoke` restricts to four two-level stacks and a shorter trace (CI
/// pull-request budget); the full grid runs ten stacks including
/// three-level, mixed-line and prefetching shapes. Closed-form rows run
/// in both modes.
pub fn run_hierarchy_grid(seed: u64, smoke: bool) -> HierarchyGridReport {
    let refs = if smoke { 4_000 } else { 20_000 };
    let stacks = grid_stacks(smoke);
    let mut points = Vec::new();
    for (idx, stack) in stacks.iter().enumerate() {
        let mut mix = SplitMix64::new(seed ^ ((idx as u64 + 1) << 24));
        let case_seed = mix.next_u64();
        let mixed = mixed_trace(case_seed, refs, 35);
        diff_case(&mut points, "mixed", stack, &mixed);
        // Write-heavy storm: dirty evictions dominate, stressing the
        // write-no-fill path the headline bugfix corrected.
        let storm = mixed_trace(case_seed.wrapping_add(1), refs, 80);
        diff_case(&mut points, "write-storm", stack, &storm);
    }
    closed_form_points(&mut points);
    HierarchyGridReport {
        seed,
        smoke,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_agrees_exactly() {
        let report = run_hierarchy_grid(0xD1FF_7E57, true);
        let failures = report.failures();
        assert!(
            failures.is_empty(),
            "hierarchy oracle disagreements:\n{}",
            report.render_text()
        );
        assert!(report.points.len() > 40, "grid unexpectedly small");
    }

    #[test]
    fn closed_form_rows_present_and_exact() {
        let report = run_hierarchy_grid(1, true);
        let pin: Vec<_> = report
            .points
            .iter()
            .filter(|p| p.workload == "writeback-pin")
            .collect();
        assert_eq!(pin.len(), 3);
        assert!(pin.iter().all(|p| p.pass()), "writeback pin failed");
        assert!(report.points.iter().any(|p| p.workload == "stream-pf"));
    }

    #[test]
    fn reference_model_detects_seeded_divergence() {
        // Sanity that the oracle has teeth: a deliberately wrong
        // expectation must fail, not silently pass.
        let p = HierarchyPoint {
            workload: "mixed",
            stack: "x".into(),
            quantity: "dram.reads.A".into(),
            expected: 1,
            actual: 2,
        };
        assert!(!p.pass());
    }

    #[test]
    fn json_roundtrip_shape() {
        let report = run_hierarchy_grid(7, true);
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"dvf-difftest-hierarchy/1\""));
        assert!(json.contains("\"failed\":0"));
    }
}
