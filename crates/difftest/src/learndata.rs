//! Label pipeline and regression gate for the learned `N_ha` predictor.
//!
//! This module is where the repo's outputs become its own training data:
//! the oracle's seeded workload generators ([`crate::workloads`]) are
//! replayed once per replica through a [`record_tee`] of the simulator
//! fan-out (ground-truth labels) and the in-stream featurizer
//! ([`FeatureSink`], cheap features) — one fused pass, no trace
//! materialized — and the resulting (features × geometry → misses)
//! samples feed `dvf-learn`'s deterministic trainer.
//!
//! Labels are simulated over the *union* of every oracle geometry (nine
//! distinct single-level LRU caches from 8 KiB fully-associative to
//! 256 KiB 8-way), not just the three documented per pattern, so the
//! model sees capacity, associativity and line-size variation for every
//! access pattern.
//!
//! [`score_model`] is the permanent regression gate: it replays the
//! differential grid, predicts each point from stream features alone,
//! and compares against the simulator — `diffcheck --predict` fails the
//! build when [`PREDICT_BOUND`] is exceeded.

use crate::oracle::{self, geometry_label};
use crate::workloads::WorkloadDef;
use dvf_cachesim::{CacheConfig, DsId, SimJob};
use dvf_kernels::record_tee;
use dvf_learn::{assemble, train, CvReport, Dataset, FeatureVector, NhaModel, Sample, TrainConfig};
use dvf_obs::JsonWriter;
use std::cell::Cell;
use std::fmt::Write as _;

/// Pinned ceiling for the shipped model's maximum relative error on the
/// full differential grid (`diffcheck --predict` exits 1 beyond this).
/// Measured 0.14–0.21 across seeds (including cross-seed scoring, i.e.
/// predicting placements the model never trained on); 0.30 leaves margin
/// without letting a real regression through.
pub const PREDICT_BOUND: f64 = 0.30;

/// Pinned ceiling for the *cross-validated* maximum relative error
/// reported at training time (`dvf learn train --max-rel-err` defaults
/// to this; the CI learn-smoke step enforces it). Held-out maxima run
/// 0.58–0.68 across seeds — individual replica placements of the reuse
/// pattern are noisier than the replica-averaged grid points the score
/// gate sees.
pub const CV_BOUND: f64 = 0.8;

/// The union of every oracle geometry, deduplicated, in a stable order —
/// the training-label geometry grid.
pub fn train_geometries() -> Vec<CacheConfig> {
    let mut geoms: Vec<CacheConfig> = Vec::new();
    for replicas in oracle::build_workloads(1, true) {
        for p in &replicas[0].points {
            if !geoms.contains(&p.config) {
                geoms.push(p.config);
            }
        }
    }
    geoms
}

/// Record one workload replica once, fanning the identical stream into
/// the simulators and the featurizer. Returns (per-job miss counts of
/// the target structure, the target's feature vector).
fn replay_featurized(w: &WorkloadDef, jobs: &[SimJob]) -> (Vec<u64>, FeatureVector) {
    let target = Cell::new(DsId(0));
    let (_registry, fanout, sink) = record_tee(
        dvf_kernels::SimFanout::new(jobs),
        dvf_learn::FeatureSink::new(),
        |rec| target.set(w.record(rec)),
    );
    let reports = fanout.finish();
    let features = sink.finish();
    let misses = reports.iter().map(|r| r.ds(target.get()).misses).collect();
    (misses, features.ds(target.get()))
}

/// Build the labeled dataset for one (seed, grid) — every workload
/// replica × every training geometry.
pub fn build_dataset(seed: u64, smoke: bool) -> Dataset {
    let _span = dvf_obs::span("learn.dataset");
    let geoms = train_geometries();
    let jobs: Vec<SimJob> = geoms.iter().map(|&g| SimJob::lru(g)).collect();
    let mut samples = Vec::new();
    for replicas in oracle::build_workloads(seed, smoke) {
        for w in &replicas {
            let (misses, fv) = replay_featurized(w, &jobs);
            for (&g, &m) in geoms.iter().zip(&misses) {
                let x = assemble(&fv, g);
                let base = x[1] * fv.accesses as f64;
                samples.push(Sample {
                    x,
                    y: ((m as f64 + 1.0) / (base + 1.0)).ln(),
                    accesses: fv.accesses as f64,
                    misses: m as f64,
                    tag: format!("{} {} {}", w.pattern, w.case, geometry_label(g)),
                });
            }
        }
    }
    dvf_obs::add("learn.dataset.samples", samples.len() as u64);
    Dataset { samples }
}

/// Train a model on the (seed, grid) dataset. The returned artifact is
/// byte-deterministic in (seed, smoke): same inputs, same JSON.
pub fn train_grid(seed: u64, smoke: bool, folds: usize) -> (NhaModel, CvReport) {
    let dataset = build_dataset(seed, smoke);
    let cfg = TrainConfig {
        seed,
        folds,
        ..TrainConfig::default()
    };
    let (mut model, report) = train(&dataset, &cfg);
    model.smoke = smoke;
    (model, report)
}

/// One scored grid point: learned prediction vs simulator ground truth.
#[derive(Debug, Clone)]
pub struct PredictPoint {
    /// Pattern name.
    pub pattern: &'static str,
    /// Problem-size parameters.
    pub case: String,
    /// Cache geometry.
    pub config: CacheConfig,
    /// Model prediction from stream features.
    pub predicted: f64,
    /// Simulator miss count (averaged over placement replicas).
    pub simulated: f64,
    /// `|predicted − simulated| / max(simulated, 1)`.
    pub rel_err: f64,
}

/// Result of scoring a model against the differential grid.
#[derive(Debug)]
pub struct PredictReport {
    /// Base seed of the grid.
    pub seed: u64,
    /// Whether the reduced smoke grid was scored.
    pub smoke: bool,
    /// Bound the gate compares against.
    pub bound: f64,
    /// Every scored point, in grid order.
    pub points: Vec<PredictPoint>,
}

impl PredictReport {
    /// Largest relative error across the grid.
    pub fn max_rel_err(&self) -> f64 {
        self.points.iter().map(|p| p.rel_err).fold(0.0, f64::max)
    }

    /// Mean relative error across the grid.
    pub fn mean_rel_err(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.rel_err).sum::<f64>() / self.points.len() as f64
    }

    /// Whether every point is within the gate bound.
    pub fn pass(&self) -> bool {
        self.max_rel_err() <= self.bound
    }

    /// Plain-text predicted-vs-simulated table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "learned predictor vs simulator: seed={} grid={} bound={:.2}",
            self.seed,
            if self.smoke { "smoke" } else { "full" },
            self.bound
        );
        let _ = writeln!(
            out,
            "{:<9} {:<24} {:<16} {:>12} {:>12} {:>8}  status",
            "pattern", "case", "geometry", "predicted", "simulated", "rel_err"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<9} {:<24} {:<16} {:>12.1} {:>12.1} {:>8.4}  {}",
                p.pattern,
                p.case,
                geometry_label(p.config),
                p.predicted,
                p.simulated,
                p.rel_err,
                if p.rel_err <= self.bound {
                    "ok"
                } else {
                    "FAIL"
                }
            );
        }
        let _ = writeln!(
            out,
            "{} points, max rel_err {:.4}, mean rel_err {:.4}, bound {:.2} — {}",
            self.points.len(),
            self.max_rel_err(),
            self.mean_rel_err(),
            self.bound,
            if self.pass() { "PASS" } else { "FAIL" }
        );
        out
    }

    /// Versioned machine-readable report (`dvf-learn-score/1`).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string("dvf-learn-score/1");
        w.key("seed").u64(self.seed);
        w.key("smoke").bool(self.smoke);
        w.key("bound").f64(self.bound);
        w.key("points").begin_array();
        for p in &self.points {
            w.begin_object();
            w.key("pattern").string(p.pattern);
            w.key("case").string(&p.case);
            w.key("geometry").string(&geometry_label(p.config));
            w.key("predicted").f64(p.predicted);
            w.key("simulated").f64(p.simulated);
            w.key("rel_err").f64(p.rel_err);
            w.end_object();
        }
        w.end_array();
        w.key("summary").begin_object();
        w.key("points").u64(self.points.len() as u64);
        w.key("max_rel_err").f64(self.max_rel_err());
        w.key("mean_rel_err").f64(self.mean_rel_err());
        w.key("pass").bool(self.pass());
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Score a model against the differential grid: replay every workload,
/// featurize in-stream, predict each (case, geometry) point and compare
/// with the simulator (replica-averaged on both sides, mirroring the
/// oracle).
pub fn score_model(model: &NhaModel, seed: u64, smoke: bool) -> PredictReport {
    score_model_with_bound(model, seed, smoke, PREDICT_BOUND)
}

/// [`score_model`] with an explicit gate bound.
pub fn score_model_with_bound(
    model: &NhaModel,
    seed: u64,
    smoke: bool,
    bound: f64,
) -> PredictReport {
    let _span = dvf_obs::span("learn.score");
    let mut points = Vec::new();
    for replicas in oracle::build_workloads(seed, smoke) {
        let head = &replicas[0];
        let jobs: Vec<SimJob> = head.points.iter().map(|p| SimJob::lru(p.config)).collect();
        let mut sim_sums = vec![0.0; head.points.len()];
        let mut pred_sums = vec![0.0; head.points.len()];
        for w in &replicas {
            let (misses, fv) = replay_featurized(w, &jobs);
            for (i, (&m, mp)) in misses.iter().zip(&head.points).enumerate() {
                sim_sums[i] += m as f64;
                pred_sums[i] += model.predict(&fv, mp.config);
            }
        }
        let n = replicas.len() as f64;
        for ((mp, sim), pred) in head.points.iter().zip(&sim_sums).zip(&pred_sums) {
            let simulated = sim / n;
            let predicted = pred / n;
            points.push(PredictPoint {
                pattern: head.pattern,
                case: head.case.clone(),
                config: mp.config,
                predicted,
                simulated,
                rel_err: (predicted - simulated).abs() / simulated.max(1.0),
            });
        }
    }
    dvf_obs::add("learn.score.points", points.len() as u64);
    PredictReport {
        seed,
        smoke,
        bound,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_covers_grid_and_geometries() {
        let ds = build_dataset(3, true);
        let geoms = train_geometries().len();
        assert!(geoms >= 6, "geometry union too small: {geoms}");
        // Smoke grid: 2 cases per pattern; stochastic patterns carry
        // replicas. Every recording yields one sample per geometry.
        assert_eq!(ds.samples.len() % geoms, 0);
        assert!(ds.samples.len() >= 8 * geoms);
    }

    #[test]
    fn smoke_training_is_deterministic_and_bounded() {
        let (m1, r1) = train_grid(5, true, 4);
        let (m2, _) = train_grid(5, true, 4);
        assert_eq!(m1.to_json(), m2.to_json());
        assert!(
            r1.bound.max_rel_err <= CV_BOUND,
            "held-out max rel err {} beyond pinned bound",
            r1.bound.max_rel_err
        );
    }
}
