//! Differential oracle for the CGPMAC closed-form models.
//!
//! The paper's `N_ha` models (`dvf-core::patterns`) and the cache
//! simulator (`dvf-cachesim`) implement the same quantity through two
//! unrelated code paths: closed-form combinatorics versus cycle-level
//! set-associative LRU replay of a recorded trace. This crate
//! cross-checks them: for a seeded grid of (pattern × problem size ×
//! cache geometry) points it records each workload once with
//! `dvf-kernels`' [`Recorder`](dvf_kernels::Recorder), replays the
//! trace through every geometry with
//! [`simulate_many`](dvf_cachesim::simulate_many), and asserts the two
//! miss counts agree within the per-model documented tolerance.
//!
//! A disagreement means one of the two sides is wrong — historically
//! this harness is how the edge-case bugs in the models and the binary
//! trace decoder were flushed out. See `DESIGN.md` ("Differential
//! oracle") for the methodology and the tolerance table, and the
//! `diffcheck` binary for the command-line entry point.
//!
//! The multi-level hierarchy has no closed forms to diff against, so
//! [`hierarchy`] checks it a different way: against an independent
//! naive reference model at **zero** tolerance, plus a few
//! hand-derivable closed-form rows (`diffcheck --hierarchy`).

pub mod hierarchy;
pub mod learndata;
pub mod oracle;
pub mod rng;
pub mod workloads;

pub use hierarchy::{run_hierarchy_grid, HierarchyGridReport, HierarchyPoint};
pub use learndata::{
    build_dataset, score_model, train_grid, PredictPoint, PredictReport, CV_BOUND, PREDICT_BOUND,
};
pub use oracle::{run_grid, run_grid_fused, DiffPoint, GridReport, ReplayMode, JSON_SCHEMA};
pub use workloads::{ModelPoint, Workload, WorkloadDef};
