//! The differential grid: run every workload, replay its trace through
//! the cache simulator, and compare simulated misses against the
//! closed-form predictions.
//!
//! The grid is 4 patterns × 4 problem sizes × 3 cache geometries = 48
//! points (`--smoke` keeps the first two sizes per pattern → 24 points).
//! Geometries are chosen per pattern so each model is exercised inside
//! its stated domain:
//!
//! * streaming — set-associative LRU caches spanning 8 KiB, 32 KiB and
//!   256 KiB with both 32 B and 64 B lines;
//! * random / template — *fully-associative* caches of the same
//!   capacities: both are capacity models (Eq. 6 assumes the cache
//!   retains its full `Cc/CL` blocks of the structure; the
//!   stack-distance closed form is exact only for fully-associative
//!   LRU). Set-associative replay adds a set-imbalance loss the models
//!   deliberately exclude — measured ~7–10% even at 16–32 ways;
//! * reuse — set-associative 64 B-line geometries (its Eq. 11 *is* a
//!   per-set model), matching the 64-byte block spacing of the
//!   generated footprints.
//!
//! The random and reuse models predict *expectations* over random
//! placements, so those grid points compare against the mean of
//! [`REPLICAS`] independently seeded realizations.
//!
//! Per-pattern tolerances (also documented in `DESIGN.md`):
//!
//! | pattern   | tolerance | error source left after construction |
//! |-----------|-----------|--------------------------------------|
//! | streaming | 0.5 %     | none — model is exact for aligned bases |
//! | template  | 0.5 %     | none — exact for fully-associative LRU  |
//! | random    | 10 %      | expectation vs. sampled realizations; residual set imbalance |
//! | reuse     | 10 %      | binomial per-set expectation vs. sampled placements |

use crate::rng::SplitMix64;
use crate::workloads::{self, WorkloadDef};
use dvf_cachesim::{simulate_many, CacheConfig, DsId, SimJob};
use dvf_kernels::record_fanout;
use dvf_obs::JsonWriter;
use std::cell::Cell;
use std::fmt::Write as _;

/// Schema identifier of the JSON report.
pub const JSON_SCHEMA: &str = "dvf-difftest/1";

/// Relative tolerance for the streaming model (exact; slack covers
/// floating-point rounding only).
pub const STREAMING_TOL: f64 = 0.005;
/// Relative tolerance for the template model (exact for fully-associative
/// LRU; slack covers floating-point rounding only).
pub const TEMPLATE_TOL: f64 = 0.005;
/// Relative tolerance for the random model (expectation vs. realization).
pub const RANDOM_TOL: f64 = 0.10;
/// Relative tolerance for the reuse model (expectation vs. realization).
pub const REUSE_TOL: f64 = 0.10;

/// One compared (pattern, size, geometry) grid point.
#[derive(Debug, Clone)]
pub struct DiffPoint {
    /// Pattern name.
    pub pattern: &'static str,
    /// Problem-size parameters.
    pub case: String,
    /// Cache geometry simulated.
    pub config: CacheConfig,
    /// Closed-form `N_ha` prediction.
    pub model: f64,
    /// Misses observed by replaying the recorded trace.
    pub simulated: f64,
    /// `|model − simulated| / max(simulated, 1)`.
    pub rel_err: f64,
    /// Documented tolerance for this pattern.
    pub tolerance: f64,
}

impl DiffPoint {
    /// Whether the point agrees within its pattern's tolerance.
    pub fn pass(&self) -> bool {
        self.rel_err <= self.tolerance
    }
}

/// Result of one full grid run.
#[derive(Debug)]
pub struct GridReport {
    /// Base seed every workload seed was derived from.
    pub seed: u64,
    /// Whether the reduced smoke grid was run.
    pub smoke: bool,
    /// Every compared point, in grid order.
    pub points: Vec<DiffPoint>,
}

impl GridReport {
    /// Points that disagree beyond tolerance.
    pub fn failures(&self) -> Vec<&DiffPoint> {
        self.points.iter().filter(|p| !p.pass()).collect()
    }

    /// Largest relative error across the grid.
    pub fn max_rel_err(&self) -> f64 {
        self.points.iter().map(|p| p.rel_err).fold(0.0, f64::max)
    }

    /// Plain-text agreement table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "differential oracle: seed={} grid={}",
            self.seed,
            if self.smoke { "smoke" } else { "full" }
        );
        let _ = writeln!(
            out,
            "{:<9} {:<24} {:<16} {:>12} {:>12} {:>8} {:>6}  status",
            "pattern", "case", "geometry", "model", "simulated", "rel_err", "tol"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<9} {:<24} {:<16} {:>12.1} {:>12.1} {:>8.4} {:>6.3}  {}",
                p.pattern,
                p.case,
                geometry_label(p.config),
                p.model,
                p.simulated,
                p.rel_err,
                p.tolerance,
                if p.pass() { "ok" } else { "FAIL" }
            );
        }
        let failed = self.failures().len();
        let _ = writeln!(
            out,
            "{} points, {} failed, max rel_err {:.4}",
            self.points.len(),
            failed,
            self.max_rel_err()
        );
        out
    }

    /// Versioned machine-readable report (`dvf-difftest/1`).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string(JSON_SCHEMA);
        w.key("seed").u64(self.seed);
        w.key("smoke").bool(self.smoke);
        w.key("points").begin_array();
        for p in &self.points {
            w.begin_object();
            w.key("pattern").string(p.pattern);
            w.key("case").string(&p.case);
            w.key("geometry").begin_object();
            w.key("associativity").u64(p.config.associativity as u64);
            w.key("num_sets").u64(p.config.num_sets as u64);
            w.key("line_bytes").u64(p.config.line_bytes as u64);
            w.end_object();
            w.key("model").f64(p.model);
            w.key("simulated").f64(p.simulated);
            w.key("rel_err").f64(p.rel_err);
            w.key("tolerance").f64(p.tolerance);
            w.key("pass").bool(p.pass());
            w.end_object();
        }
        w.end_array();
        w.key("summary").begin_object();
        w.key("points").u64(self.points.len() as u64);
        w.key("failed").u64(self.failures().len() as u64);
        w.key("max_rel_err").f64(self.max_rel_err());
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Short `CAxNAxCL` geometry label, e.g. `8w512s64B` (256 KiB).
pub fn geometry_label(c: CacheConfig) -> String {
    format!("{}w{}s{}B", c.associativity, c.num_sets, c.line_bytes)
}

fn geom(assoc: usize, sets: usize, line: usize) -> CacheConfig {
    CacheConfig::new(assoc, sets, line).expect("grid geometries are valid")
}

/// Per-workload seed derivation: decorrelates workloads from each other
/// and from the base seed while staying a pure function of
/// (base, pattern index, size index).
fn derive_seed(base: u64, pattern: u64, size: u64) -> u64 {
    SplitMix64::new(base ^ (pattern << 32) ^ size).next_u64()
}

/// Independent placement realizations averaged per stochastic grid
/// point. The random and reuse models predict *expectations* over
/// random placements; comparing against the mean of several seeded
/// realizations shrinks sampling noise by `1/√REPLICAS` without
/// loosening the documented tolerance.
pub const REPLICAS: u64 = 3;

/// Build the workload list for one grid run: each inner vector holds
/// the placement replicas of one (pattern, size) case — identical model
/// predictions, independently seeded placements.
pub(crate) fn build_workloads(seed: u64, smoke: bool) -> Vec<Vec<WorkloadDef>> {
    // Set-associative geometries for streaming: 8 KiB with 32 B lines,
    // 32 KiB and 256 KiB with 64 B lines.
    let set_assoc = [geom(4, 64, 32), geom(8, 64, 64), geom(8, 512, 64)];
    // Fully-associative geometries (8 KiB / 32 KiB / 256 KiB) for random
    // and template: both models are *capacity* models — Eq. 6's
    // hypergeometric derivation assumes the cache retains its full
    // `Cc/CL` blocks of the structure, and the stack-distance closed
    // form is exact only for fully-associative LRU. Set-associative
    // replay deviates by the set-imbalance loss (measured ~7–10% even at
    // 16–32 ways); that is model-domain mismatch, not model error.
    let fully_assoc = [geom(256, 1, 32), geom(512, 1, 64), geom(4096, 1, 64)];
    // 64 B-line geometries (16 KiB / 64 KiB / 256 KiB) for reuse.
    let line64 = [geom(4, 64, 64), geom(8, 128, 64), geom(8, 512, 64)];

    let streaming_sizes = [(4096, 1), (20_000, 2), (100_000, 4), (250_000, 8)];
    let random_sizes = [
        (96, 24, 8),
        (512, 128, 12),
        (2048, 512, 12),
        (8192, 2048, 12),
    ];
    let template_sizes = [
        (64, 512, 2),
        (256, 2048, 2),
        (1024, 8192, 1),
        (4096, 16_384, 1),
    ];
    let reuse_sizes = [
        (256, 256, 8),
        (192, 192, 6),
        (512, 1024, 4),
        (1024, 4096, 3),
    ];

    let take = if smoke { 2 } else { 4 };
    let mut out = Vec::new();
    for &(n, stride) in &streaming_sizes[..take] {
        // Streaming is deterministic: one replica.
        out.push(vec![workloads::streaming_def(
            n,
            stride,
            &set_assoc,
            STREAMING_TOL,
        )]);
    }
    for (i, &(n, k, iters)) in random_sizes[..take].iter().enumerate() {
        out.push(
            (0..REPLICAS)
                .map(|r| {
                    let s = derive_seed(seed, 1 + (r << 8), i as u64);
                    workloads::random_def(s, n, k, iters, &fully_assoc, RANDOM_TOL)
                })
                .collect(),
        );
    }
    for (i, &(r, l, repeat)) in template_sizes[..take].iter().enumerate() {
        // The template is part of the case definition (both sides see
        // the same reference string), so one replica suffices.
        let s = derive_seed(seed, 2, i as u64);
        out.push(vec![workloads::template_def(
            s,
            r,
            l,
            repeat,
            &fully_assoc,
            TEMPLATE_TOL,
        )]);
    }
    for (i, &(fa, fb, reuses)) in reuse_sizes[..take].iter().enumerate() {
        out.push(
            (0..REPLICAS)
                .map(|r| {
                    let s = derive_seed(seed, 3 + (r << 8), i as u64);
                    workloads::reuse_def(s, fa, fb, reuses, &line64, REUSE_TOL)
                })
                .collect(),
        );
    }
    out
}

/// How a grid run replays each workload through the simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Materialize the trace in memory, then fan it across the
    /// pattern's geometries with [`simulate_many`].
    Buffered,
    /// Stream references straight from the recorder into every
    /// geometry's simulator (`record_fanout`); no trace is built.
    Fused,
}

/// Simulate one workload replica across its geometries, returning the
/// per-geometry miss counts of the target data structure.
fn replay_replica(w: &WorkloadDef, jobs: &[SimJob], mode: ReplayMode) -> Vec<u64> {
    match mode {
        ReplayMode::Buffered => {
            let m = w.materialize();
            let reports = simulate_many(&m.trace, jobs);
            reports.iter().map(|r| r.ds(m.target).misses).collect()
        }
        ReplayMode::Fused => {
            let target = Cell::new(DsId(0));
            let (_registry, reports) = record_fanout(jobs, |rec| {
                target.set(w.record(rec));
            });
            reports.iter().map(|r| r.ds(target.get()).misses).collect()
        }
    }
}

/// Run the full differential grid: generate every seeded workload,
/// fan its reference stream across the pattern's geometries, and
/// compare misses against the closed forms.
pub fn run_grid_with_mode(seed: u64, smoke: bool, mode: ReplayMode) -> GridReport {
    let _span = dvf_obs::span("difftest.grid");
    let mut points = Vec::new();
    for replicas in build_workloads(seed, smoke) {
        // Per-geometry miss counts averaged over the placement replicas
        // (each replica fans its reference stream across all geometries
        // at once).
        let head = &replicas[0];
        let jobs: Vec<SimJob> = head.points.iter().map(|p| SimJob::lru(p.config)).collect();
        let mut sums = vec![0.0; head.points.len()];
        for w in &replicas {
            let misses = replay_replica(w, &jobs, mode);
            for (sum, m) in sums.iter_mut().zip(&misses) {
                *sum += *m as f64;
            }
        }
        for (mp, sum) in head.points.iter().zip(&sums) {
            let simulated = sum / replicas.len() as f64;
            let rel_err = (mp.model - simulated).abs() / simulated.max(1.0);
            let point = DiffPoint {
                pattern: head.pattern,
                case: head.case.clone(),
                config: mp.config,
                model: mp.model,
                simulated,
                rel_err,
                tolerance: head.tolerance,
            };
            dvf_obs::add("difftest.points", 1);
            dvf_obs::add(
                if point.pass() {
                    "difftest.pass"
                } else {
                    "difftest.fail"
                },
                1,
            );
            points.push(point);
        }
    }
    GridReport {
        seed,
        smoke,
        points,
    }
}

/// Buffered grid run (materialized traces + [`simulate_many`]).
pub fn run_grid(seed: u64, smoke: bool) -> GridReport {
    run_grid_with_mode(seed, smoke, ReplayMode::Buffered)
}

/// Fused grid run: every workload streams straight from its recorder
/// into the geometry simulators. Bit-identical to [`run_grid`] on the
/// same seed (the recording closures are deterministic).
pub fn run_grid_fused(seed: u64, smoke: bool) -> GridReport {
    run_grid_with_mode(seed, smoke, ReplayMode::Fused)
}
