//! Seeded pseudo-randomness for workload generation.
//!
//! The oracle must be reproducible bit-for-bit from its seed, so it
//! carries its own tiny generator instead of depending on the `rand`
//! shim: SplitMix64 (Steele, Lea & Flood), the standard seeding
//! generator — one 64-bit state word, full period, excellent avalanche.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator; every distinct seed yields an independent stream.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`). The multiply-shift reduction's
    /// bias is below 2⁻³² for the workload sizes used here.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        (((self.next_u64() >> 32) * n as u64) >> 32) as usize
    }

    /// Sample `k` distinct values from `0..n` in uniform random order
    /// (partial Fisher–Yates over a caller-provided scratch permutation,
    /// reused across calls to avoid re-allocating).
    pub fn sample_distinct(&mut self, scratch: &mut Vec<usize>, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
        if scratch.len() != n {
            scratch.clear();
            scratch.extend(0..n);
        }
        let mut out = Vec::with_capacity(k);
        for i in 0..k {
            let j = i + self.below(n - i);
            scratch.swap(i, j);
            out.push(scratch[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..5).map(|_| SplitMix64::new(42).next_u64()).collect();
        assert!(a.iter().all(|&x| x == a[0]));
        let mut r1 = SplitMix64::new(7);
        let mut r2 = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = SplitMix64::new(3);
        for n in [1usize, 2, 7, 100, 1 << 20] {
            for _ in 0..50 {
                assert!(rng.below(n) < n);
            }
        }
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = SplitMix64::new(9);
        let mut scratch = Vec::new();
        for (n, k) in [(10usize, 10usize), (100, 7), (1000, 999), (5, 0)] {
            let s = rng.sample_distinct(&mut scratch, n, k);
            assert_eq!(s.len(), k);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in sample of {k} from {n}");
            assert!(s.iter().all(|&x| x < n));
        }
    }
}
