//! Seeded workload generators for the differential oracle.
//!
//! Each generator builds one concrete kernel execution with
//! `dvf-kernels`' [`Recorder`]/`TrackedBuffer` instrumentation *and*
//! the matching CGPMAC spec, then evaluates the closed form once per
//! cache geometry. A generator returns a [`WorkloadDef`]: the model
//! predictions plus a deterministic recording closure, which the oracle
//! either materializes into an in-memory [`Workload`] trace (the
//! buffered path) or streams straight into a bank of simulators via
//! `record_fanout` (the fused path). Both paths replay the identical
//! reference sequence, so their miss counts agree bit-for-bit.
//!
//! The interesting part here is constructing access sequences that
//! actually satisfy each model's assumptions:
//!
//! * **streaming** — strided single pass; the recorder 4 KiB-aligns
//!   buffer bases, so [`StreamingSpec::mem_accesses_aligned`] (zero
//!   misalignment probability) is the exact oracle.
//! * **random** — per iteration, `k` *distinct* uniformly drawn elements
//!   (the hypergeometric derivation of Eq. 6 assumes exactly this);
//!   elements are 64-byte and touched at 32-byte granularity so every
//!   sub-block the model counts (`⌈E/CL⌉` per element) is really touched
//!   under both 32 B and 64 B lines.
//! * **template** — a fixed random reference template replayed `repeat`
//!   times; the stack-distance algorithm is exact for fully-associative
//!   LRU, so template geometries are the fully-associative equivalents
//!   of the set-associative grid.
//! * **reuse** — `A` re-read after interference from `B`, with `A`'s
//!   re-reads in *boustrophedon* (alternating-direction) order. Eq. 11
//!   counts the LRU-protected (most-recently-used) tail of `A` per set
//!   as retained; re-reading in the same direction would instead trigger
//!   LRU's sequential-cycling cascade and miss far more than the model
//!   predicts, while alternating direction touches the retained tail
//!   first and realizes the model's count exactly per set. Blocks land
//!   in random sets (sparse random placement inside each buffer) to
//!   match the model's binomial per-set footprint assumption.

use crate::rng::SplitMix64;
use dvf_cachesim::{CacheConfig, DsId, Trace};
use dvf_core::patterns::{
    CacheView, InterferenceScenario, RandomSpec, ReuseSpec, StreamingSpec, TemplateSpec,
};
use dvf_kernels::recorder::Recorder;
use std::fmt;

/// One (geometry, closed-form prediction) pair of a workload.
#[derive(Debug, Clone, Copy)]
pub struct ModelPoint {
    /// Cache geometry the prediction is for.
    pub config: CacheConfig,
    /// Closed-form `N_ha` prediction.
    pub model: f64,
}

/// A workload definition: model predictions plus a deterministic
/// recording closure.
///
/// The closure re-creates the exact same reference sequence on every
/// invocation (all randomness is re-derived from the captured seed), so
/// the buffered and fused replay paths see identical streams.
pub struct WorkloadDef {
    /// Pattern name (`streaming` / `random` / `template` / `reuse`).
    pub pattern: &'static str,
    /// Human-readable size parameters, e.g. `N=4096 stride=2`.
    pub case: String,
    /// Documented relative tolerance for this pattern's model.
    pub tolerance: f64,
    /// One prediction per cache geometry.
    pub points: Vec<ModelPoint>,
    /// Records the reference sequence into `rec`, returning the data
    /// structure whose misses the model predicts.
    record: Box<dyn Fn(&Recorder) -> DsId + Send + Sync>,
}

impl fmt::Debug for WorkloadDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadDef")
            .field("pattern", &self.pattern)
            .field("case", &self.case)
            .field("tolerance", &self.tolerance)
            .field("points", &self.points)
            .finish_non_exhaustive()
    }
}

impl WorkloadDef {
    /// Record the reference sequence into `rec` (fused path). Returns
    /// the target data structure id within `rec`'s registry.
    pub fn record(&self, rec: &Recorder) -> DsId {
        (self.record)(rec)
    }

    /// Record into a fresh recorder and materialize the trace
    /// (buffered path).
    pub fn materialize(&self) -> Workload {
        let rec = Recorder::new();
        let target = (self.record)(&rec);
        Workload {
            pattern: self.pattern,
            case: self.case.clone(),
            trace: rec.into_trace(),
            target,
            tolerance: self.tolerance,
            points: self.points.clone(),
        }
    }
}

/// A recorded kernel with its per-geometry closed-form predictions.
#[derive(Debug)]
pub struct Workload {
    /// Pattern name (`streaming` / `random` / `template` / `reuse`).
    pub pattern: &'static str,
    /// Human-readable size parameters, e.g. `N=4096 stride=2`.
    pub case: String,
    /// The recorded reference stream.
    pub trace: Trace,
    /// Data structure whose misses the models predict.
    pub target: DsId,
    /// Documented relative tolerance for this pattern's model.
    pub tolerance: f64,
    /// One prediction per cache geometry.
    pub points: Vec<ModelPoint>,
}

fn view(config: CacheConfig) -> CacheView {
    CacheView::exclusive(config)
}

/// Strided streaming pass over `n` 8-byte elements.
pub fn streaming_def(
    n: usize,
    stride: usize,
    geoms: &[CacheConfig],
    tolerance: f64,
) -> WorkloadDef {
    let spec = StreamingSpec {
        element_bytes: 8,
        num_elements: n as u64,
        stride_elements: stride as u64,
    };
    let points = geoms
        .iter()
        .map(|&config| ModelPoint {
            config,
            model: spec
                .mem_accesses_aligned(&view(config))
                .expect("valid streaming spec"),
        })
        .collect();
    WorkloadDef {
        pattern: "streaming",
        case: format!("N={n} stride={stride}"),
        tolerance,
        points,
        record: Box::new(move |rec| {
            let buf = rec.buffer::<u64>("A", n);
            rec.set_enabled(true);
            let mut i = 0;
            while i < n {
                let _ = buf.get(i);
                i += stride;
            }
            let target = buf.ds();
            drop(buf);
            target
        }),
    }
}

/// Strided streaming pass, materialized (see [`streaming_def`]).
pub fn streaming(n: usize, stride: usize, geoms: &[CacheConfig], tolerance: f64) -> Workload {
    streaming_def(n, stride, geoms, tolerance).materialize()
}

/// Sub-block touch granularity of the random workload: every 64-byte
/// element is read at offsets 0 and 32 so that 32 B-line geometries see
/// both halves, matching the model's `⌈E/CL⌉` blocks-per-element factor.
const RANDOM_ELEMENT_SLOTS: usize = 8;

/// Random visits: a construction pass over `n` 64-byte elements, then
/// `iterations` rounds each visiting `k` distinct random elements.
pub fn random_def(
    seed: u64,
    n: usize,
    k: usize,
    iterations: usize,
    geoms: &[CacheConfig],
    tolerance: f64,
) -> WorkloadDef {
    let spec = RandomSpec {
        num_elements: n as u64,
        element_bytes: (RANDOM_ELEMENT_SLOTS * 8) as u64,
        k: k as u64,
        iterations: iterations as u64,
        ratio: 1.0,
    };
    let points = geoms
        .iter()
        .map(|&config| ModelPoint {
            config,
            model: spec.mem_accesses(&view(config)).expect("valid random spec"),
        })
        .collect();
    WorkloadDef {
        pattern: "random",
        case: format!("N={n} k={k} iter={iterations}"),
        tolerance,
        points,
        record: Box::new(move |rec| {
            let mut rng = SplitMix64::new(seed);
            let buf = rec.buffer::<u64>("A", n * RANDOM_ELEMENT_SLOTS);
            rec.set_enabled(true);
            let touch = |e: usize| {
                let _ = buf.get(e * RANDOM_ELEMENT_SLOTS);
                let _ = buf.get(e * RANDOM_ELEMENT_SLOTS + 4);
            };
            // Construction pass: stream every element once (the model's
            // compulsory `⌈E·N/CL⌉` initial loads).
            let mut stamp: Vec<u64> = vec![0; n];
            let mut clock = 0u64;
            let mut tick = |stamp: &mut Vec<u64>, e: usize| {
                clock += 1;
                stamp[e] = clock;
            };
            for e in 0..n {
                touch(e);
                tick(&mut stamp, e);
            }
            // Visiting passes: k distinct elements per iteration, visited in
            // descending recency order. Eq. 6 counts an element as a hit when it
            // is resident at *iteration start*; with an arbitrary visit order,
            // the iteration's own misses evict still-unvisited resident elements
            // first (intra-iteration erosion), inflating misses above the model.
            // Most-recent-first visiting means every visit earlier than element
            // `e` is more recent than `e`, so under LRU no eviction can reach a
            // start-resident element before its visit — realizing the model's
            // count exactly, and (by the stack-distance inclusion property) for
            // every cache capacity at once.
            let mut scratch = Vec::new();
            for _ in 0..iterations {
                let mut visits = rng.sample_distinct(&mut scratch, n, k);
                visits.sort_unstable_by_key(|&e| std::cmp::Reverse(stamp[e]));
                for e in visits {
                    touch(e);
                    tick(&mut stamp, e);
                }
            }
            let target = buf.ds();
            drop(buf);
            target
        }),
    }
}

/// Random visits, materialized (see [`random_def`]).
pub fn random(
    seed: u64,
    n: usize,
    k: usize,
    iterations: usize,
    geoms: &[CacheConfig],
    tolerance: f64,
) -> Workload {
    random_def(seed, n, k, iterations, geoms, tolerance).materialize()
}

/// Template replay: `len` random references into `elements` 16-byte
/// elements, replayed `repeat` times.
pub fn template_def(
    seed: u64,
    elements: usize,
    len: usize,
    repeat: usize,
    geoms: &[CacheConfig],
    tolerance: f64,
) -> WorkloadDef {
    let mut rng = SplitMix64::new(seed);
    let refs: Vec<usize> = (0..len).map(|_| rng.below(elements)).collect();

    let spec = TemplateSpec::new(16, refs.iter().map(|&r| r as u64).collect());
    let points = geoms
        .iter()
        .map(|&config| ModelPoint {
            config,
            model: spec
                .mem_accesses_repeated(&view(config), repeat as u64)
                .expect("valid template spec"),
        })
        .collect();
    WorkloadDef {
        pattern: "template",
        case: format!("R={elements} L={len} repeat={repeat}"),
        tolerance,
        points,
        record: Box::new(move |rec| {
            let buf = rec.buffer::<u128>("A", elements);
            rec.set_enabled(true);
            for _ in 0..repeat {
                for &r in &refs {
                    let _ = buf.get(r);
                }
            }
            let target = buf.ds();
            drop(buf);
            target
        }),
    }
}

/// Template replay, materialized (see [`template_def`]).
pub fn template(
    seed: u64,
    elements: usize,
    len: usize,
    repeat: usize,
    geoms: &[CacheConfig],
    tolerance: f64,
) -> Workload {
    template_def(seed, elements, len, repeat, geoms, tolerance).materialize()
}

/// Sparse-placement factor: each reuse buffer holds `POOL_FACTOR ×`
/// its footprint in blocks, and the footprint is a distinct random
/// sample of the pool, so per-set block counts approach the model's
/// independent-binomial assumption. The factor matters quantitatively:
/// sampling *without replacement* from a pool only `8×` the footprint
/// underdisperses per-set counts enough to starve Eq. 11's rare-tail
/// eviction term by ~40% on mid-sized grids; at `64×` the hypergeometric
/// variance deficit (`1/POOL_FACTOR`) leaves the expected loss within a
/// few percent of the binomial limit.
const POOL_FACTOR: usize = 64;

/// Elements (u64) per 64-byte block in the reuse buffers.
const BLOCK_SLOTS: usize = 8;

/// Data reuse: load `fa` blocks of `A`, then `reuses` rounds of (`fb`
/// blocks of `B`, re-read `A` boustrophedon).
///
/// Only meaningful for 64-byte-line geometries: footprint blocks are
/// 64-byte spaced, so a different line size would change the per-set
/// mapping the placement randomizes over.
pub fn reuse_def(
    seed: u64,
    fa: usize,
    fb: usize,
    reuses: usize,
    geoms: &[CacheConfig],
    tolerance: f64,
) -> WorkloadDef {
    let spec = ReuseSpec {
        target_blocks: fa as u64,
        interfering_blocks: fb as u64,
        reuses: reuses as u64,
        scenario: InterferenceScenario::Exclusive,
    };
    let points = geoms
        .iter()
        .map(|&config| {
            debug_assert_eq!(
                config.line_bytes, 64,
                "reuse workload blocks are 64-byte spaced"
            );
            ModelPoint {
                config,
                model: spec.mem_accesses(&view(config)).expect("valid reuse spec"),
            }
        })
        .collect();
    WorkloadDef {
        pattern: "reuse",
        case: format!("Fa={fa} Fb={fb} reuses={reuses}"),
        tolerance,
        points,
        record: Box::new(move |rec| {
            let mut rng = SplitMix64::new(seed);
            let a = rec.buffer::<u64>("A", fa * POOL_FACTOR * BLOCK_SLOTS);
            let b = rec.buffer::<u64>("B", fb * POOL_FACTOR * BLOCK_SLOTS);
            let mut scratch = Vec::new();
            let a_blocks = rng.sample_distinct(&mut scratch, fa * POOL_FACTOR, fa);
            let mut scratch = Vec::new();
            let b_blocks = rng.sample_distinct(&mut scratch, fb * POOL_FACTOR, fb);

            rec.set_enabled(true);
            // Initial exclusive load of A (forward).
            for &blk in &a_blocks {
                let _ = a.get(blk * BLOCK_SLOTS);
            }
            for round in 0..reuses {
                // B interferes. B itself alternates direction across rounds:
                // with a fixed order, from round 2 on B's misses evict B's own
                // least-recent survivors (sequential cycling) instead of A, so A
                // would pay Eq. 11's interference loss once rather than per
                // round. Alternating makes each B pass hit its own retained
                // tail first and push the evictions onto A, as the model charges.
                if round % 2 == 1 {
                    for &blk in b_blocks.iter().rev() {
                        let _ = b.get(blk * BLOCK_SLOTS);
                    }
                } else {
                    for &blk in &b_blocks {
                        let _ = b.get(blk * BLOCK_SLOTS);
                    }
                }
                // Re-read A, alternating direction each round so the LRU-retained
                // tail of the previous pass is touched first (see module docs).
                if round % 2 == 0 {
                    for &blk in a_blocks.iter().rev() {
                        let _ = a.get(blk * BLOCK_SLOTS);
                    }
                } else {
                    for &blk in &a_blocks {
                        let _ = a.get(blk * BLOCK_SLOTS);
                    }
                }
            }
            let target = a.ds();
            drop((a, b));
            target
        }),
    }
}

/// Data reuse, materialized (see [`reuse_def`]).
pub fn reuse(
    seed: u64,
    fa: usize,
    fb: usize,
    reuses: usize,
    geoms: &[CacheConfig],
    tolerance: f64,
) -> Workload {
    reuse_def(seed, fa, fb, reuses, geoms, tolerance).materialize()
}
