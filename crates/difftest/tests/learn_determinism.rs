//! Training determinism: the model artifact is a pure function of
//! `(seed, grid, folds)`. `dvf learn train --seed N` run twice must
//! produce byte-for-byte identical `model.json` files — the artifact is
//! diffable, cacheable, and reproducible from the commit alone.

use dvf_difftest::{train_grid, CV_BOUND};

#[test]
fn same_seed_trains_byte_identical_model() {
    let (m1, r1) = train_grid(7, true, 3);
    let (m2, r2) = train_grid(7, true, 3);
    assert_eq!(
        m1.to_json(),
        m2.to_json(),
        "same (seed, grid, folds) must reproduce the model artifact byte-for-byte"
    );
    assert_eq!(
        r1.to_json(),
        r2.to_json(),
        "CV report must be deterministic too"
    );

    // The seed is load-bearing: a different seed draws different replica
    // placements, so the trained weights must move.
    let (m3, _) = train_grid(8, true, 3);
    assert_ne!(
        m1.to_json(),
        m3.to_json(),
        "seed must reach the training data"
    );

    // And the deterministic artifact stays inside the pinned CV gate.
    assert!(
        r1.bound.max_rel_err <= CV_BOUND,
        "smoke CV max rel err {} exceeds CV_BOUND {CV_BOUND}",
        r1.bound.max_rel_err
    );
}
