//! End-to-end tests of the differential grid, plus a reference-model
//! cross-check of the cache simulator on the oracle's own traces.

use dvf_cachesim::{simulate_many, CacheConfig, SimJob};
use dvf_difftest::{oracle, run_grid, workloads};
use proptest::prelude::*;
use std::collections::VecDeque;

#[test]
fn smoke_grid_passes_within_tolerance() {
    let report = run_grid(1, true);
    assert_eq!(
        report.points.len(),
        24,
        "4 patterns x 2 sizes x 3 geometries"
    );
    let failures = report.failures();
    assert!(
        failures.is_empty(),
        "disagreements:\n{}",
        report.render_text()
    );
    // The exact models really are exact: streaming and template replay
    // to the model value bit-for-bit.
    for p in &report.points {
        if p.pattern == "streaming" || p.pattern == "template" {
            assert_eq!(p.model, p.simulated, "{} {}", p.pattern, p.case);
        }
    }
}

#[test]
fn full_grid_covers_48_points_and_passes() {
    let report = run_grid(1, false);
    assert_eq!(
        report.points.len(),
        48,
        "4 patterns x 4 sizes x 3 geometries"
    );
    assert!(
        report.failures().is_empty(),
        "disagreements:\n{}",
        report.render_text()
    );
    assert!(report.max_rel_err() <= 0.10);
}

#[test]
fn fused_smoke_grid_matches_buffered_bit_for_bit() {
    let buffered = run_grid(1, true);
    let fused = dvf_difftest::run_grid_fused(1, true);
    assert_eq!(
        buffered.to_json(),
        fused.to_json(),
        "fused streaming must replay the identical reference sequence"
    );
}

/// The smoke grid's workloads survive a v1 and a v2 binary round-trip
/// with byte-identical reference streams, so replaying a v1 file, a v2
/// file, or the fused stream all count the same misses.
#[test]
fn grid_traces_roundtrip_v1_and_v2_identically() {
    let configs = [CacheConfig::new(4, 64, 64).unwrap()];
    let cases = [
        workloads::streaming(4096, 1, &configs, 0.005),
        workloads::random(11, 512, 128, 4, &configs, 0.1),
        workloads::template(12, 256, 2048, 2, &configs, 0.005),
        workloads::reuse(13, 192, 192, 6, &configs, 0.1),
    ];
    for w in &cases {
        let mut v1 = Vec::new();
        dvf_cachesim::write_binary(&w.trace, &mut v1).unwrap();
        let mut v2 = Vec::new();
        dvf_cachesim::write_binary_v2(&w.trace, &mut v2).unwrap();
        let from_v1 = dvf_cachesim::read_binary(&v1[..]).unwrap();
        let from_v2 = dvf_cachesim::read_binary(&v2[..]).unwrap();
        assert_eq!(from_v1.refs, w.trace.refs, "{} v1 roundtrip", w.pattern);
        assert_eq!(from_v2.refs, w.trace.refs, "{} v2 roundtrip", w.pattern);
        let jobs = [SimJob::lru(configs[0])];
        let direct = simulate_many(&w.trace, &jobs)[0].ds(w.target).misses;
        let via_v1 = simulate_many(&from_v1, &jobs)[0].ds(w.target).misses;
        let via_v2 = simulate_many(&from_v2, &jobs)[0].ds(w.target).misses;
        assert_eq!(direct, via_v1, "{} replay from v1 file", w.pattern);
        assert_eq!(direct, via_v2, "{} replay from v2 file", w.pattern);
    }
}

#[test]
fn grid_is_deterministic_per_seed() {
    let a = run_grid(7, true);
    let b = run_grid(7, true);
    assert_eq!(a.to_json(), b.to_json());
    let c = run_grid(8, true);
    assert_ne!(
        a.to_json(),
        c.to_json(),
        "different seeds must generate different workloads"
    );
}

#[test]
fn json_report_is_versioned_and_complete() {
    let report = run_grid(3, true);
    let json = report.to_json();
    assert!(json.starts_with(&format!("{{\"schema\":\"{}\"", oracle::JSON_SCHEMA)));
    assert!(json.contains("\"seed\":3"));
    assert!(json.contains("\"smoke\":true"));
    assert!(json.contains("\"summary\""));
    assert!(json.contains("\"max_rel_err\""));
    assert_eq!(json.matches("\"pattern\":").count(), report.points.len());
    // Balanced braces/brackets (JsonWriter tracks nesting, but guard the
    // report shape anyway since CI consumers parse it).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn text_table_names_every_pattern() {
    let rendered = run_grid(2, true).render_text();
    for pattern in ["streaming", "random", "template", "reuse"] {
        assert!(rendered.contains(pattern), "missing {pattern}:\n{rendered}");
    }
    assert!(rendered.contains("0 failed"));
}

/// Independent single-level LRU model: per-set `VecDeque` with explicit
/// move-to-front — the textbook structure the SoA simulator replaced.
/// Counting misses for one data structure lets us cross-check the
/// simulator itself on the oracle's traces (a third opinion besides the
/// closed forms).
fn reference_misses(
    trace: &dvf_cachesim::Trace,
    target: dvf_cachesim::DsId,
    cfg: CacheConfig,
) -> u64 {
    let sets = cfg.num_sets as u64;
    let line = cfg.line_bytes as u64;
    let mut cache: Vec<VecDeque<u64>> = vec![VecDeque::new(); cfg.num_sets];
    let mut misses = 0;
    for r in &trace.refs {
        let block = r.addr / line;
        let ways = &mut cache[(block % sets) as usize];
        if let Some(pos) = ways.iter().position(|&b| b == block) {
            let b = ways.remove(pos).expect("position was valid");
            ways.push_front(b);
        } else {
            if r.ds == target {
                misses += 1;
            }
            if ways.len() == cfg.associativity {
                ways.pop_back();
            }
            ways.push_front(block);
        }
    }
    misses
}

#[test]
fn simulator_matches_reference_lru_on_oracle_traces() {
    let configs = [
        CacheConfig::new(4, 64, 64).unwrap(),
        CacheConfig::new(8, 128, 64).unwrap(),
        CacheConfig::new(512, 1, 64).unwrap(),
    ];
    for seed in [1, 2, 3] {
        let w = workloads::reuse(seed, 192, 192, 6, &configs, 0.1);
        let jobs: Vec<SimJob> = configs.iter().map(|&c| SimJob::lru(c)).collect();
        let reports = simulate_many(&w.trace, &jobs);
        for (cfg, report) in configs.iter().zip(&reports) {
            assert_eq!(
                report.ds(w.target).misses,
                reference_misses(&w.trace, w.target, *cfg),
                "simulator disagrees with reference LRU: seed {seed}, {cfg:?}"
            );
        }
    }
    let w = workloads::random(9, 512, 128, 4, &configs, 0.1);
    let jobs: Vec<SimJob> = configs.iter().map(|&c| SimJob::lru(c)).collect();
    let reports = simulate_many(&w.trace, &jobs);
    for (cfg, report) in configs.iter().zip(&reports) {
        assert_eq!(
            report.ds(w.target).misses,
            reference_misses(&w.trace, w.target, *cfg),
            "simulator disagrees with reference LRU on random trace: {cfg:?}"
        );
    }
}

proptest! {
    /// The simulator agrees with the reference LRU on arbitrary small
    /// reuse workloads, not just the grid's sizes.
    #[test]
    fn simulator_matches_reference_on_arbitrary_reuse(
        seed in 0u64..1_000_000,
        fa in 1usize..48,
        fb in 1usize..48,
        reuses in 1usize..5,
    ) {
        let cfg = CacheConfig::new(4, 16, 64).unwrap();
        let w = workloads::reuse(seed, fa, fb, reuses, &[cfg], 0.1);
        let reports = simulate_many(&w.trace, &[SimJob::lru(cfg)]);
        prop_assert_eq!(
            reports[0].ds(w.target).misses,
            reference_misses(&w.trace, w.target, cfg)
        );
    }
}
