//! Injection campaigns over the paper's kernels.

use crate::flip::flip_bit;
use dvf_kernels::cg::{rhs_for_ones, spd_matrix_with_spread, CgParams};
use dvf_kernels::mc::McParams;
use dvf_kernels::vm::VmParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of one injected trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Output identical (to tolerance) to the golden run.
    Benign,
    /// Run completed but the output is wrong: silent data corruption.
    Sdc,
    /// Error observable without output comparison (NaN/Inf,
    /// non-convergence).
    Detected,
}

/// Aggregated results of a campaign against one data structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignResult {
    /// Target data structure name.
    pub structure: String,
    /// Trials executed.
    pub trials: u32,
    /// Benign outcomes.
    pub benign: u32,
    /// Silent data corruptions.
    pub sdc: u32,
    /// Detected errors.
    pub detected: u32,
}

impl CampaignResult {
    fn tally(structure: &str, outcomes: impl IntoIterator<Item = Outcome>) -> Self {
        let mut r = CampaignResult {
            structure: structure.to_owned(),
            trials: 0,
            benign: 0,
            sdc: 0,
            detected: 0,
        };
        for o in outcomes {
            r.trials += 1;
            match o {
                Outcome::Benign => r.benign += 1,
                Outcome::Sdc => r.sdc += 1,
                Outcome::Detected => r.detected += 1,
            }
        }
        // Observability: batched per structure, not per trial.
        if dvf_obs::enabled() {
            dvf_obs::add("fi.trials", r.trials as u64);
            dvf_obs::add("fi.benign", r.benign as u64);
            dvf_obs::add("fi.sdc", r.sdc as u64);
            dvf_obs::add("fi.detected", r.detected as u64);
        }
        r
    }

    /// Fraction of trials that silently corrupted the output.
    pub fn sdc_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.sdc as f64 / self.trials as f64
        }
    }

    /// Fraction of trials that affected the run at all (SDC + detected).
    pub fn impact_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            (self.sdc + self.detected) as f64 / self.trials as f64
        }
    }
}

/// A full campaign: per-structure results plus the number of kernel
/// executions it cost (the paper's "prohibitively expensive" axis).
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Kernel name.
    pub kernel: &'static str,
    /// Per-structure outcome tallies.
    pub results: Vec<CampaignResult>,
    /// Total kernel executions (golden + every trial).
    pub executions: u64,
}

fn classify(output: f64, golden: f64, rel_tol: f64) -> Outcome {
    if !output.is_finite() {
        return Outcome::Detected;
    }
    let scale = golden.abs().max(1.0);
    if (output - golden).abs() <= rel_tol * scale {
        Outcome::Benign
    } else {
        Outcome::Sdc
    }
}

// ---------------------------------------------------------------------
// Trial scheduling
// ---------------------------------------------------------------------

/// SplitMix64 finalizer: scrambles a 64-bit value into an avalanche mix.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Independent RNG seed for one trial, derived from the campaign seed,
/// the target-structure index and the trial index.
///
/// Every trial owning its own `StdRng` (instead of all trials advancing
/// one shared stream) is what makes parallel campaigns **bit-identical**
/// to sequential ones: trial `i`'s draws no longer depend on how many
/// draws trials `0..i` made or on which worker ran them.
fn trial_seed(campaign_seed: u64, structure: u64, trial: u32) -> u64 {
    mix64(
        campaign_seed
            .wrapping_add(mix64(structure.wrapping_add(0x9E37_79B9_7F4A_7C15)))
            .wrapping_add(mix64(trial as u64 ^ 0xD1B5_4A32_D192_ED03)),
    )
}

/// Run `trials` injections for one structure across up to `jobs` scoped
/// threads, preserving trial order. `f` receives the trial's private RNG;
/// `jobs == 1` degenerates to a plain sequential loop, and any `jobs`
/// value yields identical outcomes thanks to [`trial_seed`].
fn run_trials<F>(trials: u32, jobs: usize, campaign_seed: u64, structure: u64, f: F) -> Vec<Outcome>
where
    F: Fn(&mut StdRng) -> Outcome + Sync,
{
    let run_one = |t: u32| {
        let mut rng = StdRng::seed_from_u64(trial_seed(campaign_seed, structure, t));
        f(&mut rng)
    };
    let workers = jobs.max(1).min(trials.max(1) as usize);
    if workers <= 1 {
        return (0..trials).map(run_one).collect();
    }
    if dvf_obs::enabled() {
        dvf_obs::add("fi.par.trials", trials as u64);
        dvf_obs::add("fi.par.workers", workers as u64);
    }
    let chunk = (trials as usize).div_ceil(workers);
    let mut outcomes: Vec<Option<Outcome>> = vec![None; trials as usize];
    std::thread::scope(|scope| {
        for (c, slot_chunk) in outcomes.chunks_mut(chunk).enumerate() {
            let run_one = &run_one;
            scope.spawn(move || {
                for (i, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(run_one((c * chunk + i) as u32));
                }
            });
        }
    });
    outcomes
        .into_iter()
        .map(|o| o.expect("every trial slot filled by its worker"))
        .collect()
}

/// Worker count for the `*_campaign_par` entry points: one per core.
fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

// ---------------------------------------------------------------------
// VM
// ---------------------------------------------------------------------

/// VM with a single flip in `target` at loop progress `tau`.
fn vm_with_flip(params: VmParams, target: usize, elem: usize, bit: u32, tau: usize) -> f64 {
    let m = params.iterations();
    let mut a: Vec<f64> = (0..params.n).map(|i| (i % 17) as f64 * 0.5).collect();
    let mut b: Vec<f64> = (0..m).map(|i| 1.0 + (i % 5) as f64).collect();
    let mut c = vec![0.0f64; m];
    let flip_now = |a: &mut [f64], b: &mut [f64], c: &mut [f64]| {
        let buf: &mut [f64] = match target {
            0 => a,
            1 => b,
            _ => c,
        };
        let idx = elem % buf.len();
        buf[idx] = flip_bit(buf[idx], bit);
    };
    for i in 0..m {
        if i == tau {
            flip_now(&mut a, &mut b, &mut c);
        }
        c[i] += a[i * params.stride_a] * b[i];
    }
    if tau >= m {
        flip_now(&mut a, &mut b, &mut c);
    }
    c.iter().sum()
}

/// Fault-injection campaign over VM's `A`, `B`, `C` (paper Table II).
pub fn vm_campaign(params: VmParams, trials: u32, seed: u64) -> Campaign {
    vm_campaign_par(params, trials, seed, 1)
}

/// [`vm_campaign`] with trials fanned across up to `jobs` threads
/// (`0` = one per core); tallies are bit-identical for every `jobs`.
pub fn vm_campaign_par(params: VmParams, trials: u32, seed: u64, jobs: usize) -> Campaign {
    let _span = dvf_obs::span("campaign:VM");
    let jobs = if jobs == 0 { default_jobs() } else { jobs };
    let golden = dvf_kernels::vm::run_plain(params).checksum;
    let m = params.iterations();
    let mut results = Vec::new();
    for (t, name) in ["A", "B", "C"].iter().enumerate() {
        let outcomes = run_trials(trials, jobs, seed, t as u64, |rng| {
            let elem = rng.gen_range(0..params.n);
            let bit = rng.gen_range(0..64);
            let tau = rng.gen_range(0..=m);
            classify(vm_with_flip(params, t, elem, bit, tau), golden, 1e-12)
        });
        results.push(CampaignResult::tally(name, outcomes));
    }
    Campaign {
        kernel: "VM",
        results,
        executions: 1 + 3 * trials as u64,
    }
}

// ---------------------------------------------------------------------
// CG
// ---------------------------------------------------------------------

fn dot(u: &[f64], v: &[f64]) -> f64 {
    u.iter().zip(v).map(|(a, b)| a * b).sum()
}

/// CG run with a flip in `target` (0=A, 1=x, 2=p, 3=r) at iteration `tau`.
/// Returns `(converged, max_error)`.
fn cg_with_flip(params: CgParams, target: usize, elem: usize, bit: u32, tau: usize) -> (bool, f64) {
    let n = params.n;
    let mut a = spd_matrix_with_spread(n, params.diag_spread);
    let b = rhs_for_ones(&a, n);
    let mut x = vec![0.0f64; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut q = vec![0.0f64; n];
    let bnorm = dot(&b, &b).sqrt();
    let mut rho = dot(&r, &r);
    let mut iterations = 0;

    while iterations < params.max_iters && rho.sqrt() / bnorm > params.tol {
        if iterations == tau {
            let buf: &mut [f64] = match target {
                0 => &mut a,
                1 => &mut x,
                2 => &mut p,
                _ => &mut r,
            };
            let idx = elem % buf.len();
            buf[idx] = flip_bit(buf[idx], bit);
        }
        for i in 0..n {
            q[i] = dot(&a[i * n..(i + 1) * n], &p);
        }
        let alpha = rho / dot(&p, &q);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rho_next = dot(&r, &r);
        let beta = rho_next / rho;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rho = rho_next;
        iterations += 1;
        if !rho.is_finite() {
            return (false, f64::INFINITY);
        }
    }
    let converged = rho.sqrt() / bnorm <= params.tol;
    let err = x.iter().map(|&xi| (xi - 1.0).abs()).fold(0.0f64, f64::max);
    (converged, err)
}

/// Fault-injection campaign over CG's `A`, `x`, `p`, `r`.
///
/// The outcomes expose a known CG fragility (cf. Bronevetsky & Supinski,
/// ICS'08 — the DVF paper's reference 9): the *iterate* structures are
/// the dangerous ones. CG maintains its residual by recurrence, so a flip
/// in `r` (or `x`, which is a pure accumulator) permanently decouples the
/// recurrence from the true residual `b − Ax` and silently converges to a
/// wrong answer, while a low-order flip in the operator `A` merely
/// perturbs the system being solved — usually below tolerance.
pub fn cg_campaign(params: CgParams, trials: u32, seed: u64) -> Campaign {
    cg_campaign_par(params, trials, seed, 1)
}

/// [`cg_campaign`] with trials fanned across up to `jobs` threads
/// (`0` = one per core); tallies are bit-identical for every `jobs`.
pub fn cg_campaign_par(params: CgParams, trials: u32, seed: u64, jobs: usize) -> Campaign {
    let _span = dvf_obs::span("campaign:CG");
    let jobs = if jobs == 0 { default_jobs() } else { jobs };
    let n = params.n;
    // Golden run fixes the injection window: flips must land while the
    // solver is still iterating.
    let (golden, _) = dvf_kernels::cg::run_plain(params);
    let window = golden.iterations.max(1);
    let mut results = Vec::new();
    for (t, name) in ["A", "x", "p", "r"].iter().enumerate() {
        let len = if t == 0 { n * n } else { n };
        let outcomes = run_trials(trials, jobs, seed, t as u64, |rng| {
            let elem = rng.gen_range(0..len);
            let bit = rng.gen_range(0..64);
            let tau = rng.gen_range(0..window);
            let (converged, err) = cg_with_flip(params, t, elem, bit, tau);
            if !converged {
                Outcome::Detected
            } else if err < 1e-6 {
                Outcome::Benign
            } else {
                Outcome::Sdc
            }
        });
        results.push(CampaignResult::tally(name, outcomes));
    }
    Campaign {
        kernel: "CG",
        results,
        executions: 1 + 4 * trials as u64,
    }
}

// ---------------------------------------------------------------------
// MC
// ---------------------------------------------------------------------

/// Monte-Carlo lookups with a flip in `G` (target 0) or `E` (target 1)
/// after `tau` lookups.
fn mc_with_flip(params: McParams, target: usize, elem: usize, bit: u32, tau: usize) -> f64 {
    // Rebuild the tables exactly as the kernel does.
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xfeed);
    let mut grid_energy: Vec<f64> = (0..params.grid_points)
        .map(|i| i as f64 / params.grid_points as f64)
        .collect();
    let xs_index: Vec<u32> = (0..params.grid_points)
        .map(|_| rng.gen_range(0..params.xs_entries as u32))
        .collect();
    let mut xs_total: Vec<f64> = (0..params.xs_entries)
        .map(|i| 1.0 + (i % 97) as f64 * 0.01)
        .collect();
    let xs_scatter: Vec<f64> = (0..params.xs_entries)
        .map(|i| 0.5 + (i % 31) as f64 * 0.02)
        .collect();

    let mut lookup_rng = StdRng::seed_from_u64(params.seed);
    let mut checksum = 0.0;
    for l in 0..params.lookups {
        if l == tau {
            match target {
                0 => {
                    let i = elem % grid_energy.len();
                    grid_energy[i] = flip_bit(grid_energy[i], bit);
                }
                _ => {
                    let i = elem % xs_total.len();
                    xs_total[i] = flip_bit(xs_total[i], bit);
                }
            }
        }
        let energy: f64 = lookup_rng.gen_range(0.0..1.0);
        let gi = ((energy * params.grid_points as f64) as usize).min(params.grid_points - 1);
        // A corrupted grid energy perturbs the checksum weighting (the
        // physical lookup would resolve to a wrong row).
        let row = xs_index[gi] as usize;
        let distortion = grid_energy[gi] - gi as f64 / params.grid_points as f64;
        checksum += xs_total[row] * 0.7 + xs_scatter[row] * 0.3 + distortion;
    }
    checksum
}

/// Fault-injection campaign over MC's `G` and `E`.
pub fn mc_campaign(params: McParams, trials: u32, seed: u64) -> Campaign {
    mc_campaign_par(params, trials, seed, 1)
}

/// [`mc_campaign`] with trials fanned across up to `jobs` threads
/// (`0` = one per core); tallies are bit-identical for every `jobs`.
pub fn mc_campaign_par(params: McParams, trials: u32, seed: u64, jobs: usize) -> Campaign {
    let _span = dvf_obs::span("campaign:MC");
    let jobs = if jobs == 0 { default_jobs() } else { jobs };
    let golden = mc_with_flip(params, 0, 0, 0, usize::MAX); // flip never fires
    let mut results = Vec::new();
    for (t, name, len) in [
        (0usize, "G", params.grid_points),
        (1, "E", params.xs_entries),
    ] {
        let outcomes = run_trials(trials, jobs, seed, t as u64, |rng| {
            let elem = rng.gen_range(0..len);
            let bit = rng.gen_range(0..64);
            let tau = rng.gen_range(0..params.lookups);
            classify(mc_with_flip(params, t, elem, bit, tau), golden, 1e-12)
        });
        results.push(CampaignResult::tally(name, outcomes));
    }
    Campaign {
        kernel: "MC",
        results,
        executions: 1 + 2 * trials as u64,
    }
}

// ---------------------------------------------------------------------
// FT
// ---------------------------------------------------------------------

/// Forward FFT with a flip in `X` injected at pass boundary `tau`
/// (0 = before the bit-reversal, `log2 n + 1` = after the last pass).
/// Returns the output-magnitude checksum.
fn ft_with_flip(n: usize, elem: usize, bit: u32, re_part: bool, tau: usize) -> f64 {
    use dvf_kernels::fft::{input_signal, Complex};
    let mut x = input_signal(n);
    let bits = n.trailing_zeros();

    let flip_now = |x: &mut [Complex]| {
        let c = &mut x[elem % n];
        if re_part {
            c.re = flip_bit(c.re, bit);
        } else {
            c.im = flip_bit(c.im, bit);
        }
    };

    let mut stage = 0usize;
    if stage == tau {
        flip_now(&mut x);
    }
    // Bit-reversal permutation.
    for i in 0..n {
        let j = ((i as u32).reverse_bits() >> (32 - bits)) as usize;
        if i < j {
            x.swap(i, j);
        }
    }
    stage += 1;
    // Butterfly passes.
    let mut m = 1;
    while m < n {
        if stage == tau {
            flip_now(&mut x);
        }
        let theta = -std::f64::consts::PI / m as f64;
        let w_m = Complex::new(theta.cos(), theta.sin());
        let mut k = 0;
        while k < n {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..m {
                let t = mul(w, x[k + j + m]);
                let u = x[k + j];
                x[k + j] = Complex::new(u.re + t.re, u.im + t.im);
                x[k + j + m] = Complex::new(u.re - t.re, u.im - t.im);
                w = mul(w, w_m);
            }
            k += 2 * m;
        }
        m *= 2;
        stage += 1;
    }
    x.iter().map(|c| c.abs()).sum()
}

fn mul(a: dvf_kernels::fft::Complex, b: dvf_kernels::fft::Complex) -> dvf_kernels::fft::Complex {
    dvf_kernels::fft::Complex::new(a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re)
}

/// Fault-injection campaign over FT's single structure `X`.
///
/// The FFT is linear and in-place: a flip injected at pass `τ` spreads to
/// `~n / 2^(passes−τ)` outputs, so almost every non-negligible flip is an
/// SDC — there is no convergence loop to absorb or flag it. The
/// interesting contrast with CG.
pub fn ft_campaign(n: usize, trials: u32, seed: u64) -> Campaign {
    ft_campaign_par(n, trials, seed, 1)
}

/// [`ft_campaign`] with trials fanned across up to `jobs` threads
/// (`0` = one per core); tallies are bit-identical for every `jobs`.
pub fn ft_campaign_par(n: usize, trials: u32, seed: u64, jobs: usize) -> Campaign {
    let _span = dvf_obs::span("campaign:FT");
    let jobs = if jobs == 0 { default_jobs() } else { jobs };
    assert!(n.is_power_of_two());
    let golden = ft_with_flip(n, 0, 0, true, usize::MAX);
    let passes = n.trailing_zeros() as usize + 1;
    let outcomes = run_trials(trials, jobs, seed, 0, |rng| {
        let elem = rng.gen_range(0..n);
        let bit = rng.gen_range(0..64);
        let re_part = rng.gen_bool(0.5);
        let tau = rng.gen_range(0..passes);
        classify(ft_with_flip(n, elem, bit, re_part, tau), golden, 1e-12)
    });
    Campaign {
        kernel: "FT",
        results: vec![CampaignResult::tally("X", outcomes)],
        executions: 1 + trials as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_vm() -> VmParams {
        VmParams {
            n: 400,
            stride_a: 4,
        }
    }

    #[test]
    fn outcomes_partition_trials() {
        let c = vm_campaign(small_vm(), 40, 7);
        for r in &c.results {
            assert_eq!(r.trials, 40);
            assert_eq!(r.benign + r.sdc + r.detected, r.trials);
        }
        assert_eq!(c.executions, 1 + 3 * 40);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = vm_campaign(small_vm(), 30, 11);
        let b = vm_campaign(small_vm(), 30, 11);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn parallel_campaigns_match_sequential_tallies() {
        // Bit-identical, not statistically similar: per-trial seeds make
        // the outcome of trial i independent of scheduling.
        for jobs in [2, 3, 8] {
            let seq = vm_campaign(small_vm(), 30, 11);
            let par = vm_campaign_par(small_vm(), 30, 11, jobs);
            assert_eq!(seq.results, par.results, "VM with {jobs} jobs");
        }
        let mc = McParams {
            grid_points: 1000,
            xs_entries: 500,
            lookups: 100,
            seed: 1,
        };
        assert_eq!(
            mc_campaign(mc, 24, 5).results,
            mc_campaign_par(mc, 24, 5, 4).results
        );
        assert_eq!(
            ft_campaign(128, 24, 7).results,
            ft_campaign_par(128, 24, 7, 4).results
        );
        let cg = CgParams::new(32, 200, 1e-10);
        assert_eq!(
            cg_campaign(cg, 12, 3).results,
            cg_campaign_par(cg, 12, 3, 4).results
        );
    }

    #[test]
    fn trial_seeds_are_unique_across_structures_and_trials() {
        let mut seen = std::collections::HashSet::new();
        for structure in 0..4u64 {
            for trial in 0..256u32 {
                assert!(
                    seen.insert(trial_seed(42, structure, trial)),
                    "seed collision at ({structure}, {trial})"
                );
            }
        }
    }

    #[test]
    fn vm_flips_frequently_corrupt() {
        // VM has no redundancy: a flip in *live* data that feeds the
        // output corrupts it. Liveness thins the rate (strided A reads
        // 1/4 of its elements; elements already consumed are dead; the
        // lowest mantissa bits vanish below the tolerance), but a solid
        // fraction of trials must corrupt.
        let c = vm_campaign(small_vm(), 60, 3);
        let total_sdc: u32 = c.results.iter().map(|r| r.sdc).sum();
        assert!(
            (20..=170).contains(&total_sdc),
            "SDC count {total_sdc} of 180 trials"
        );
    }

    #[test]
    fn cg_iterate_flips_hurt_more_than_operator_flips() {
        // CG's recurrence residual does NOT self-correct: flips in the
        // iterate structures (x especially — a pure accumulator) corrupt
        // the answer, while low-order operator flips perturb the solved
        // system below tolerance. This asymmetry is exactly the kind of
        // per-structure difference DVF-guided protection targets.
        let params = CgParams::new(48, 200, 1e-10);
        let c = cg_campaign(params, 30, 5);
        let impact = |name: &str| {
            c.results
                .iter()
                .find(|r| r.structure == name)
                .map(CampaignResult::impact_rate)
                .unwrap()
        };
        let iterate = (impact("x") + impact("p") + impact("r")) / 3.0;
        assert!(
            iterate > impact("A"),
            "iterate impact {iterate} !> A impact {}",
            impact("A")
        );
        // Some flips in every class are still absorbed.
        let benign: u32 = c.results.iter().map(|r| r.benign).sum();
        assert!(benign > 0, "no flip was absorbed");
    }

    #[test]
    fn mc_flip_impact_is_sparse() {
        // One corrupted element among 5000 grid points, touched by 200
        // random lookups: most flips are never read -> mostly benign.
        let params = McParams {
            grid_points: 5000,
            xs_entries: 3000,
            lookups: 200,
            seed: 42,
        };
        let c = mc_campaign(params, 60, 9);
        for r in &c.results {
            assert!(
                r.benign > r.sdc,
                "{}: benign {} !> sdc {}",
                r.structure,
                r.benign,
                r.sdc
            );
        }
    }

    #[test]
    fn ft_golden_matches_real_fft() {
        use dvf_kernels::fft::{fft_plain, input_signal};
        let n = 256;
        let via_campaign = ft_with_flip(n, 0, 0, true, usize::MAX);
        let mut x = input_signal(n);
        fft_plain(&mut x, false);
        let direct: f64 = x.iter().map(|c| c.abs()).sum();
        assert!((via_campaign - direct).abs() < 1e-9 * direct);
    }

    #[test]
    fn ft_has_no_masking_loop() {
        // Unlike CG, nothing detects or repairs an FFT flip: outcomes are
        // benign or SDC, with essentially nothing "detected". Benign cases
        // are numerical, not algorithmic: flips in the all-zero imaginary
        // parts produce denormals (~half the trials), and low mantissa
        // bits fall below the comparison tolerance. The only "detected"
        // outcomes possible are overflow to Inf/NaN when a flip lands on
        // the top exponent bit of a unit-range value — rare, and numeric
        // rather than algorithmic, so allow a small handful.
        let c = ft_campaign(256, 60, 17);
        let r = &c.results[0];
        assert_eq!(r.structure, "X");
        assert!(
            r.detected <= 3,
            "no detection mechanism exists beyond fp overflow: {r:?}"
        );
        assert!(
            r.sdc as f64 > 0.15 * r.trials as f64,
            "sdc rate too low: {r:?}"
        );
    }

    #[test]
    fn rates_are_well_formed() {
        let c = mc_campaign(
            McParams {
                grid_points: 1000,
                xs_entries: 500,
                lookups: 100,
                seed: 1,
            },
            20,
            2,
        );
        for r in &c.results {
            assert!((0.0..=1.0).contains(&r.sdc_rate()));
            assert!((0.0..=1.0).contains(&r.impact_rate()));
            assert!(r.impact_rate() >= r.sdc_rate());
        }
    }
}
