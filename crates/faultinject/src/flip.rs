//! Bit-flip primitives.

/// Flip bit `bit` (0–63) of a double, through its IEEE-754 representation.
pub fn flip_bit(value: f64, bit: u32) -> f64 {
    assert!(bit < 64, "f64 has 64 bits, got bit {bit}");
    f64::from_bits(value.to_bits() ^ (1u64 << bit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive() {
        for bit in 0..64 {
            let v = 1234.5678f64;
            assert_eq!(flip_bit(flip_bit(v, bit), bit).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn low_mantissa_bits_are_small_perturbations() {
        let v = 1.0f64;
        let flipped = flip_bit(v, 0);
        assert!((flipped - v).abs() < 1e-15);
    }

    #[test]
    fn sign_bit_negates() {
        assert_eq!(flip_bit(3.5, 63), -3.5);
    }

    #[test]
    fn exponent_bits_are_catastrophic() {
        let v = 1.0f64;
        let flipped = flip_bit(v, 62); // top exponent bit
        assert!(flipped.abs() > 1e100 || flipped.abs() < 1e-100);
    }

    #[test]
    #[should_panic(expected = "64 bits")]
    fn bit_out_of_range_panics() {
        let _ = flip_bit(0.0, 64);
    }
}
