//! # dvf-faultinject
//!
//! Statistical bit-flip fault injection over the paper's kernels — the
//! *baseline methodology* the DVF paper positions itself against
//! (§I, §VI: "researchers have to perform a large amount of fault
//! injection operations, which is prohibitively expensive").
//!
//! Implementing the baseline serves two purposes:
//!
//! 1. **Cost comparison** — an injection campaign needs hundreds of full
//!    kernel re-executions per data structure, versus one closed-form
//!    model evaluation (quantified by the `fi_compare` binary and the
//!    `eval_cost` bench).
//! 2. **Cross-validation** — the *ranking* of structures by empirical
//!    silent-data-corruption rate should agree with the DVF ranking,
//!    since DVF is designed to predict which structures are worth
//!    protecting.
//!
//! Faults are single bit flips injected into one element of one target
//! structure at a uniformly random point of the kernel's computation
//! (matching the single-event-upset model of the fault-injection
//! literature the paper cites). Outcomes are classified as:
//!
//! * **Benign** — output matches the golden run (the flip landed in dead
//!   data, was overwritten, or was absorbed by the algorithm);
//! * **SDC** — silent data corruption: the run completes but the output
//!   is wrong;
//! * **Detected** — the error is observable without output comparison
//!   (non-convergence, NaN/Inf).

pub mod campaign;
pub mod flip;

pub use campaign::{
    cg_campaign, cg_campaign_par, ft_campaign, ft_campaign_par, mc_campaign, mc_campaign_par,
    vm_campaign, vm_campaign_par, Campaign, CampaignResult, Outcome,
};
pub use flip::flip_bit;
