//! Barnes-Hut N-body simulation (paper Table II "NB", Algorithm 2).
//!
//! Bodies are organized into a quadtree `T`; computing the net force on a
//! body walks the tree, descending only where the opening criterion
//! `width / distance ≥ θ` demands it. Which nodes a walk touches depends
//! on the (randomly generated) mass distribution — the paper's canonical
//! **random access** pattern. The traversal statistics the random model
//! needs (`k` = average nodes visited per body, `iter` = number of walks)
//! are part of the kernel output, mirroring the paper: "these two
//! parameters are usually output as a part of the application results".

use crate::recorder::Recorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A body: position, mass and one accumulated force magnitude.
/// 32 bytes, matching the paper's element size for the NB structures.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Body {
    /// x position.
    pub x: f64,
    /// y position.
    pub y: f64,
    /// Mass.
    pub mass: f64,
    /// Accumulated force magnitude (output).
    pub force: f64,
}

/// A quadtree node in the compact traversal arena: center of mass, total
/// mass, cell width, and the index of the first of four consecutive
/// children (`-1` for leaves). 32 bytes, the paper's `E` for `T`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Node {
    /// Center-of-mass x.
    pub cx: f64,
    /// Center-of-mass y.
    pub cy: f64,
    /// Total mass (0 for empty cells).
    pub mass: f32,
    /// Cell side length.
    pub width: f32,
    /// Index of the first child (children occupy 4 consecutive slots);
    /// `-1` marks a leaf.
    pub first_child: i32,
    /// Number of bodies inside (1 ⇒ leaf with a single body).
    pub count: i32,
}

/// Barnes-Hut parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NbParams {
    /// Number of bodies.
    pub bodies: usize,
    /// Opening angle θ (smaller = more accurate = more node visits).
    pub theta: f64,
    /// RNG seed for the body distribution.
    pub seed: u64,
}

impl NbParams {
    /// Paper Table V verification input: 1000 particles.
    pub fn verification() -> Self {
        Self {
            bodies: 1000,
            theta: 0.5,
            seed: 42,
        }
    }

    /// Paper Table VI profiling input: 6000 particles.
    pub fn profiling() -> Self {
        Self {
            bodies: 6000,
            theta: 0.5,
            seed: 42,
        }
    }
}

/// Outcome of a Barnes-Hut force computation.
#[derive(Debug, Clone, PartialEq)]
pub struct NbOutput {
    /// Parameters used.
    pub params: NbParams,
    /// Quadtree nodes built (`N` for the random model of `T`).
    pub tree_nodes: usize,
    /// Average nodes visited per body walk (`k`).
    pub k_avg: f64,
    /// Number of walks (`iter` — one per body).
    pub iterations: usize,
    /// Total force checksum.
    pub force_checksum: f64,
    /// Floating-point operations (approximate: per node interaction).
    pub flops: f64,
}

const MAX_DEPTH: usize = 32;
const SOFTENING2: f64 = 1e-6;

/// Build state: a growable arena of nodes plus body assignments.
struct TreeBuilder {
    nodes: Vec<Node>,
    /// Per-node body index while a cell holds exactly one body.
    body_of: Vec<i32>,
}

impl TreeBuilder {
    fn new_node(&mut self, width: f32) -> usize {
        self.nodes.push(Node {
            width,
            first_child: -1,
            ..Node::default()
        });
        self.body_of.push(-1);
        self.nodes.len() - 1
    }

    #[allow(clippy::too_many_arguments)] // geometric recursion carries its full frame
    fn insert(
        &mut self,
        node: usize,
        cx: f64,
        cy: f64,
        half: f64,
        body: usize,
        bodies: &[Body],
        depth: usize,
    ) {
        let b = bodies[body];
        if self.nodes[node].count == 0 {
            // Empty leaf: claim it.
            self.nodes[node].count = 1;
            self.nodes[node].cx = b.x;
            self.nodes[node].cy = b.y;
            self.nodes[node].mass = b.mass as f32;
            self.body_of[node] = body as i32;
            return;
        }
        if depth >= MAX_DEPTH {
            // Merge into the cell's aggregate (coincident points guard).
            let n = &mut self.nodes[node];
            let total = n.mass as f64 + b.mass;
            n.cx = (n.cx * n.mass as f64 + b.x * b.mass) / total;
            n.cy = (n.cy * n.mass as f64 + b.y * b.mass) / total;
            n.mass = total as f32;
            n.count += 1;
            return;
        }
        if self.nodes[node].first_child < 0 {
            // Leaf with one body: split, push the old occupant down a
            // level. The node's aggregate still describes that body, so it
            // is kept as-is.
            let old = self.body_of[node];
            self.body_of[node] = -1;
            let first = self.new_node(half as f32);
            for _ in 1..4 {
                self.new_node(half as f32);
            }
            self.nodes[node].first_child = first as i32;
            if old >= 0 {
                self.insert_into_child(node, cx, cy, half, old as usize, bodies, depth);
            }
        }
        self.insert_into_child(node, cx, cy, half, body, bodies, depth);
        // Fold the new body into this node's aggregate.
        let n = &mut self.nodes[node];
        let b = bodies[body];
        let total = n.mass as f64 + b.mass;
        n.cx = (n.cx * n.mass as f64 + b.x * b.mass) / total;
        n.cy = (n.cy * n.mass as f64 + b.y * b.mass) / total;
        n.mass = total as f32;
        n.count += 1;
    }

    #[allow(clippy::too_many_arguments)] // geometric recursion carries its full frame
    fn insert_into_child(
        &mut self,
        node: usize,
        cx: f64,
        cy: f64,
        half: f64,
        body: usize,
        bodies: &[Body],
        depth: usize,
    ) {
        let b = bodies[body];
        let east = b.x >= cx;
        let north = b.y >= cy;
        let quadrant = usize::from(east) + 2 * usize::from(north);
        let child = (self.nodes[node].first_child as usize) + quadrant;
        let q = half / 2.0;
        let ccx = cx + if east { q } else { -q };
        let ccy = cy + if north { q } else { -q };
        self.insert(child, ccx, ccy, q, body, bodies, depth + 1);
    }
}

/// Generate a clustered random body distribution (two Gaussian-ish blobs,
/// which produces the uneven tree the paper's randomness argument relies
/// on).
pub fn generate_bodies(params: NbParams) -> Vec<Body> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    (0..params.bodies)
        .map(|i| {
            let (cx, cy) = if i % 3 == 0 {
                (-0.4, -0.3)
            } else {
                (0.35, 0.3)
            };
            // Sum of uniforms approximates a Gaussian.
            let g = |rng: &mut StdRng| -> f64 {
                (0..6).map(|_| rng.gen_range(-0.5..0.5)).sum::<f64>() / 6.0
            };
            Body {
                x: cx + 0.5 * g(&mut rng),
                y: cy + 0.5 * g(&mut rng),
                mass: rng.gen_range(0.5..1.5),
                force: 0.0,
            }
        })
        .collect()
}

/// Build the quadtree over `bodies` (untraced construction phase).
pub fn build_tree(bodies: &[Body]) -> (Vec<Node>, Vec<i32>) {
    let mut builder = TreeBuilder {
        nodes: Vec::with_capacity(bodies.len() * 2),
        body_of: Vec::with_capacity(bodies.len() * 2),
    };
    let root = builder.new_node(4.0);
    for i in 0..bodies.len() {
        builder.insert(root, 0.0, 0.0, 2.0, i, bodies, 0);
    }
    (builder.nodes, builder.body_of)
}

/// Run the traced force computation. `T` (the tree arena) and `P` (the
/// body array) are the two tracked structures of paper Fig. 5(c).
pub fn run_traced(params: NbParams, rec: &Recorder) -> NbOutput {
    let bodies = generate_bodies(params);
    let (nodes, _body_of) = build_tree(&bodies);

    let t = rec.buffer_from("T", nodes);
    let mut p = rec.buffer_from("P", bodies);

    let mut visited_total = 0u64;
    let mut flops = 0.0f64;

    rec.set_enabled(true);
    for i in 0..p.len() {
        let body = p.get(i);
        let mut force = 0.0;
        // Explicit stack to avoid recursion in the hot traced loop.
        let mut stack: Vec<usize> = vec![0];
        let mut visited = 0u64;
        while let Some(idx) = stack.pop() {
            let node = t.get(idx);
            visited += 1;
            if node.count == 0 {
                continue;
            }
            let dx = node.cx - body.x;
            let dy = node.cy - body.y;
            let dist2 = dx * dx + dy * dy + SOFTENING2;
            let dist = dist2.sqrt();
            let open = node.first_child >= 0 && (node.width as f64) / dist >= params.theta;
            if open {
                let first = node.first_child as usize;
                stack.extend([first, first + 1, first + 2, first + 3]);
            } else {
                // Leaf or far cell: accumulate (skip obvious self-leaf).
                if node.count == 1 && dist2 <= SOFTENING2 * 1.0001 {
                    continue;
                }
                force += body.mass * node.mass as f64 / dist2;
                flops += 10.0;
            }
        }
        visited_total += visited;
        p.update(i, |mut b| {
            b.force = force;
            b
        });
    }
    rec.set_enabled(false);

    let force_checksum = p.raw().iter().map(|b| b.force).sum();
    NbOutput {
        params,
        tree_nodes: t.len(),
        k_avg: visited_total as f64 / p.len() as f64,
        iterations: p.len(),
        force_checksum,
        flops,
    }
}

/// Untraced run (for timing and cross-checking).
pub fn run_plain(params: NbParams) -> NbOutput {
    let rec = Recorder::new(); // recording stays disabled
    run_traced(params, &rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_is_32_bytes() {
        assert_eq!(std::mem::size_of::<Node>(), 32);
        assert_eq!(std::mem::size_of::<Body>(), 32);
    }

    #[test]
    fn tree_mass_is_conserved() {
        let params = NbParams {
            bodies: 500,
            theta: 0.5,
            seed: 7,
        };
        let bodies = generate_bodies(params);
        let (nodes, _) = build_tree(&bodies);
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((nodes[0].mass as f64 - total).abs() < 1e-3 * total);
    }

    #[test]
    fn forces_are_positive_and_deterministic() {
        let params = NbParams {
            bodies: 300,
            theta: 0.5,
            seed: 9,
        };
        let a = run_plain(params);
        let b = run_plain(params);
        assert!(a.force_checksum > 0.0);
        assert_eq!(a.force_checksum, b.force_checksum);
        assert_eq!(a.k_avg, b.k_avg);
    }

    #[test]
    fn smaller_theta_visits_more_nodes() {
        let mk = |theta| NbParams {
            bodies: 400,
            theta,
            seed: 3,
        };
        let loose = run_plain(mk(0.9));
        let tight = run_plain(mk(0.2));
        assert!(tight.k_avg > loose.k_avg);
    }

    #[test]
    fn barnes_hut_approximates_direct_sum() {
        // With a tight theta, BH forces approach the O(n^2) direct sum.
        let params = NbParams {
            bodies: 200,
            theta: 0.1,
            seed: 5,
        };
        let bh = run_plain(params);
        let bodies = generate_bodies(params);
        let mut direct = 0.0;
        for i in 0..bodies.len() {
            let mut f = 0.0;
            for j in 0..bodies.len() {
                if i == j {
                    continue;
                }
                let dx = bodies[j].x - bodies[i].x;
                let dy = bodies[j].y - bodies[i].y;
                let d2 = dx * dx + dy * dy + SOFTENING2;
                f += bodies[i].mass * bodies[j].mass / d2;
            }
            direct += f;
        }
        let rel = (bh.force_checksum - direct).abs() / direct;
        assert!(rel < 0.05, "relative force error {rel}");
    }

    #[test]
    fn trace_touches_t_randomly() {
        let params = NbParams {
            bodies: 300,
            theta: 0.5,
            seed: 11,
        };
        let rec = Recorder::new();
        let out = run_traced(params, &rec);
        let trace = rec.into_trace();
        let t = trace.registry.id("T").unwrap();
        let t_refs = trace.refs.iter().filter(|r| r.ds == t).count();
        // One T read per visited node.
        assert_eq!(t_refs as f64, out.k_avg * out.iterations as f64);
        assert!(out.k_avg > 10.0, "k_avg = {}", out.k_avg);
        assert!(out.tree_nodes > params.bodies, "arena bigger than bodies");
    }
}
