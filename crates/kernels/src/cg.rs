//! Conjugate Gradient (paper Table II "CG", Algorithm 4).
//!
//! The paper uses a *dense* CG (citing a 500×500 / 800×800 double matrix
//! implementation) with four major data structures: the matrix `A` and the
//! vectors `x`, `p`, `r`. `A` streams on every matrix–vector product, `p`
//! is the paper's running example of the **data reuse** pattern (reused
//! within each iteration and interfered by `A`, `x`, `r`).
//!
//! The test matrix is symmetric positive definite with a strongly varying
//! diagonal, so that Jacobi preconditioning (see [`crate::pcg`]) genuinely
//! reduces the iteration count — the property use case A (Fig. 6) hinges
//! on.

use crate::recorder::Recorder;

/// CG problem parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgParams {
    /// Matrix dimension `n` (the matrix is `n × n` doubles).
    pub n: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Relative residual tolerance (‖r‖ / ‖b‖).
    pub tol: f64,
    /// Diagonal spread `s`: diagonal entries range over `[base, (1+s)·base]`.
    /// Larger spread worsens the conditioning and therefore the advantage
    /// of Jacobi preconditioning (use case A sweeps this with `n`).
    pub diag_spread: f64,
}

impl CgParams {
    /// Parameters with the default diagonal spread (9, i.e. a 10× range).
    pub fn new(n: usize, max_iters: usize, tol: f64) -> Self {
        Self {
            n,
            max_iters,
            tol,
            diag_spread: 9.0,
        }
    }

    /// Paper Table V verification input: 500×500 double matrix. The
    /// iteration cap keeps the reference trace small enough to simulate
    /// (the paper likewise notes cache simulation is "very time consuming"
    /// and uses small inputs for verification).
    pub fn verification() -> Self {
        Self::new(500, 5, 1e-10)
    }

    /// Paper Table VI profiling input: 800×800 double matrix.
    pub fn profiling() -> Self {
        Self::new(800, 200, 1e-8)
    }
}

/// Outcome of a CG/PCG run.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOutput {
    /// Parameters used.
    pub n: usize,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
    /// Floating-point operations executed (dominated by `2n²` per
    /// iteration for the matvec).
    pub flops: f64,
    /// Max-norm error against the known solution (all-ones).
    pub error: f64,
}

/// Dense SPD test matrix: off-diagonal `1/(1+|i−j|)`, diagonal
/// `(2·ln(n)+3) · (1 + spread·i/n)` — strictly diagonally dominant (hence
/// SPD). The diagonal spread controls the conditioning and therefore how
/// much Jacobi preconditioning helps.
pub fn spd_matrix_with_spread(n: usize, spread: f64) -> Vec<f64> {
    let mut a = vec![0.0f64; n * n];
    let scale = 2.0 * (n as f64).ln() + 3.0;
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = if i == j {
                scale * (1.0 + spread * i as f64 / n as f64)
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            };
        }
    }
    a
}

/// [`spd_matrix_with_spread`] with the default 10× diagonal range.
pub fn spd_matrix(n: usize) -> Vec<f64> {
    spd_matrix_with_spread(n, 9.0)
}

/// Right-hand side `b = A · 1`, so the exact solution is the ones vector.
pub fn rhs_for_ones(a: &[f64], n: usize) -> Vec<f64> {
    let mut b = vec![0.0f64; n];
    for i in 0..n {
        b[i] = a[i * n..(i + 1) * n].iter().sum();
    }
    b
}

fn dot(u: &[f64], v: &[f64]) -> f64 {
    u.iter().zip(v).map(|(a, b)| a * b).sum()
}

/// Plain (untraced) CG; returns the solution too.
pub fn run_plain(params: CgParams) -> (CgOutput, Vec<f64>) {
    let n = params.n;
    let a = spd_matrix_with_spread(n, params.diag_spread);
    let b = rhs_for_ones(&a, n);
    let mut x = vec![0.0f64; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut q = vec![0.0f64; n];

    let bnorm = dot(&b, &b).sqrt();
    let mut rho = dot(&r, &r);
    let mut iterations = 0;
    let mut flops = 0.0;

    while iterations < params.max_iters && rho.sqrt() / bnorm > params.tol {
        // q = A p
        for i in 0..n {
            q[i] = dot(&a[i * n..(i + 1) * n], &p);
        }
        let alpha = rho / dot(&p, &q);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rho_next = dot(&r, &r);
        let beta = rho_next / rho;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rho = rho_next;
        iterations += 1;
        flops += 2.0 * (n * n) as f64 + 10.0 * n as f64;
    }

    let error = x.iter().map(|&xi| (xi - 1.0).abs()).fold(0.0f64, f64::max);
    (
        CgOutput {
            n,
            iterations,
            residual: rho.sqrt() / bnorm,
            flops,
            error,
        },
        x,
    )
}

/// Traced CG: the four major data structures `A`, `x`, `p`, `r` are
/// tracked (the matvec scratch `q` is also tracked, as a minor structure);
/// only the iteration loop is recorded.
pub fn run_traced(params: CgParams, rec: &Recorder) -> CgOutput {
    let n = params.n;
    let mut a = rec.buffer::<f64>("A", n * n);
    let mut x = rec.buffer::<f64>("x", n);
    let mut p = rec.buffer::<f64>("p", n);
    let mut r = rec.buffer::<f64>("r", n);
    let mut q = rec.buffer::<f64>("q", n);

    a.raw_mut()
        .copy_from_slice(&spd_matrix_with_spread(n, params.diag_spread));
    let b = rhs_for_ones(a.raw(), n);
    r.raw_mut().copy_from_slice(&b);
    p.raw_mut().copy_from_slice(&b);

    let bnorm = dot(&b, &b).sqrt();
    let mut rho = dot(r.raw(), r.raw());
    let mut iterations = 0;
    let mut flops = 0.0;

    rec.set_enabled(true);
    while iterations < params.max_iters && rho.sqrt() / bnorm > params.tol {
        // q = A p: streams A, reuses p within the iteration.
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..n {
                s += a.get(i * n + j) * p.get(j);
            }
            q.set(i, s);
        }
        // alpha = rho / (p . q)
        let mut pq = 0.0;
        for i in 0..n {
            pq += p.get(i) * q.get(i);
        }
        let alpha = rho / pq;
        // x += alpha p ; r -= alpha q
        for i in 0..n {
            x.update(i, |xi| xi + alpha * p.get(i));
            r.update(i, |ri| ri - alpha * q.get(i));
        }
        // rho' = r . r
        let mut rho_next = 0.0;
        for i in 0..n {
            let ri = r.get(i);
            rho_next += ri * ri;
        }
        let beta = rho_next / rho;
        // p = r + beta p
        for i in 0..n {
            let v = r.get(i) + beta * p.get(i);
            p.set(i, v);
        }
        rho = rho_next;
        iterations += 1;
        flops += 2.0 * (n * n) as f64 + 10.0 * n as f64;
    }
    rec.set_enabled(false);

    let error = x
        .raw()
        .iter()
        .map(|&xi| (xi - 1.0).abs())
        .fold(0.0f64, f64::max);
    CgOutput {
        n,
        iterations,
        residual: rho.sqrt() / bnorm,
        flops,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_converges_to_ones() {
        let (out, x) = run_plain(CgParams::new(120, 200, 1e-10));
        assert!(out.residual <= 1e-10, "residual {}", out.residual);
        assert!(out.error < 1e-6, "error {}", out.error);
        assert!(x.iter().all(|&v| (v - 1.0).abs() < 1e-6));
        assert!(out.iterations < 120);
    }

    #[test]
    fn traced_matches_plain_exactly() {
        let params = CgParams::new(60, 50, 1e-10);
        let rec = Recorder::new();
        let traced = run_traced(params, &rec);
        let (plain, _) = run_plain(params);
        assert_eq!(traced.iterations, plain.iterations);
        assert_eq!(traced.residual, plain.residual);
        assert_eq!(traced.error, plain.error);
    }

    #[test]
    fn trace_counts_match_algorithm() {
        // tol = 0 forces exactly max_iters iterations.
        let params = CgParams::new(30, 3, 0.0);
        let rec = Recorder::new();
        let out = run_traced(params, &rec);
        assert_eq!(out.iterations, 3);
        let trace = rec.into_trace();
        let a = trace.registry.id("A").unwrap();
        let a_reads = trace.refs.iter().filter(|r| r.ds == a).count();
        // A is read n*n times per iteration, never written.
        assert_eq!(a_reads, 3 * 30 * 30);
        let p = trace.registry.id("p").unwrap();
        // p: matvec n*n reads + dot n + axpy(x) n reads + update n (r+beta p
        // reads n, writes n) per iteration.
        let p_refs = trace.refs.iter().filter(|r| r.ds == p).count();
        assert_eq!(p_refs, 3 * (30 * 30 + 30 + 30 + 2 * 30));
    }

    #[test]
    fn matrix_is_symmetric_and_dominant() {
        let n = 40;
        let a = spd_matrix(n);
        for i in 0..n {
            let mut offdiag = 0.0;
            for j in 0..n {
                assert_eq!(a[i * n + j], a[j * n + i]);
                if i != j {
                    offdiag += a[i * n + j].abs();
                }
            }
            assert!(a[i * n + i] > offdiag, "row {i} not dominant");
        }
    }

    #[test]
    fn diagonal_spread_is_wide() {
        let n = 100;
        let a = spd_matrix(n);
        let d0 = a[0];
        let dlast = a[(n - 1) * n + (n - 1)];
        assert!(dlast / d0 > 5.0, "spread {}", dlast / d0);
    }
}
