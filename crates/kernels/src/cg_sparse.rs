//! Sparse (CSR) Conjugate Gradient — extension.
//!
//! Table II files CG under *sparse* linear algebra (NPB CG), while the
//! implementation the paper cites — and [`crate::cg`] reproduces — is
//! dense. This module adds the genuinely sparse variant: a CSR matrix
//! whose matvec *streams* the value/column arrays and *gathers* from the
//! source vector through the column indices — a composition the dense
//! kernel cannot exhibit (streaming over `V`/`J`, random over `p`).
//!
//! The matrix is a symmetric positive-definite band-plus-random-coupling
//! operator in the spirit of NPB CG's randomly sparse SPD systems.

use crate::recorder::Recorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// CSR storage.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Dimension.
    pub n: usize,
    /// Row start offsets (`n + 1` entries).
    pub row_ptr: Vec<usize>,
    /// Column indices, row-major.
    pub col_idx: Vec<u32>,
    /// Values, aligned with `col_idx`.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Average distinct columns touched per row — the `k` parameter of
    /// the random model for the gathered vector.
    pub fn avg_row_nnz(&self) -> f64 {
        self.nnz() as f64 / self.n as f64
    }

    /// `y = A x` (plain).
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        #[allow(clippy::needless_range_loop)] // i indexes row_ptr windows and y together
        for i in 0..self.n {
            let mut acc = 0.0;
            for e in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[e] * x[self.col_idx[e] as usize];
            }
            y[i] = acc;
        }
    }
}

/// Sparse CG parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseCgParams {
    /// Dimension.
    pub n: usize,
    /// Random couplings per row (besides the tridiagonal band).
    pub couplings: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Relative residual tolerance.
    pub tol: f64,
    /// RNG seed for the sparsity pattern.
    pub seed: u64,
}

impl SparseCgParams {
    /// A medium problem comparable to NPB CG class S (n = 1400).
    pub fn class_s() -> Self {
        Self {
            n: 1400,
            couplings: 7,
            max_iters: 400,
            tol: 1e-8,
            seed: 42,
        }
    }
}

/// Build a random symmetric positive-definite CSR matrix: a tridiagonal
/// band plus `couplings` random symmetric off-diagonal entries per row,
/// diagonally dominant by construction.
pub fn random_spd_csr(params: SparseCgParams) -> CsrMatrix {
    let n = params.n;
    let mut rng = StdRng::seed_from_u64(params.seed);
    // Collect the strict upper triangle as (row, col, value).
    let mut upper: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    #[allow(clippy::needless_range_loop)] // i names the row for both sides of the pair
    for i in 0..n.saturating_sub(1) {
        upper[i].push(((i + 1) as u32, -0.5)); // band
        for _ in 0..params.couplings {
            let j = rng.gen_range(i + 1..n);
            upper[i].push((j as u32, -rng.gen_range(0.01..0.25)));
        }
    }
    // Mirror into full rows and add a dominant diagonal.
    let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for (i, ups) in upper.iter().enumerate() {
        for &(j, v) in ups {
            rows[i].push((j, v));
            rows[j as usize].push((i as u32, v));
        }
    }
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0);
    for (i, row) in rows.iter_mut().enumerate() {
        row.sort_by_key(|&(j, _)| j);
        row.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        let offdiag_sum: f64 = row.iter().map(|&(_, v)| v.abs()).sum();
        // Insert the diagonal in sorted position.
        let mut inserted = false;
        for &(j, v) in row.iter() {
            if !inserted && j as usize > i {
                col_idx.push(i as u32);
                values.push(offdiag_sum + 1.0);
                inserted = true;
            }
            col_idx.push(j);
            values.push(v);
        }
        if !inserted {
            col_idx.push(i as u32);
            values.push(offdiag_sum + 1.0);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix {
        n,
        row_ptr,
        col_idx,
        values,
    }
}

/// Outcome of a sparse CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseCgOutput {
    /// Dimension.
    pub n: usize,
    /// Non-zeros in the operator.
    pub nnz: usize,
    /// Average distinct columns per row (the gather `k`).
    pub avg_row_nnz: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
    /// Max-norm error against the all-ones solution.
    pub error: f64,
    /// Floating-point operations (`~2·nnz` per iteration).
    pub flops: f64,
}

fn dot(u: &[f64], v: &[f64]) -> f64 {
    u.iter().zip(v).map(|(a, b)| a * b).sum()
}

/// Plain (untraced) sparse CG against the all-ones manufactured solution.
pub fn run_plain(params: SparseCgParams) -> SparseCgOutput {
    let a = random_spd_csr(params);
    let n = a.n;
    let mut b = vec![0.0; n];
    a.matvec(&vec![1.0; n], &mut b);

    let mut x = vec![0.0; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let bnorm = dot(&b, &b).sqrt();
    let mut rho = dot(&r, &r);
    let mut iterations = 0;
    let mut flops = 0.0;

    while iterations < params.max_iters && rho.sqrt() / bnorm > params.tol {
        a.matvec(&p, &mut q);
        let alpha = rho / dot(&p, &q);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rho_next = dot(&r, &r);
        let beta = rho_next / rho;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rho = rho_next;
        iterations += 1;
        flops += 2.0 * a.nnz() as f64 + 10.0 * n as f64;
    }

    SparseCgOutput {
        n,
        nnz: a.nnz(),
        avg_row_nnz: a.avg_row_nnz(),
        iterations,
        residual: rho.sqrt() / bnorm,
        error: x.iter().map(|&v| (v - 1.0).abs()).fold(0.0, f64::max),
        flops,
    }
}

/// Traced sparse CG: `V` (values), `J` (column indices), `x`, `p`, `r`
/// tracked. The matvec streams `V`/`J` and *gathers* `p` through `J` —
/// the random access the dense variant lacks.
pub fn run_traced(params: SparseCgParams, rec: &Recorder) -> SparseCgOutput {
    let a = random_spd_csr(params);
    let n = a.n;

    let v = rec.buffer_from("V", a.values.clone());
    let j = rec.buffer_from("J", a.col_idx.clone());
    let mut x = rec.buffer::<f64>("x", n);
    let mut p = rec.buffer::<f64>("p", n);
    let mut r = rec.buffer::<f64>("r", n);
    let mut q = rec.buffer::<f64>("q", n);

    let mut b = vec![0.0; n];
    a.matvec(&vec![1.0; n], &mut b);
    r.raw_mut().copy_from_slice(&b);
    p.raw_mut().copy_from_slice(&b);

    let bnorm = dot(&b, &b).sqrt();
    let mut rho = dot(r.raw(), r.raw());
    let mut iterations = 0;
    let mut flops = 0.0;

    rec.set_enabled(true);
    while iterations < params.max_iters && rho.sqrt() / bnorm > params.tol {
        for i in 0..n {
            let mut acc = 0.0;
            for e in a.row_ptr[i]..a.row_ptr[i + 1] {
                let col = j.get(e) as usize;
                acc += v.get(e) * p.get(col);
            }
            q.set(i, acc);
        }
        let mut pq = 0.0;
        for i in 0..n {
            pq += p.get(i) * q.get(i);
        }
        let alpha = rho / pq;
        for i in 0..n {
            x.update(i, |xi| xi + alpha * p.get(i));
            r.update(i, |ri| ri - alpha * q.get(i));
        }
        let mut rho_next = 0.0;
        for i in 0..n {
            let ri = r.get(i);
            rho_next += ri * ri;
        }
        let beta = rho_next / rho;
        for i in 0..n {
            let val = r.get(i) + beta * p.get(i);
            p.set(i, val);
        }
        rho = rho_next;
        iterations += 1;
        flops += 2.0 * a.nnz() as f64 + 10.0 * n as f64;
    }
    rec.set_enabled(false);

    SparseCgOutput {
        n,
        nnz: a.nnz(),
        avg_row_nnz: a.avg_row_nnz(),
        iterations,
        residual: rho.sqrt() / bnorm,
        error: x.raw().iter().map(|&v| (v - 1.0).abs()).fold(0.0, f64::max),
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SparseCgParams {
        SparseCgParams {
            n: 300,
            couplings: 4,
            max_iters: 300,
            tol: 1e-9,
            seed: 7,
        }
    }

    #[test]
    fn matrix_is_symmetric_and_dominant() {
        let a = random_spd_csr(small());
        // Rebuild a dense mirror for the check.
        let n = a.n;
        let mut dense = vec![0.0f64; n * n];
        for i in 0..n {
            for e in a.row_ptr[i]..a.row_ptr[i + 1] {
                dense[i * n + a.col_idx[e] as usize] = a.values[e];
            }
        }
        for i in 0..n {
            let mut offdiag = 0.0;
            for jj in 0..n {
                assert!(
                    (dense[i * n + jj] - dense[jj * n + i]).abs() < 1e-12,
                    "asymmetry at ({i},{jj})"
                );
                if i != jj {
                    offdiag += dense[i * n + jj].abs();
                }
            }
            assert!(dense[i * n + i] > offdiag, "row {i} not dominant");
        }
    }

    #[test]
    fn csr_rows_are_sorted_and_deduped() {
        let a = random_spd_csr(small());
        for i in 0..a.n {
            let row = &a.col_idx[a.row_ptr[i]..a.row_ptr[i + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row {i} not strictly sorted");
            }
        }
        assert_eq!(a.row_ptr.len(), a.n + 1);
        assert_eq!(*a.row_ptr.last().unwrap(), a.nnz());
    }

    #[test]
    fn sparse_cg_converges_to_ones() {
        let out = run_plain(small());
        assert!(out.residual <= 1e-9, "residual {}", out.residual);
        assert!(out.error < 1e-6, "error {}", out.error);
        assert!(out.iterations < 300);
    }

    #[test]
    fn traced_matches_plain() {
        let rec = Recorder::new();
        let traced = run_traced(small(), &rec);
        let plain = run_plain(small());
        assert_eq!(traced.iterations, plain.iterations);
        assert_eq!(traced.residual, plain.residual);
        assert!(!rec.is_empty());
    }

    #[test]
    fn gather_pattern_is_irregular() {
        // The matvec's p accesses must jump around (gather), unlike the
        // dense kernel's sequential scan.
        let rec = Recorder::new();
        run_traced(
            SparseCgParams {
                n: 200,
                couplings: 4,
                max_iters: 2,
                tol: 0.0,
                seed: 3,
            },
            &rec,
        );
        let trace = rec.into_trace();
        let p = trace.registry.id("p").unwrap();
        let addrs: Vec<u64> = trace
            .refs
            .iter()
            .filter(|r| r.ds == p)
            .map(|r| r.addr)
            .take(500)
            .collect();
        let jumps = addrs
            .windows(2)
            .filter(|w| w[1] != w[0] + 8 && w[1] != w[0])
            .count();
        assert!(
            jumps > addrs.len() / 4,
            "only {jumps} irregular jumps in {} accesses",
            addrs.len()
        );
    }

    #[test]
    fn sparsity_scales_with_couplings() {
        let sparse = random_spd_csr(SparseCgParams {
            couplings: 2,
            ..small()
        });
        let denser = random_spd_csr(SparseCgParams {
            couplings: 8,
            ..small()
        });
        assert!(denser.nnz() > sparse.nnz());
        assert!(denser.avg_row_nnz() > sparse.avg_row_nnz());
    }
}
