//! 1-D FFT (paper Table II "FT").
//!
//! The paper uses "a segment of codes from the NPB FT benchmark that
//! conducts a 1D FFT computation" with a ~33 KB working set — a 2048-point
//! complex transform (2048 × 16 B = 32 KiB). We implement the standard
//! iterative radix-2 Cooley–Tukey algorithm: a bit-reversal permutation
//! followed by `log₂ n` butterfly passes over the single major data
//! structure `X`. Each pass re-traverses the whole array in a structured
//! order — the paper's **template-based** pattern, and the source of the
//! sharp DVF jump once the cache no longer holds the array (Fig. 5(e)).

use crate::recorder::Recorder;

/// Complex number, 16 bytes (the paper's FT element size).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }

    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        (self.re * self.re + self.im * self.im).sqrt()
    }
}

/// FFT parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtParams {
    /// Transform length (power of two).
    pub n: usize,
    /// Number of forward transforms executed back-to-back (the NPB FT
    /// kernel applies many 1-D FFTs; each re-walks the template).
    pub repeats: usize,
}

impl FtParams {
    /// Class S (both verification and profiling per paper Tables V/VI):
    /// a 2048-point transform (32 KiB working set ≈ the paper's 33 KB).
    pub fn class_s() -> Self {
        Self {
            n: 2048,
            repeats: 4,
        }
    }
}

/// Outcome of an FFT run.
#[derive(Debug, Clone, PartialEq)]
pub struct FtOutput {
    /// Parameters used.
    pub params: FtParams,
    /// Sum of output magnitudes (checksum).
    pub checksum: f64,
    /// Floating-point operations (5 n log₂ n per transform, the standard
    /// FFT count).
    pub flops: f64,
}

/// Deterministic input signal.
pub fn input_signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            Complex::new(
                (2.0 * std::f64::consts::PI * 3.0 * t).cos()
                    + 0.5 * (2.0 * std::f64::consts::PI * 17.0 * t).cos(),
                0.0,
            )
        })
        .collect()
}

/// In-place iterative radix-2 FFT over a plain slice.
/// `inverse` selects the inverse transform (unnormalized).
pub fn fft_plain(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            x.swap(i, j);
        }
    }
    // Butterfly passes.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut m = 1;
    while m < n {
        let theta = sign * std::f64::consts::PI / m as f64;
        let w_m = Complex::new(theta.cos(), theta.sin());
        let mut k = 0;
        while k < n {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..m {
                let t = w.mul(x[k + j + m]);
                let u = x[k + j];
                x[k + j] = u.add(t);
                x[k + j + m] = u.sub(t);
                w = w.mul(w_m);
            }
            k += 2 * m;
        }
        m *= 2;
    }
}

/// The element-index template one transform follows: the bit-reversal
/// permutation touches, then per butterfly pass the `(k+j, k+j+m)` pair
/// order. This is exactly the reference order `run_traced` records for
/// `X`, and what the template model consumes.
pub fn access_template(n: usize) -> Vec<u64> {
    assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    let mut refs = Vec::new();
    for i in 0..n {
        let j = ((i as u32).reverse_bits() >> (32 - bits)) as usize;
        if i < j {
            refs.push(i as u64);
            refs.push(j as u64);
        }
    }
    let mut m = 1;
    while m < n {
        let mut k = 0;
        while k < n {
            for j in 0..m {
                refs.push((k + j + m) as u64);
                refs.push((k + j) as u64);
            }
            k += 2 * m;
        }
        m *= 2;
    }
    refs
}

/// Traced forward FFT(s) over the tracked structure `X`.
pub fn run_traced(params: FtParams, rec: &Recorder) -> FtOutput {
    let mut x = rec.buffer_from("X", input_signal(params.n));
    let n = params.n;
    let bits = n.trailing_zeros();
    let mut flops = 0.0;
    let mut checksum = 0.0;

    for rep in 0..params.repeats {
        // Each repeat transforms a fresh copy of the signal (untraced
        // reset), modeling NPB FT's many independent 1-D FFTs over the
        // same buffer.
        if rep > 0 {
            x.raw_mut().copy_from_slice(&input_signal(n));
        }
        rec.set_enabled(true);
        for i in 0..n {
            let j = ((i as u32).reverse_bits() >> (32 - bits)) as usize;
            if i < j {
                let xi = x.get(i);
                let xj = x.get(j);
                x.set(i, xj);
                x.set(j, xi);
            }
        }
        let mut m = 1;
        while m < n {
            let theta = -std::f64::consts::PI / m as f64;
            let w_m = Complex::new(theta.cos(), theta.sin());
            let mut k = 0;
            while k < n {
                let mut w = Complex::new(1.0, 0.0);
                for j in 0..m {
                    let t = w.mul(x.get(k + j + m));
                    let u = x.get(k + j);
                    x.set(k + j, u.add(t));
                    x.set(k + j + m, u.sub(t));
                    w = w.mul(w_m);
                    flops += 10.0;
                }
                k += 2 * m;
            }
            m *= 2;
        }
        rec.set_enabled(false);
        checksum += x.raw().iter().map(|c| c.abs()).sum::<f64>();
    }

    FtOutput {
        params,
        checksum,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Complex>(), 16);
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 64;
        let mut x = input_signal(n);
        let orig = x.clone();
        fft_plain(&mut x, false);
        // Naive DFT.
        for (k, xk) in x.iter().enumerate() {
            let mut acc = Complex::default();
            for (t, v) in orig.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                acc = acc.add(v.mul(Complex::new(ang.cos(), ang.sin())));
            }
            assert!(
                (acc.re - xk.re).abs() < 1e-8 && (acc.im - xk.im).abs() < 1e-8,
                "bin {k}: naive {acc:?} vs fft {xk:?}"
            );
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 256;
        let mut x = input_signal(n);
        let orig = x.clone();
        fft_plain(&mut x, false);
        fft_plain(&mut x, true);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a.re / n as f64 - b.re).abs() < 1e-10);
            assert!((a.im / n as f64 - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn spectrum_peaks_at_signal_frequencies() {
        let n = 512;
        let mut x = input_signal(n);
        fft_plain(&mut x, false);
        // Components at bins 3 and 17 dominate.
        let mag: Vec<f64> = x.iter().map(|c| c.abs()).collect();
        let mut order: Vec<usize> = (0..n / 2).collect();
        order.sort_by(|&a, &b| mag[b].total_cmp(&mag[a]));
        assert_eq!(order[0], 3);
        assert_eq!(order[1], 17);
    }

    #[test]
    fn traced_matches_plain() {
        let params = FtParams { n: 128, repeats: 1 };
        let rec = Recorder::new();
        let traced = run_traced(params, &rec);
        let mut x = input_signal(128);
        fft_plain(&mut x, false);
        let plain: f64 = x.iter().map(|c| c.abs()).sum();
        assert!((traced.checksum - plain).abs() < 1e-9);
    }

    #[test]
    fn template_matches_trace_addresses() {
        // The published access template must be exactly what the traced
        // kernel touches (in element units).
        let params = FtParams { n: 64, repeats: 1 };
        let rec = Recorder::new();
        run_traced(params, &rec);
        let trace = rec.into_trace();
        let traced_elems: Vec<u64> = trace.refs.iter().map(|r| r.addr / 16).collect();
        let template = access_template(64);
        // The trace issues read+write per butterfly operand while the
        // template lists each distinct element touch once, so compare the
        // distinct element sets and the per-element touch ratio.
        let distinct = |v: &[u64]| {
            let mut s = v.to_vec();
            s.sort_unstable();
            s.dedup();
            s
        };
        assert_eq!(distinct(&traced_elems), distinct(&template));
        // Every butterfly element is read once and written once: the trace
        // is exactly twice the butterfly part of the template, plus the
        // doubled swap refs of the bit-reversal prologue.
        assert_eq!(traced_elems.len(), 2 * template.len());
    }

    #[test]
    fn repeats_scale_trace() {
        let rec1 = Recorder::new();
        run_traced(FtParams { n: 64, repeats: 1 }, &rec1);
        let rec2 = Recorder::new();
        run_traced(FtParams { n: 64, repeats: 3 }, &rec2);
        assert_eq!(rec2.len(), 3 * rec1.len());
    }
}
