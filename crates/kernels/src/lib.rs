//! # dvf-kernels
//!
//! The six numerical kernels of the DVF paper (Table II), implemented from
//! scratch and instrumented to emit per-data-structure memory-reference
//! traces — the measurement side of the paper's model verification
//! (Fig. 4):
//!
//! | kernel | method class | major structures | pattern |
//! |---|---|---|---|
//! | [`vm`]  — Vector Multiplication | dense linear algebra | `A`, `B`, `C` | streaming |
//! | [`cg`]  — Conjugate Gradient    | sparse/dense linear algebra | `A`, `x`, `p`, `r` | template+reuse+streaming |
//! | [`barnes_hut`] — Barnes-Hut N-body | N-body | `T`, `P` | random |
//! | [`mg`]  — Multi-grid V-cycle    | structured grids | `R` | template |
//! | [`fft`] — 1-D FFT               | spectral | `X` | template |
//! | [`mc`]  — Monte Carlo lookup    | Monte Carlo | `G`, `E` | random |
//!
//! Plus [`pcg`] — the preconditioned CG of use case A (Fig. 6).
//!
//! Every kernel has a traced entry point (`run_traced`) whose major data
//! structures live in [`recorder::TrackedBuffer`]s, and a plain entry
//! point for timing and correctness cross-checks. Traced and plain paths
//! compute identical results (asserted in each module's tests).
//!
//! The paper gathered the same reference streams with an Intel Pin tool;
//! see [`recorder`] for why source-level instrumentation is an equivalent
//! substitute.

pub mod barnes_hut;
pub mod cg;
pub mod cg_sparse;
pub mod fft;
pub mod mc;
pub mod mg;
pub mod parallel;
pub mod pcg;
pub mod recorder;
pub mod vm;

pub use recorder::{
    record_fanout, record_hierarchy_fanout, record_tee, HierarchyFanout, Recorder, SimFanout, Tee,
    TraceSink, TrackedBuffer,
};

/// Names, method classes and major data structures of the six kernels —
/// paper Table II, used by the `table2` reproduction binary.
pub const TABLE2: [(&str, &str, &str, &str); 6] = [
    (
        "Vector Multiplication (VM)",
        "Dense linear algebra",
        "A, B, and C",
        "Streaming",
    ),
    (
        "Conjugate Gradient (CG)",
        "Sparse linear algebra",
        "A, x, p and r",
        "Template+Reuse+Streaming",
    ),
    (
        "Barnes-Hut simulation (NB)",
        "N-body method",
        "T and P",
        "Random",
    ),
    ("Multi-grid (MG)", "Structured grids", "R", "Template-based"),
    ("1D FFT (FT)", "Spectral methods", "X", "Template-based"),
    (
        "Monte Carlo simulation (MC)",
        "Monte Carlo",
        "G and E",
        "Random",
    ),
];
