//! Monte Carlo cross-section lookup (paper Table II "MC", XSBench-style).
//!
//! XSBench distills the hottest kernel of a Monte Carlo neutron transport
//! code: for each randomly sampled (energy, material) pair, look up
//! macroscopic cross-sections in a unionized energy grid. Two data
//! structures are accessed randomly and **concurrently** — the grid `G`
//! and the nuclide cross-section table `E` — so each gets only a
//! proportional fraction of the cache (the paper's cache-interference
//! example in §III-C).
//!
//! Matching the paper's model parameters, each lookup touches ~1 element
//! of each structure (`k = 1`) and the lookup count is `iter`
//! (10³ verification / 10⁵ profiling).

use crate::recorder::Recorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A unionized-grid entry: energy key plus an index into the nuclide
/// table (16 bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GridPoint {
    /// Energy of this grid point.
    pub energy: f64,
    /// Index of the matching row in the cross-section table.
    pub xs_index: u32,
    /// Material tag.
    pub material: u32,
}

/// A cross-section entry: total and scattering cross-sections (16 bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct XsEntry {
    /// Total cross-section.
    pub total: f64,
    /// Scattering cross-section.
    pub scatter: f64,
}

/// MC parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McParams {
    /// Entries in the unionized grid `G`.
    pub grid_points: usize,
    /// Entries in the cross-section table `E`.
    pub xs_entries: usize,
    /// Number of lookups (`iter`).
    pub lookups: usize,
    /// RNG seed.
    pub seed: u64,
}

impl McParams {
    /// Paper Table V verification input: size = small, 10³ lookups.
    /// Sizes are scaled down so the reference trace stays simulable.
    pub fn verification() -> Self {
        Self {
            grid_points: 20_000,
            xs_entries: 12_000,
            lookups: 1000,
            seed: 42,
        }
    }

    /// Paper Table VI profiling input: size = small, 10⁵ lookups.
    /// The working set (≈12.8 MB) exceeds every profiling cache, giving
    /// MC the largest DVF of the six kernels (paper Fig. 5(f)).
    pub fn profiling() -> Self {
        Self {
            grid_points: 500_000,
            xs_entries: 300_000,
            lookups: 100_000,
            seed: 42,
        }
    }

    /// `G` footprint in bytes.
    pub fn grid_bytes(&self) -> u64 {
        (self.grid_points * std::mem::size_of::<GridPoint>()) as u64
    }

    /// `E` footprint in bytes.
    pub fn xs_bytes(&self) -> u64 {
        (self.xs_entries * std::mem::size_of::<XsEntry>()) as u64
    }
}

/// Outcome of an MC run.
#[derive(Debug, Clone, PartialEq)]
pub struct McOutput {
    /// Parameters used.
    pub params: McParams,
    /// Accumulated cross-section sum (checksum).
    pub checksum: f64,
    /// Lookups executed (`iter` for the model).
    pub iterations: usize,
    /// Average distinct `G` elements touched per lookup (`k`; ≈1).
    pub k_grid: f64,
    /// Average distinct `E` elements touched per lookup (`k`; ≈1).
    pub k_xs: f64,
    /// Floating-point operations.
    pub flops: f64,
}

fn build_grid(params: McParams) -> (Vec<GridPoint>, Vec<XsEntry>) {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xfeed);
    let grid = (0..params.grid_points)
        .map(|i| GridPoint {
            energy: i as f64 / params.grid_points as f64,
            xs_index: rng.gen_range(0..params.xs_entries as u32),
            material: (i % 12) as u32,
        })
        .collect();
    let xs = (0..params.xs_entries)
        .map(|i| XsEntry {
            total: 1.0 + (i % 97) as f64 * 0.01,
            scatter: 0.5 + (i % 31) as f64 * 0.02,
        })
        .collect();
    (grid, xs)
}

/// Run the traced lookup kernel: `G` and `E` are the tracked structures.
pub fn run_traced(params: McParams, rec: &Recorder) -> McOutput {
    let (grid, xs) = build_grid(params);
    let g = rec.buffer_from("G", grid);
    let e = rec.buffer_from("E", xs);

    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut checksum = 0.0;
    let mut flops = 0.0;
    let mut g_touches = 0u64;
    let mut e_touches = 0u64;

    rec.set_enabled(true);
    // Data construction pass: the paper's random model "assume[s] that
    // each element in the target data structure is already traversed once
    // before the random accesses happen" (§III-C) — XSBench's grid
    // unionization does exactly this sweep.
    let mut grid_sum = 0.0;
    for i in 0..g.len() {
        grid_sum += g.get(i).energy;
    }
    let mut xs_sum = 0.0;
    for i in 0..e.len() {
        xs_sum += e.get(i).total;
    }
    assert!(grid_sum.is_finite() && xs_sum > 0.0, "construction sweep");
    for _ in 0..params.lookups {
        // Sample an energy; the unionized grid makes the lookup O(1):
        // the grid index is energy * n (XSBench's 'unionized' fast path).
        let energy: f64 = rng.gen_range(0.0..1.0);
        let gi = ((energy * g.len() as f64) as usize).min(g.len() - 1);
        let point = g.get(gi);
        g_touches += 1;
        let entry = e.get(point.xs_index as usize);
        e_touches += 1;
        // Macroscopic XS accumulation (the real kernel sums over nuclides;
        // the unionized table has pre-summed rows).
        checksum += entry.total * 0.7 + entry.scatter * 0.3;
        flops += 4.0;
    }
    rec.set_enabled(false);

    McOutput {
        params,
        checksum,
        iterations: params.lookups,
        k_grid: g_touches as f64 / params.lookups as f64,
        k_xs: e_touches as f64 / params.lookups as f64,
        flops,
    }
}

/// Untraced run (timing / cross-checking).
pub fn run_plain(params: McParams) -> McOutput {
    run_traced(params, &Recorder::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_are_16_bytes() {
        assert_eq!(std::mem::size_of::<GridPoint>(), 16);
        assert_eq!(std::mem::size_of::<XsEntry>(), 16);
    }

    #[test]
    fn lookups_are_deterministic() {
        let params = McParams {
            grid_points: 1000,
            xs_entries: 600,
            lookups: 500,
            seed: 5,
        };
        let a = run_plain(params);
        let b = run_plain(params);
        assert_eq!(a.checksum, b.checksum);
        assert!(a.checksum > 0.0);
        assert_eq!(a.iterations, 500);
        assert_eq!(a.k_grid, 1.0);
        assert_eq!(a.k_xs, 1.0);
    }

    #[test]
    fn trace_alternates_g_and_e() {
        let params = McParams {
            grid_points: 1000,
            xs_entries: 600,
            lookups: 100,
            seed: 5,
        };
        let rec = Recorder::new();
        run_traced(params, &rec);
        let trace = rec.into_trace();
        let construction = params.grid_points + params.xs_entries;
        assert_eq!(trace.len(), construction + 200);
        let g = trace.registry.id("G").unwrap();
        let e = trace.registry.id("E").unwrap();
        // Construction sweeps G then E, element by element.
        assert!(trace.refs[..params.grid_points].iter().all(|r| r.ds == g));
        assert!(trace.refs[params.grid_points..construction]
            .iter()
            .all(|r| r.ds == e));
        // Lookups alternate G, E.
        for pair in trace.refs[construction..].chunks(2) {
            assert_eq!(pair[0].ds, g);
            assert_eq!(pair[1].ds, e);
        }
    }

    #[test]
    fn grid_indices_cover_range() {
        // Random energies must reach across the whole grid, not cluster.
        let params = McParams {
            grid_points: 10_000,
            xs_entries: 600,
            lookups: 2000,
            seed: 1,
        };
        let rec = Recorder::new();
        run_traced(params, &rec);
        let trace = rec.into_trace();
        let g = trace.registry.id("G").unwrap();
        let construction = params.grid_points + params.xs_entries;
        let max_addr = trace.refs[construction..]
            .iter()
            .filter(|r| r.ds == g)
            .map(|r| r.addr)
            .max()
            .unwrap();
        assert!(max_addr > params.grid_bytes() / 2);
    }

    #[test]
    fn footprints() {
        let p = McParams::profiling();
        assert_eq!(p.grid_bytes(), 8_000_000);
        assert_eq!(p.xs_bytes(), 4_800_000);
    }
}
